//! Opt1 (online half): query scheduling — Algorithm 2 of the paper.
//!
//! After cluster filtering, every query owns a set of `nprobe` clusters to
//! scan. Each (query, cluster) pair must be executed on exactly one DPU that
//! holds a replica of the cluster. Single-replica clusters have no choice;
//! replicated clusters are assigned greedily (largest clusters first) to the
//! least-loaded replica DPU, which is what keeps the per-DPU workload ratio
//! of Figure 11 close to 1 at runtime.

use crate::placement::Placement;

/// One unit of work for a DPU: scan cluster `cluster` for query `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the query within the batch.
    pub query: usize,
    /// Cluster id to scan.
    pub cluster: usize,
}

/// The output of query scheduling for one batch.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Work list per DPU.
    pub per_dpu: Vec<Vec<Assignment>>,
    /// Estimated workload (candidate vectors to scan) per DPU.
    pub dpu_workload: Vec<u64>,
}

impl Schedule {
    /// Total number of (query, cluster) assignments.
    pub fn total_assignments(&self) -> usize {
        self.per_dpu.iter().map(|v| v.len()).sum()
    }

    /// The largest number of assignments on any DPU (drives the padded,
    /// uniform host→DPU transfer size).
    pub fn max_assignments_per_dpu(&self) -> usize {
        self.per_dpu.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Ratio of the most-loaded DPU's estimated workload to the average over
    /// busy DPUs — the runtime counterpart of Figure 11.
    pub fn max_to_avg_workload(&self) -> f64 {
        let busy: Vec<u64> = self
            .dpu_workload
            .iter()
            .copied()
            .filter(|&w| w > 0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let avg = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if avg <= 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Set of DPUs with at least one assignment.
    pub fn busy_dpus(&self) -> Vec<usize> {
        self.per_dpu
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(d, _)| d)
            .collect()
    }

    /// Checks that every (query, cluster) pair from `filtered` appears exactly
    /// once, on a DPU that actually holds the cluster.
    pub fn validate(&self, filtered: &[Vec<usize>], placement: &Placement) -> Result<(), String> {
        let mut expected = std::collections::HashSet::new();
        for (q, clusters) in filtered.iter().enumerate() {
            for &c in clusters {
                expected.insert((q, c));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (dpu, assignments) in self.per_dpu.iter().enumerate() {
            for a in assignments {
                if !placement.cluster_to_dpus[a.cluster].contains(&dpu) {
                    return Err(format!(
                        "assignment (q{}, c{}) landed on DPU {dpu} which has no replica",
                        a.query, a.cluster
                    ));
                }
                if !seen.insert((a.query, a.cluster)) {
                    return Err(format!(
                        "assignment (q{}, c{}) scheduled twice",
                        a.query, a.cluster
                    ));
                }
            }
        }
        if seen != expected {
            return Err(format!(
                "schedule covers {} pairs, expected {}",
                seen.len(),
                expected.len()
            ));
        }
        Ok(())
    }
}

/// Algorithm 2: greedy workload-balancing assignment of filtered clusters to
/// replica DPUs.
///
/// `filtered[q]` is the list of cluster ids query `q` probes (the output of
/// cluster filtering). `cluster_sizes[c]` is used as the workload estimate of
/// scanning cluster `c` once.
pub fn schedule_queries(
    filtered: &[Vec<usize>],
    placement: &Placement,
    cluster_sizes: &[usize],
) -> Schedule {
    let num_dpus = placement.dpu_workload.len();
    let mut per_dpu: Vec<Vec<Assignment>> = vec![Vec::new(); num_dpus];
    let mut dpu_workload = vec![0u64; num_dpus];

    // Pass 1 (lines 2–7): clusters with a single replica have no freedom;
    // schedule them first and account for their load.
    let mut multi_replica: Vec<Assignment> = Vec::new();
    for (q, clusters) in filtered.iter().enumerate() {
        for &c in clusters {
            let replicas = &placement.cluster_to_dpus[c];
            if replicas.len() == 1 {
                let d = replicas[0];
                per_dpu[d].push(Assignment { query: q, cluster: c });
                dpu_workload[d] += cluster_sizes[c] as u64;
            } else {
                multi_replica.push(Assignment { query: q, cluster: c });
            }
        }
    }

    // Pass 2 (lines 8–14): remaining clusters sorted by size descending, each
    // assigned to the least-loaded DPU among its replicas.
    multi_replica.sort_by(|a, b| cluster_sizes[b.cluster].cmp(&cluster_sizes[a.cluster]));
    for a in multi_replica {
        let replicas = &placement.cluster_to_dpus[a.cluster];
        let best = replicas
            .iter()
            .copied()
            .min_by_key(|&d| dpu_workload[d] + cluster_sizes[a.cluster] as u64)
            .expect("validated placements have at least one replica");
        per_dpu[best].push(a);
        dpu_workload[best] += cluster_sizes[a.cluster] as u64;
    }

    Schedule {
        per_dpu,
        dpu_workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_pim_aware, place_round_robin, PlacementInput};

    fn skewed_setup(
        clusters: usize,
        dpus: usize,
    ) -> (PlacementInput, Vec<usize>, Vec<Vec<usize>>) {
        let sizes: Vec<usize> = (0..clusters).map(|i| 2000 / (i + 1) + 20).collect();
        // Access frequency: the first few clusters are very hot.
        let freqs: Vec<f64> = (0..clusters).map(|i| 1.0 / (i + 1) as f64).collect();
        let input = PlacementInput::new(sizes.clone(), freqs.clone(), dpus, 1_000_000);
        // A batch of 200 queries, each probing 4 clusters, biased to hot ones.
        let mut filtered = Vec::new();
        for q in 0..200usize {
            let mut probes = Vec::new();
            for j in 0..4usize {
                let c = (q * (j + 1) * 7) % clusters;
                let c = if q % 3 == 0 { c % 4 } else { c }; // extra heat on clusters 0..4
                if !probes.contains(&c) {
                    probes.push(c);
                }
            }
            filtered.push(probes);
        }
        (input, sizes, filtered)
    }

    #[test]
    fn every_pair_scheduled_exactly_once_on_a_replica() {
        let (input, sizes, filtered) = skewed_setup(32, 8);
        let placement = place_pim_aware(&input);
        let schedule = schedule_queries(&filtered, &placement, &sizes);
        schedule.validate(&filtered, &placement).unwrap();
        assert_eq!(
            schedule.total_assignments(),
            filtered.iter().map(|f| f.len()).sum::<usize>()
        );
    }

    #[test]
    fn balanced_placement_plus_scheduling_beats_round_robin() {
        let (input, sizes, filtered) = skewed_setup(64, 16);
        let aware = place_pim_aware(&input);
        let naive = place_round_robin(&input);
        let s_aware = schedule_queries(&filtered, &aware, &sizes);
        let s_naive = schedule_queries(&filtered, &naive, &sizes);
        s_aware.validate(&filtered, &aware).unwrap();
        s_naive.validate(&filtered, &naive).unwrap();
        assert!(
            s_aware.max_to_avg_workload() < s_naive.max_to_avg_workload(),
            "aware {} vs naive {}",
            s_aware.max_to_avg_workload(),
            s_naive.max_to_avg_workload()
        );
    }

    #[test]
    fn replicated_clusters_spread_across_their_dpus() {
        let (mut input, _, _) = skewed_setup(16, 8);
        input.cluster_sizes[0] = 10_000;
        input.frequencies[0] = 5.0;
        let placement = place_pim_aware(&input);
        assert!(placement.replicas(0) > 1);
        // Every query probes the hot cluster 0.
        let filtered: Vec<Vec<usize>> = (0..100).map(|_| vec![0usize]).collect();
        let sizes = input.cluster_sizes.clone();
        let schedule = schedule_queries(&filtered, &placement, &sizes);
        schedule.validate(&filtered, &placement).unwrap();
        // The hot cluster's work should land on more than one DPU.
        assert!(schedule.busy_dpus().len() > 1);
        assert!(schedule.max_to_avg_workload() < 1.5);
    }

    #[test]
    fn empty_batch_yields_empty_schedule() {
        let (input, sizes, _) = skewed_setup(8, 4);
        let placement = place_pim_aware(&input);
        let schedule = schedule_queries(&[], &placement, &sizes);
        assert_eq!(schedule.total_assignments(), 0);
        assert_eq!(schedule.max_assignments_per_dpu(), 0);
        assert_eq!(schedule.max_to_avg_workload(), 1.0);
        schedule.validate(&[], &placement).unwrap();
    }

    #[test]
    fn validate_rejects_foreign_dpus_and_duplicates() {
        let (input, sizes, filtered) = skewed_setup(8, 4);
        let placement = place_round_robin(&input);
        let mut schedule = schedule_queries(&filtered, &placement, &sizes);
        // Duplicate an assignment.
        let first = schedule.per_dpu.iter().position(|v| !v.is_empty()).unwrap();
        let dup = schedule.per_dpu[first][0];
        schedule.per_dpu[first].push(dup);
        assert!(schedule.validate(&filtered, &placement).is_err());
    }
}
