//! Fixture: hash order leaks into the tombstone fold of a compaction —
//! the rebuilt lists would differ run to run, breaking snapshot equality.

use std::collections::HashSet;

pub fn fold_tombstones(dead: &HashSet<u64>) -> Vec<u64> {
    let mut folded = Vec::new();
    for id in dead.iter() {
        folded.push(*id);
    }
    folded
}
