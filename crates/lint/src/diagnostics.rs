//! Rendering of lint results, human-readable and `--json`.
//!
//! The JSON encoder is hand-rolled (the crate is dependency-free by
//! design); the shape is versioned under `"schema": "upanns-lint/v1"` so
//! downstream tooling can detect changes.

use crate::rules::Violation;

/// The outcome of linting one root: file count plus sorted violations.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
}

impl LintReport {
    /// Whether the lint passed (no violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering: one `rule: file:line: message` per
    /// violation plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{}: {}:{}: {}\n", v.rule, v.file, v.line, v.message));
        }
        out.push_str(&format!(
            "upanns-lint: {} file(s) checked, {} violation(s)\n",
            self.files_checked,
            self.violations.len()
        ));
        out
    }

    /// JSON rendering:
    /// `{"schema":"upanns-lint/v1","files_checked":N,"violations":[...]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"upanns-lint/v1\",\"files_checked\":");
        out.push_str(&self.files_checked.to_string());
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_string(v.rule),
                json_string(&v.file),
                v.line,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        out.push('\n');
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let report = LintReport {
            files_checked: 2,
            violations: vec![Violation {
                rule: "no-wall-clock",
                file: "a/b.rs".to_string(),
                line: 7,
                message: "bad \"quote\"\npath\\x".to_string(),
            }],
        };
        let json = report.render_json();
        assert!(json.starts_with("{\"schema\":\"upanns-lint/v1\",\"files_checked\":2,"));
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("path\\\\x"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn human_render_has_locations_and_summary() {
        let report = LintReport {
            files_checked: 3,
            violations: vec![Violation {
                rule: "directive",
                file: "x.rs".to_string(),
                line: 1,
                message: "m".to_string(),
            }],
        };
        let text = report.render_human();
        assert!(text.contains("directive: x.rs:1: m"));
        assert!(text.contains("3 file(s) checked, 1 violation(s)"));
    }
}
