//! Live index mutation: streaming upserts/deletes over an [`IvfPqIndex`]
//! with epoch-stamped copy-on-write snapshots.
//!
//! Production ANN never serves a frozen index. [`MutableIvf`] layers
//! per-list copy-on-write segments over an immutable base index: an upsert
//! or delete clones only the touched inverted list, bumps a monotonically
//! increasing **epoch**, and leaves every previously taken snapshot
//! untouched. [`snapshot`](MutableIvf::snapshot) is cheap — a handful of
//! `Arc` clones — and returns an [`IndexSnapshot`] that mirrors the whole
//! read API of [`IvfPqIndex`], so every engine can search a consistent view
//! while mutations continue.
//!
//! [`SnapshotTimeline`] maps the replay clock onto snapshots: the serving
//! layer installs a snapshot at each refresh point and every request
//! resolves the snapshot (and epoch) active at its batch-close time. Because
//! activation times come from the deterministic replay clock, the threaded
//! twin resolves the exact same snapshot per request — answers stay a pure
//! function of `(query, options, mutation stream, close time)`.
//!
//! Compaction ([`MutableIvf::compact`]) folds the overlays into a fresh base
//! index. It preserves the effective entry order of every list, so answers
//! at the same epoch are bitwise identical before and after — the epoch
//! deliberately does **not** advance. Its cost is modeled as a
//! [`CompactionWindow`] on the timeline; requests landing inside a window
//! are stalled to the window's end by the engines.

use crate::ivf::{InvertedList, IvfPqIndex};
use crate::lut::LookupTable;
use crate::topk::{Neighbor, TopK};
use crate::vector::{residual, Dataset};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, epoch-stamped view of a (possibly mutated) IVFPQ index.
///
/// Cloning is cheap (`Arc` bumps); the view mirrors the read API of
/// [`IvfPqIndex`] so engines are generic over "frozen index" and "live
/// snapshot" without code duplication.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    base: Arc<IvfPqIndex>,
    /// Per-list copy-on-write overrides; `None` means the base list is live.
    overlays: Arc<Vec<Option<Arc<InvertedList>>>>,
    /// Cached per-list sizes — hot paths (per-batch scheduling, skew checks)
    /// read this slice instead of allocating via `IvfPqIndex::list_sizes`.
    sizes: Arc<Vec<usize>>,
    epoch: u64,
    ntotal: u64,
}

impl IndexSnapshot {
    /// The mutation epoch this snapshot was taken at (0 = unmutated base).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Number of coarse clusters.
    #[inline]
    pub fn nlist(&self) -> usize {
        self.base.nlist()
    }

    /// Number of PQ sub-quantizers.
    #[inline]
    pub fn m(&self) -> usize {
        self.base.m()
    }

    /// Total number of indexed vectors at this epoch.
    #[inline]
    pub fn ntotal(&self) -> u64 {
        self.ntotal
    }

    /// The trained coarse quantizer (shared with the base; quantizers never
    /// change under mutation — only compaction retrains placement, not
    /// codebooks).
    #[inline]
    pub fn coarse(&self) -> &crate::kmeans::KMeans {
        self.base.coarse()
    }

    /// The trained product quantizer.
    #[inline]
    pub fn pq(&self) -> &crate::pq::ProductQuantizer {
        self.base.pq()
    }

    /// The inverted list of cluster `c` as seen by this snapshot.
    #[inline]
    pub fn list(&self, c: usize) -> &InvertedList {
        match &self.overlays[c] {
            Some(list) => list,
            None => self.base.list(c),
        }
    }

    /// Cached sizes of all inverted lists — no allocation per call.
    #[inline]
    pub fn list_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total compressed footprint in bytes (ids + codes) at this epoch.
    pub fn compressed_bytes(&self) -> usize {
        (0..self.nlist()).map(|c| self.list(c).bytes(self.m())).sum()
    }

    /// Stage (a) — cluster filtering against the (immutable) coarse
    /// centroids.
    pub fn filter_clusters(&self, query: &[f32], nprobe: usize) -> Vec<(usize, f32)> {
        self.base.filter_clusters(query, nprobe)
    }

    /// Stage (b) — LUT construction for one probed cluster.
    pub fn build_lut(&self, query: &[f32], cluster: usize) -> LookupTable {
        self.base.build_lut(query, cluster)
    }

    /// Reference single-query search over this snapshot's list views; agrees
    /// bitwise with [`IvfPqIndex::search`] when the snapshot is unmutated.
    pub fn search(&self, query: &[f32], nprobe: usize, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        let m = self.m();
        let mut topk = TopK::new(k);
        for (cluster, _) in self.filter_clusters(query, nprobe) {
            let lut = self.build_lut(query, cluster);
            let list = self.list(cluster);
            for (i, code) in list.packed_codes().chunks_exact(m).enumerate() {
                topk.push(list.ids()[i], lut.adc_distance(code));
            }
        }
        topk.into_sorted()
    }

    /// Batched reference search.
    pub fn search_batch(&self, queries: &Dataset, nprobe: usize, k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, nprobe, k)).collect()
    }
}

impl From<&IvfPqIndex> for IndexSnapshot {
    fn from(index: &IvfPqIndex) -> Self {
        Arc::new(index.clone()).into()
    }
}

impl From<IvfPqIndex> for IndexSnapshot {
    fn from(index: IvfPqIndex) -> Self {
        Arc::new(index).into()
    }
}

impl From<Arc<IvfPqIndex>> for IndexSnapshot {
    fn from(base: Arc<IvfPqIndex>) -> Self {
        let sizes: Vec<usize> = base.iter_list_sizes().collect();
        let overlays = vec![None; base.nlist()];
        let ntotal = base.ntotal();
        Self {
            base,
            overlays: Arc::new(overlays),
            sizes: Arc::new(sizes),
            epoch: 0,
            ntotal,
        }
    }
}

/// Statistics returned by a [`MutableIvf::compact`] fold.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompactionStats {
    /// Inverted lists that carried an overlay and were folded.
    pub folded_lists: usize,
    /// Bytes (ids + codes) of the folded lists — the data a real system
    /// would rewrite, and the quantity the cost model charges.
    pub moved_bytes: usize,
}

/// The mutable layer: per-list copy-on-write segments over an immutable
/// base, with a monotonically increasing epoch.
#[derive(Debug, Clone)]
pub struct MutableIvf {
    base: Arc<IvfPqIndex>,
    overlays: Vec<Option<Arc<InvertedList>>>,
    /// Incrementally maintained per-list sizes: the compaction-skew decision
    /// tick reads this slice without allocating.
    sizes: Vec<usize>,
    /// id → cluster, for O(1)-ish deletes. Point lookups only — never
    /// iterated, so hash order cannot leak into any answer.
    locations: HashMap<u64, usize>,
    epoch: u64,
    ntotal: u64,
}

impl MutableIvf {
    /// Wraps a trained index as the epoch-0 base.
    pub fn new(base: &IvfPqIndex) -> Self {
        Self::from_arc(Arc::new(base.clone()))
    }

    /// Wraps an already-shared index without cloning it.
    pub fn from_arc(base: Arc<IvfPqIndex>) -> Self {
        let sizes: Vec<usize> = base.iter_list_sizes().collect();
        let mut locations = HashMap::with_capacity(base.ntotal() as usize);
        for (c, list) in base.lists().iter().enumerate() {
            for &id in list.ids() {
                locations.insert(id, c);
            }
        }
        let ntotal = base.ntotal();
        Self {
            overlays: vec![None; base.nlist()],
            sizes,
            locations,
            epoch: 0,
            ntotal,
            base,
        }
    }

    /// The current mutation epoch (number of effective upserts + deletes).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total number of live vectors.
    #[inline]
    pub fn ntotal(&self) -> u64 {
        self.ntotal
    }

    /// Whether `id` is currently indexed.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.locations.contains_key(&id)
    }

    /// Allocation-free view of the current per-list sizes (the
    /// compaction-skew trigger reads this every decision tick).
    #[inline]
    pub fn list_sizes(&self) -> &[usize] {
        &self.sizes
    }

    fn overlay_mut(&mut self, c: usize) -> &mut InvertedList {
        let slot = &mut self.overlays[c];
        if slot.is_none() {
            *slot = Some(Arc::new(self.base.list(c).clone()));
        }
        Arc::make_mut(slot.as_mut().expect("overlay was just installed"))
    }

    /// Inserts `vector` under `id`, replacing any existing entry with that
    /// id (upsert semantics). Bumps the epoch exactly once.
    pub fn upsert(&mut self, vector: &[f32], id: u64) {
        assert_eq!(vector.len(), self.base.dim(), "upsert dimension mismatch");
        if self.remove_entry(id) {
            self.ntotal -= 1;
        }
        let (c, _) = self.base.coarse().assign(vector);
        let code = self
            .base
            .pq()
            .encode(&residual(vector, self.base.coarse().centroid(c)));
        self.overlay_mut(c).push(id, &code);
        self.sizes[c] += 1;
        self.locations.insert(id, c);
        self.ntotal += 1;
        self.epoch += 1;
    }

    /// Deletes `id` if present. Returns whether anything was removed; a
    /// no-op delete does **not** bump the epoch (no snapshot changed).
    pub fn delete(&mut self, id: u64) -> bool {
        if self.remove_entry(id) {
            self.ntotal -= 1;
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    fn remove_entry(&mut self, id: u64) -> bool {
        let Some(c) = self.locations.remove(&id) else {
            return false;
        };
        let m = self.base.m();
        let pos = {
            let list = match &self.overlays[c] {
                Some(list) => list.as_ref(),
                None => self.base.list(c),
            };
            list.ids()
                .iter()
                .position(|&x| x == id)
                .expect("locations map points at a list holding the id")
        };
        let folded = match &self.overlays[c] {
            Some(list) => list.without_entry(pos, m),
            None => self.base.list(c).without_entry(pos, m),
        };
        self.overlays[c] = Some(Arc::new(folded));
        self.sizes[c] -= 1;
        true
    }

    /// Takes a cheap immutable snapshot of the current state. In-flight
    /// readers of earlier snapshots are unaffected by later mutations.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            base: Arc::clone(&self.base),
            overlays: Arc::new(self.overlays.clone()),
            sizes: Arc::new(self.sizes.clone()),
            epoch: self.epoch,
            ntotal: self.ntotal,
        }
    }

    /// Folds every copy-on-write overlay into a fresh base index.
    ///
    /// The effective content and **order** of every list is preserved, so
    /// searches at the same epoch return bitwise-identical answers before
    /// and after — which is why the epoch does not advance. Snapshots taken
    /// earlier keep their own `Arc` to the old base and stay valid.
    pub fn compact(&mut self) -> CompactionStats {
        let m = self.base.m();
        let mut stats = CompactionStats::default();
        let mut lists = Vec::with_capacity(self.base.nlist());
        for (c, slot) in self.overlays.iter_mut().enumerate() {
            match slot.take() {
                Some(list) => {
                    stats.folded_lists += 1;
                    stats.moved_bytes += list.bytes(m);
                    lists.push(list.as_ref().clone());
                }
                None => lists.push(self.base.list(c).clone()),
            }
        }
        let mut folded = self.base.fresh_like();
        folded.replace_lists(lists, self.ntotal);
        self.base = Arc::new(folded);
        stats
    }
}

/// A compaction window on the replay clock: requests whose batch closes
/// inside `[start, end)` are stalled to `end` by the engines (the modeled
/// cost of the background fold + re-placement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionWindow {
    /// Window start (replay-clock seconds).
    pub start: f64,
    /// Window end (replay-clock seconds); must be `>= start`.
    pub end: f64,
}

impl CompactionWindow {
    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Maps the deterministic replay clock onto installed snapshots.
///
/// The serving layer installs a snapshot at each refresh point; engines
/// resolve the snapshot active at a request's batch-close time, so the
/// replay and the threaded twin — which agree on close times by
/// construction — serve identical epochs.
#[derive(Debug, Clone)]
pub struct SnapshotTimeline {
    /// `(activation_time, snapshot)`, sorted by activation time. The first
    /// entry activates at `-inf` (it serves everything before the first
    /// refresh).
    entries: Vec<(f64, IndexSnapshot)>,
    windows: Vec<CompactionWindow>,
}

impl SnapshotTimeline {
    /// A timeline that serves `initial` forever (until more snapshots are
    /// installed).
    pub fn new(initial: IndexSnapshot) -> Self {
        Self {
            entries: vec![(f64::NEG_INFINITY, initial)],
            windows: Vec::new(),
        }
    }

    /// Convenience: a frozen (never-mutated) timeline over a plain index.
    pub fn frozen(index: &IvfPqIndex) -> Self {
        Self::new(IndexSnapshot::from(index))
    }

    /// Installs `snapshot` to activate at time `at` (must not precede the
    /// previously installed activation).
    pub fn install(&mut self, at: f64, snapshot: IndexSnapshot) {
        let last = self.entries.last().map(|(t, _)| *t).unwrap_or(f64::NEG_INFINITY);
        assert!(at >= last, "snapshot activations must be monotone: {at} < {last}");
        self.entries.push((at, snapshot));
    }

    /// Records a compaction window (monotone, non-overlapping by caller
    /// contract).
    pub fn push_window(&mut self, start: f64, end: f64) {
        assert!(end >= start, "compaction window ends before it starts");
        self.windows.push(CompactionWindow { start, end });
    }

    /// The snapshot active at time `t`: the installed entry with the
    /// largest activation `<= t`.
    pub fn at(&self, t: f64) -> &IndexSnapshot {
        &self.entries[self.index_at(t)].1
    }

    /// The entry index active at time `t` (engines keep per-entry derived
    /// state — placement, staged MRAM — in a parallel vector).
    pub fn index_at(&self, t: f64) -> usize {
        let idx = self.entries.partition_point(|(when, _)| *when <= t);
        idx.saturating_sub(1)
    }

    /// The epoch active at time `t`.
    #[inline]
    pub fn epoch_at(&self, t: f64) -> u64 {
        self.at(t).epoch()
    }

    /// Modeled compaction stall for a request at time `t`: the remaining
    /// span of the window containing `t`, or 0 outside every window.
    pub fn stall_after(&self, t: f64) -> f64 {
        self.windows
            .iter()
            .find(|w| w.contains(t))
            .map(|w| w.end - t)
            .unwrap_or(0.0)
    }

    /// All installed `(activation, snapshot)` entries, in activation order.
    pub fn entries(&self) -> &[(f64, IndexSnapshot)] {
        &self.entries
    }

    /// All recorded compaction windows.
    pub fn windows(&self) -> &[CompactionWindow] {
        &self.windows
    }

    /// The epoch of the last installed snapshot.
    pub fn max_epoch(&self) -> u64 {
        self.entries.last().map(|(_, s)| s.epoch()).unwrap_or(0)
    }

    /// Whether this timeline can never change an answer relative to the
    /// frozen base: one epoch-0 snapshot and no compaction windows.
    pub fn is_frozen(&self) -> bool {
        self.entries.len() == 1 && self.entries[0].1.epoch() == 0 && self.windows.is_empty()
    }

    /// The `(activation, epoch)` schedule, for layers that only need epochs
    /// (the result cache stamps entries with these).
    pub fn epoch_schedule(&self) -> Vec<(f64, u64)> {
        self.entries.iter().map(|(t, s)| (*t, s.epoch())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::IvfPqParams;
    use crate::synthetic::SyntheticSpec;

    fn fixture() -> (IvfPqIndex, Dataset) {
        let data = SyntheticSpec::sift_like(600)
            .with_clusters(8)
            .with_seed(19)
            .generate();
        let index = IvfPqIndex::train(&data, &IvfPqParams::new(8, 8).with_train_size(400), 3);
        (index, data)
    }

    #[test]
    fn unmutated_snapshot_matches_base_bitwise() {
        let (index, data) = fixture();
        let snap = IndexSnapshot::from(&index);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.ntotal(), index.ntotal());
        assert_eq!(snap.list_sizes(), index.list_sizes().as_slice());
        for qi in [0usize, 13, 257, 599] {
            let a = index.search(data.vector(qi), 4, 10);
            let b = snap.search(data.vector(qi), 4, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }

    #[test]
    fn snapshots_are_immune_to_later_mutations() {
        let (index, data) = fixture();
        let mut live = MutableIvf::new(&index);
        let before = live.snapshot();
        let baseline = before.search(data.vector(5), 8, 10);
        live.upsert(data.vector(5), 9000);
        live.delete(5);
        assert_eq!(live.epoch(), 2);
        let after = live.snapshot();
        // The old snapshot still sees the old world, bitwise.
        let replay = before.search(data.vector(5), 8, 10);
        assert_eq!(
            baseline.iter().map(|n| n.id).collect::<Vec<_>>(),
            replay.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert!(replay.iter().any(|n| n.id == 5));
        // The new snapshot sees the mutation.
        let fresh = after.search(data.vector(5), 8, 10);
        assert!(fresh.iter().all(|n| n.id != 5));
        assert!(fresh.iter().any(|n| n.id == 9000));
    }

    #[test]
    fn noop_delete_does_not_bump_the_epoch() {
        let (index, _) = fixture();
        let mut live = MutableIvf::new(&index);
        assert!(!live.delete(123_456));
        assert_eq!(live.epoch(), 0);
        assert!(live.delete(17));
        assert_eq!(live.epoch(), 1);
        assert!(!live.contains(17));
    }

    #[test]
    fn compaction_preserves_answers_and_epoch() {
        let (index, data) = fixture();
        let mut live = MutableIvf::new(&index);
        for i in 0..20u64 {
            live.upsert(data.vector((i as usize * 13) % 600), 10_000 + i);
        }
        for id in [3u64, 44, 199] {
            live.delete(id);
        }
        let epoch = live.epoch();
        let before = live.snapshot();
        let stats = live.compact();
        assert!(stats.folded_lists > 0);
        assert!(stats.moved_bytes > 0);
        assert_eq!(live.epoch(), epoch, "compaction must not advance the epoch");
        let after = live.snapshot();
        assert_eq!(before.ntotal(), after.ntotal());
        for qi in (0..600).step_by(37) {
            let a = before.search(data.vector(qi), 8, 10);
            let b = after.search(data.vector(qi), 8, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }

    #[test]
    fn timeline_resolves_snapshots_and_windows_on_the_replay_clock() {
        let (index, data) = fixture();
        let mut live = MutableIvf::new(&index);
        let mut timeline = SnapshotTimeline::new(live.snapshot());
        live.upsert(data.vector(1), 7001);
        timeline.install(10.0, live.snapshot());
        live.upsert(data.vector(2), 7002);
        timeline.install(20.0, live.snapshot());
        timeline.push_window(12.0, 13.5);

        assert_eq!(timeline.epoch_at(0.0), 0);
        assert_eq!(timeline.epoch_at(10.0), 1);
        assert_eq!(timeline.epoch_at(15.0), 1);
        assert_eq!(timeline.epoch_at(25.0), 2);
        assert_eq!(timeline.max_epoch(), 2);
        assert!(!timeline.is_frozen());
        assert!(SnapshotTimeline::frozen(&index).is_frozen());
        assert_eq!(timeline.stall_after(11.0), 0.0);
        assert!((timeline.stall_after(12.5) - 1.0).abs() < 1e-12);
        assert_eq!(timeline.stall_after(13.5), 0.0);
        assert_eq!(
            timeline.epoch_schedule(),
            vec![(f64::NEG_INFINITY, 0), (10.0, 1), (20.0, 2)]
        );
    }
}
