//! Workload statistics collected while executing a query batch functionally.
//!
//! Every engine first runs the IVFPQ pipeline on real data (so results and
//! recall are genuine) while counting the work it performed; the architecture
//! timing models then convert those counts into simulated seconds. Keeping
//! the counts explicit also lets benches report them directly (e.g. the
//! "250 million random memory accesses per query" observation in §2.3).

/// Counters describing the work performed by one batch search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of coarse centroids compared during cluster filtering
    /// (`queries × nlist`).
    pub centroid_comparisons: u64,
    /// Number of LUTs constructed (`queries × nprobe`).
    pub luts_built: u64,
    /// Number of LUT entries computed (`luts_built × m × 256`).
    pub lut_entries: u64,
    /// Number of candidate codes ADC-scanned across all queries/clusters.
    pub candidates_scanned: u64,
    /// Number of LUT lookups performed during distance calculation
    /// (≈ `candidates_scanned × m`, fewer with co-occurrence encoding).
    pub lut_lookups: u64,
    /// Bytes of PQ codes streamed from memory during distance calculation.
    pub code_bytes_read: u64,
    /// Candidates offered to the top-k structures.
    pub topk_candidates: u64,
    /// Candidates that actually entered a top-k heap.
    pub topk_insertions: u64,
    /// Requested k.
    pub k: usize,
    /// Requested nprobe.
    pub nprobe: usize,
    /// Query×shard pairs dropped because no live replica covered the shard
    /// at dispatch time (degraded coverage — never silently zero when
    /// answers are partial).
    pub degraded: u64,
    /// Shard groups cloned to a second replica because the primary's modeled
    /// completion exceeded the hedging budget.
    pub hedged: u64,
    /// Shard groups re-dispatched to a surviving replica after their host
    /// died with the work in flight (each such group moves exactly once).
    pub redispatched: u64,
}

impl WorkloadStats {
    /// Merges another batch's counters into this one.
    pub fn merge(&mut self, other: &WorkloadStats) {
        self.queries += other.queries;
        self.centroid_comparisons += other.centroid_comparisons;
        self.luts_built += other.luts_built;
        self.lut_entries += other.lut_entries;
        self.candidates_scanned += other.candidates_scanned;
        self.lut_lookups += other.lut_lookups;
        self.code_bytes_read += other.code_bytes_read;
        self.topk_candidates += other.topk_candidates;
        self.topk_insertions += other.topk_insertions;
        self.k = self.k.max(other.k);
        self.nprobe = self.nprobe.max(other.nprobe);
        self.degraded += other.degraded;
        self.hedged += other.hedged;
        self.redispatched += other.redispatched;
    }

    /// Average memory accesses (LUT lookups) per query — the quantity the
    /// paper quotes as 250 million per query at billion scale.
    pub fn memory_accesses_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.lut_lookups as f64 / self.queries as f64
        }
    }

    /// Average candidates scanned per query.
    pub fn candidates_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.candidates_scanned as f64 / self.queries as f64
        }
    }

    /// Fraction of offered top-k candidates that were rejected without
    /// entering the heap (useful for quantifying pruning).
    pub fn topk_rejection_rate(&self) -> f64 {
        if self.topk_candidates == 0 {
            0.0
        } else {
            1.0 - self.topk_insertions as f64 / self.topk_candidates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_derived_metrics() {
        let mut a = WorkloadStats {
            queries: 2,
            candidates_scanned: 200,
            lut_lookups: 3200,
            topk_candidates: 200,
            topk_insertions: 20,
            k: 10,
            nprobe: 4,
            ..WorkloadStats::default()
        };
        let b = WorkloadStats {
            queries: 2,
            candidates_scanned: 600,
            lut_lookups: 9600,
            topk_candidates: 600,
            topk_insertions: 30,
            k: 10,
            nprobe: 8,
            ..WorkloadStats::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 4);
        assert_eq!(a.candidates_scanned, 800);
        assert_eq!(a.nprobe, 8);
        assert!((a.memory_accesses_per_query() - 3200.0).abs() < 1e-9);
        assert!((a.candidates_per_query() - 200.0).abs() < 1e-9);
        assert!((a.topk_rejection_rate() - (1.0 - 50.0 / 800.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = WorkloadStats::default();
        assert_eq!(s.memory_accesses_per_query(), 0.0);
        assert_eq!(s.candidates_per_query(), 0.0);
        assert_eq!(s.topk_rejection_rate(), 0.0);
    }
}
