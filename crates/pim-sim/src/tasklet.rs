//! Kernel execution contexts: per-DPU ([`DpuKernelCtx`]) and per-tasklet
//! ([`TaskletCtx`]).
//!
//! A kernel is a Rust closure invoked once per DPU. Inside it, the kernel
//! opens *parallel regions*: a region runs the same closure for each tasklet
//! id, each tasklet accumulates the instruction and DMA cycles it charges,
//! and the region's simulated duration follows the fine-grained
//! multithreading model of [`CostModel::region_compute_cycles`]. Regions end
//! with an implicit barrier (the paper's Barriers 0–3 are simply region
//! boundaries), and DMA transfers from all tasklets serialize on the DPU's
//! single DMA engine while overlapping with other tasklets' compute.

use crate::config::PimConfig;
use crate::cost::{split_dma, CostModel};
use crate::dpu::{Dpu, DpuStats};
use crate::mram::{Mram, MramAddr, MramError};
use crate::wram::WramAllocator;

/// Execution record of one parallel region.
#[derive(Debug, Clone)]
pub struct RegionRecord {
    /// Stage label supplied by the kernel.
    pub label: String,
    /// Number of tasklets the region ran with.
    pub tasklets: usize,
    /// Sum of instruction cycles charged by all tasklets.
    pub compute_cycles: u64,
    /// Sum of DMA cycles charged by all tasklets (serialized engine).
    pub dma_cycles: u64,
    /// Resulting region duration in cycles (compute/DMA overlap + barrier).
    pub region_cycles: u64,
}

/// Per-tasklet execution context: charges cycles and performs functional
/// MRAM reads.
pub struct TaskletCtx<'a> {
    /// The tasklet's id within its parallel region (0-based).
    pub tasklet_id: usize,
    mram: &'a Mram,
    cost: &'a CostModel,
    compute_cycles: u64,
    dma_cycles: u64,
    dma_transfers: u64,
    mram_bytes_read: u64,
    scratch: Vec<u8>,
}

impl<'a> TaskletCtx<'a> {
    fn new(tasklet_id: usize, mram: &'a Mram, cost: &'a CostModel) -> Self {
        Self {
            tasklet_id,
            mram,
            cost,
            compute_cycles: 0,
            dma_cycles: 0,
            dma_transfers: 0,
            mram_bytes_read: 0,
            scratch: Vec::new(),
        }
    }

    /// Reads `len` bytes from MRAM at `addr` into the tasklet's WRAM buffer,
    /// charging DMA latency (split into ≤ 2 KB hardware transfers). The
    /// returned slice is valid until the next `mram_read` call.
    ///
    /// # Panics
    /// Panics if the read is out of bounds — that is a kernel bug, exactly as
    /// it would be on hardware.
    pub fn mram_read(&mut self, addr: MramAddr, len: usize) -> &[u8] {
        let bytes = self
            .mram
            .read(addr, len)
            .unwrap_or_else(|e| panic!("tasklet {} MRAM read failed: {e}", self.tasklet_id));
        self.scratch.clear();
        self.scratch.extend_from_slice(bytes);
        self.charge_dma(len);
        &self.scratch
    }

    /// Reads `len` bytes from MRAM at `addr` *without* charging DMA cycles.
    ///
    /// Used by kernels that account for the transfer analytically — e.g. the
    /// work-scale projection of the distance-calculation stage, where the
    /// functional read covers the reduced-scale data but the charged cost
    /// models the full-size cluster streamed in full-width DMA chunks.
    ///
    /// # Panics
    /// Panics if the read is out of bounds.
    pub fn mram_read_uncharged(&mut self, addr: MramAddr, len: usize) -> &[u8] {
        let bytes = self
            .mram
            .read(addr, len)
            .unwrap_or_else(|e| panic!("tasklet {} MRAM read failed: {e}", self.tasklet_id));
        self.scratch.clear();
        self.scratch.extend_from_slice(bytes);
        &self.scratch
    }

    /// Reads `len` bytes from MRAM into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != len` or the read is out of bounds.
    pub fn mram_read_into(&mut self, addr: MramAddr, len: usize, out: &mut [u8]) {
        assert_eq!(out.len(), len, "output buffer size mismatch");
        let bytes = self
            .mram
            .read(addr, len)
            .unwrap_or_else(|e| panic!("tasklet {} MRAM read failed: {e}", self.tasklet_id));
        out.copy_from_slice(bytes);
        self.charge_dma(len);
    }

    /// Charges the DMA cost of transferring `len` bytes without touching data
    /// (used when a kernel models a write or an already-consumed read).
    pub fn charge_dma(&mut self, len: usize) {
        for chunk in split_dma(len) {
            self.dma_cycles += self.cost.mram_transfer_cycles(chunk);
            self.dma_transfers += 1;
            self.mram_bytes_read += chunk as u64;
        }
    }

    /// Charges the DMA cost of `times` transfers of `len` bytes each without
    /// touching data. Used by work-scale projection (modeling the additional
    /// vectors a reduced-scale run stands in for) where looping over
    /// [`charge_dma`](Self::charge_dma) would be wastefully slow.
    pub fn charge_dma_repeated(&mut self, len: usize, times: u64) {
        if times == 0 || len == 0 {
            return;
        }
        let mut per_cycles = 0u64;
        let mut per_transfers = 0u64;
        let mut per_bytes = 0u64;
        for chunk in split_dma(len) {
            per_cycles += self.cost.mram_transfer_cycles(chunk);
            per_transfers += 1;
            per_bytes += chunk as u64;
        }
        self.dma_cycles += per_cycles * times;
        self.dma_transfers += per_transfers * times;
        self.mram_bytes_read += per_bytes * times;
    }

    /// Charges `n` simple ALU/branch instructions.
    #[inline]
    pub fn charge_instrs(&mut self, n: u64) {
        self.compute_cycles += n * self.cost.alu_cycles;
    }

    /// Charges `adds` additive/compare operations and `muls` multiplications
    /// (multiplications are ~32× more expensive on the DPU).
    #[inline]
    pub fn charge_arith(&mut self, adds: u64, muls: u64) {
        self.compute_cycles += adds * self.cost.alu_cycles + muls * self.cost.mul_cycles;
    }

    /// Charges `n` WRAM loads/stores.
    #[inline]
    pub fn charge_wram(&mut self, n: u64) {
        self.compute_cycles += n * self.cost.wram_access_cycles;
    }

    /// Charges one semaphore take/give pair (used by the pruned top-k merge).
    #[inline]
    pub fn charge_semaphore(&mut self) {
        self.compute_cycles += self.cost.semaphore_cycles;
    }

    /// Instruction cycles charged so far in this region.
    #[inline]
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// DMA cycles charged so far in this region.
    #[inline]
    pub fn dma_cycles(&self) -> u64 {
        self.dma_cycles
    }
}

/// Per-DPU kernel context: WRAM management, parallel regions, MRAM writes and
/// cycle accounting for one launch on one DPU.
pub struct DpuKernelCtx<'a> {
    dpu: &'a mut Dpu,
    cost: &'a CostModel,
    config: &'a PimConfig,
    wram: WramAllocator,
    regions: Vec<RegionRecord>,
    launch_stats: DpuStats,
}

impl<'a> DpuKernelCtx<'a> {
    pub(crate) fn new(dpu: &'a mut Dpu, cost: &'a CostModel, config: &'a PimConfig) -> Self {
        let wram = WramAllocator::new(config.wram_bytes);
        Self {
            dpu,
            cost,
            config,
            wram,
            regions: Vec::new(),
            launch_stats: DpuStats {
                launches: 1,
                ..DpuStats::default()
            },
        }
    }

    /// The id of the DPU this kernel instance runs on.
    #[inline]
    pub fn dpu_id(&self) -> usize {
        self.dpu.id()
    }

    /// The system configuration (for capacity-aware kernels).
    #[inline]
    pub fn config(&self) -> &PimConfig {
        self.config
    }

    /// This DPU's MRAM (functional read access without cycle charges; use a
    /// [`TaskletCtx`] for charged reads).
    #[inline]
    pub fn mram(&self) -> &Mram {
        self.dpu.mram()
    }

    /// The DPU's WRAM allocator, enforcing the 64 KB capacity.
    #[inline]
    pub fn wram(&mut self) -> &mut WramAllocator {
        &mut self.wram
    }

    /// Runs a parallel region with `tasklets` hardware threads, each
    /// executing `body`. Returns each tasklet's result. The region ends with
    /// an implicit barrier.
    ///
    /// # Panics
    /// Panics if `tasklets` is zero or exceeds the hardware maximum of 24.
    pub fn parallel<R>(
        &mut self,
        label: &str,
        tasklets: usize,
        mut body: impl FnMut(&mut TaskletCtx<'_>) -> R,
    ) -> Vec<R> {
        assert!(
            (1..=crate::config::MAX_TASKLETS).contains(&tasklets),
            "tasklet count {tasklets} outside 1..=24"
        );
        let mut results = Vec::with_capacity(tasklets);
        let mut per_tasklet_compute = Vec::with_capacity(tasklets);
        let mut total_dma = 0u64;
        let mut total_compute = 0u64;
        let mut dma_transfers = 0u64;
        let mut bytes_read = 0u64;
        for t in 0..tasklets {
            let mut ctx = TaskletCtx::new(t, self.dpu.mram(), self.cost);
            results.push(body(&mut ctx));
            per_tasklet_compute.push(ctx.compute_cycles);
            total_compute += ctx.compute_cycles;
            total_dma += ctx.dma_cycles;
            dma_transfers += ctx.dma_transfers;
            bytes_read += ctx.mram_bytes_read;
        }
        let compute_time = self.cost.region_compute_cycles(&per_tasklet_compute);
        let barrier = self.cost.barrier_cycles_per_tasklet * tasklets as u64;
        // DMA overlaps with other tasklets' compute but serializes on the
        // engine: the region lasts as long as the longer of the two.
        let region_cycles = compute_time.max(total_dma) + barrier;

        self.launch_stats.compute_cycles += total_compute;
        self.launch_stats.dma_cycles += total_dma;
        self.launch_stats.dma_transfers += dma_transfers;
        self.launch_stats.mram_bytes_read += bytes_read;
        self.launch_stats.cycles += region_cycles;

        self.regions.push(RegionRecord {
            label: label.to_string(),
            tasklets,
            compute_cycles: total_compute,
            dma_cycles: total_dma,
            region_cycles,
        });
        results
    }

    /// Runs a single-threaded region (e.g. the final merge a lone tasklet or
    /// the host-visible result write performs).
    pub fn sequential<R>(&mut self, label: &str, body: impl FnOnce(&mut TaskletCtx<'_>) -> R) -> R {
        let mut only = None;
        let mut body = Some(body);
        self.parallel(label, 1, |t| {
            let f = body.take().expect("sequential body runs once");
            only = Some(f(t));
        });
        only.expect("sequential region produced a result")
    }

    /// Writes `bytes` to this DPU's MRAM at `addr`, charging DMA write cycles
    /// as its own region.
    pub fn mram_write(&mut self, label: &str, addr: MramAddr, bytes: &[u8]) -> Result<(), MramError> {
        self.dpu.mram_mut().write(addr, bytes)?;
        let mut dma = 0u64;
        let mut transfers = 0u64;
        for chunk in split_dma(bytes.len()) {
            dma += self.cost.mram_transfer_cycles(chunk);
            transfers += 1;
        }
        self.launch_stats.dma_cycles += dma;
        self.launch_stats.dma_transfers += transfers;
        self.launch_stats.mram_bytes_written += bytes.len() as u64;
        self.launch_stats.cycles += dma;
        self.regions.push(RegionRecord {
            label: label.to_string(),
            tasklets: 1,
            compute_cycles: 0,
            dma_cycles: dma,
            region_cycles: dma,
        });
        Ok(())
    }

    /// Total cycles accumulated on this DPU so far in this launch.
    pub fn total_cycles(&self) -> u64 {
        self.launch_stats.cycles
    }

    /// Per-region records of this launch.
    pub fn regions(&self) -> &[RegionRecord] {
        &self.regions
    }

    /// Finalizes the launch: records the WRAM peak and returns
    /// (stats, regions) for the host to absorb.
    pub(crate) fn finish(mut self) -> (DpuStats, Vec<RegionRecord>) {
        self.launch_stats.wram_peak_bytes = self.wram.peak();
        (self.launch_stats, self.regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimConfig;

    fn setup() -> (Dpu, CostModel, PimConfig) {
        let config = PimConfig::small_test();
        let mut dpu = Dpu::new(0, config.mram_bytes);
        let addr = dpu.mram_mut().alloc_with(&[42u8; 4096]).unwrap();
        assert_eq!(addr, 0);
        (dpu, CostModel::default(), config)
    }

    #[test]
    fn parallel_region_charges_and_returns_results() {
        let (mut dpu, cost, config) = setup();
        let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
        let results = ctx.parallel("scan", 4, |t| {
            let data = t.mram_read(t.tasklet_id * 64, 64).to_vec();
            t.charge_arith(data.len() as u64, 0);
            data.iter().map(|&b| b as u64).sum::<u64>()
        });
        assert_eq!(results, vec![42 * 64; 4]);
        assert_eq!(ctx.regions().len(), 1);
        let r = &ctx.regions()[0];
        assert_eq!(r.tasklets, 4);
        assert_eq!(r.compute_cycles, 4 * 64);
        assert!(r.dma_cycles > 0);
        assert!(r.region_cycles >= r.compute_cycles.max(r.dma_cycles));
        let (stats, regions) = ctx.finish();
        assert_eq!(stats.launches, 1);
        assert_eq!(stats.mram_bytes_read, 4 * 64);
        assert_eq!(regions.len(), 1);
    }

    #[test]
    fn more_tasklets_reduce_region_time_until_11() {
        let (mut dpu, cost, config) = setup();
        // Same total work split across different tasklet counts.
        let work_per_region = 11_000u64;
        let mut region_time = |tasklets: usize| {
            let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
            ctx.parallel("w", tasklets, |t| {
                t.charge_instrs(work_per_region / tasklets as u64);
            });
            ctx.regions()[0].region_cycles
        };
        let t1 = region_time(1);
        let t8 = region_time(8);
        let t11 = region_time(11);
        let t24 = region_time(24);
        assert!(t1 > 7 * t8 / 8, "t1={t1} t8={t8}");
        assert!(t1 as f64 / t11 as f64 > 9.0);
        assert!((t24 as f64 - t11 as f64).abs() / (t11 as f64) < 0.2);
    }

    #[test]
    fn sequential_region_and_mram_write() {
        let (mut dpu, cost, config) = setup();
        let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
        let sum = ctx.sequential("merge", |t| {
            t.charge_instrs(10);
            t.charge_semaphore();
            123u32
        });
        assert_eq!(sum, 123);
        ctx.mram_write("writeback", 0, &[7u8; 16]).unwrap();
        assert_eq!(ctx.mram().read(0, 4).unwrap(), &[7, 7, 7, 7]);
        assert!(ctx.total_cycles() > 0);
        let (stats, _) = ctx.finish();
        assert_eq!(stats.mram_bytes_written, 16);
    }

    #[test]
    fn wram_capacity_is_visible_to_kernels() {
        let (mut dpu, cost, config) = setup();
        let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
        ctx.wram().alloc("lut", 8 * 1024).unwrap();
        assert!(ctx.wram().alloc("too_big", 60 * 1024).is_err());
        ctx.wram().free("lut").unwrap();
        ctx.wram().alloc("codebook", 32 * 1024).unwrap();
        let (stats, _) = ctx.finish();
        assert_eq!(stats.wram_peak_bytes, 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "outside 1..=24")]
    fn too_many_tasklets_panics() {
        let (mut dpu, cost, config) = setup();
        let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
        ctx.parallel("bad", 25, |_| {});
    }

    #[test]
    #[should_panic(expected = "MRAM read failed")]
    fn out_of_bounds_read_panics_like_hardware_fault() {
        let (mut dpu, cost, config) = setup();
        let mut ctx = DpuKernelCtx::new(&mut dpu, &cost, &config);
        ctx.parallel("oob", 1, |t| {
            let _ = t.mram_read(1 << 20, 64);
        });
    }
}
