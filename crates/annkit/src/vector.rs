//! Dense vector datasets stored in flat, cache-friendly row-major layout.

/// A dense, row-major collection of `f32` vectors of a fixed dimension.
///
/// The storage is a single contiguous allocation (`len * dim` floats), which
/// matches how billion-scale ANNS systems lay out raw vectors and keeps scans
/// sequential. Vector `i` occupies `data[i*dim .. (i+1)*dim]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity reserved for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from a flat buffer of `n * dim` floats.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Builds a dataset from a slice of rows.
    ///
    /// # Panics
    /// Panics if any row has a different length than the first.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from zero rows");
        let dim = rows[0].len();
        let mut ds = Dataset::with_capacity(dim, rows.len());
        for row in rows {
            ds.push(row);
        }
        ds
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.data.extend_from_slice(v);
    }

    /// Returns vector `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Returns a mutable slice of vector `i`.
    #[inline]
    pub fn vector_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterates over all vectors in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Returns a new dataset containing the vectors at `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.vector(i));
        }
        out
    }

    /// Splits each vector into `m` equally sized sub-vectors and returns the
    /// `sub`-th sub-dataset (used for product quantization training).
    ///
    /// # Panics
    /// Panics if `dim % m != 0` or `sub >= m`.
    pub fn subspace(&self, m: usize, sub: usize) -> Dataset {
        assert!(self.dim.is_multiple_of(m), "dim {} not divisible by m {}", self.dim, m);
        assert!(sub < m, "subspace index out of range");
        let dsub = self.dim / m;
        let mut out = Dataset::with_capacity(dsub, self.len());
        for v in self.iter() {
            out.push(&v[sub * dsub..(sub + 1) * dsub]);
        }
        out
    }

    /// Total number of bytes of the raw (uncompressed) vector payload.
    pub fn raw_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Element-wise residual `self[i] - other`, written into `out`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[inline]
    pub fn residual_into(&self, i: usize, other: &[f32], out: &mut [f32]) {
        let v = self.vector(i);
        assert_eq!(v.len(), other.len());
        assert_eq!(v.len(), out.len());
        for ((o, a), b) in out.iter_mut().zip(v).zip(other) {
            *o = a - b;
        }
    }
}

/// Computes `a - b` into a freshly allocated vector.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn residual(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "residual dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Computes the element-wise mean of the rows of `vectors` (each of length
/// `dim`), returning the centroid. Returns a zero vector when `vectors` is
/// empty.
pub fn mean_vector(dim: usize, vectors: impl Iterator<Item = impl AsRef<[f32]>>) -> Vec<f32> {
    let mut sum = vec![0.0f64; dim];
    let mut count = 0usize;
    for v in vectors {
        let v = v.as_ref();
        debug_assert_eq!(v.len(), dim);
        for (s, x) in sum.iter_mut().zip(v) {
            *s += *x as f64;
        }
        count += 1;
    }
    if count == 0 {
        return vec![0.0; dim];
    }
    sum.iter().map(|s| (*s / count as f64) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![5.0, 6.0, 7.0, 8.0],
            vec![9.0, 10.0, 11.0, 12.0],
        ])
    }

    #[test]
    fn push_and_access() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.vector(1), &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(ds.iter().count(), 3);
        assert_eq!(ds.raw_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.vector(1), &[3.0, 4.0]);
        assert_eq!(ds.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(3, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0]);
    }

    #[test]
    fn gather_selects_rows() {
        let ds = small();
        let g = ds.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.vector(0), ds.vector(2));
        assert_eq!(g.vector(1), ds.vector(0));
    }

    #[test]
    fn subspace_splits_evenly() {
        let ds = small();
        let s0 = ds.subspace(2, 0);
        let s1 = ds.subspace(2, 1);
        assert_eq!(s0.dim(), 2);
        assert_eq!(s0.vector(0), &[1.0, 2.0]);
        assert_eq!(s1.vector(0), &[3.0, 4.0]);
        assert_eq!(s1.vector(2), &[11.0, 12.0]);
    }

    #[test]
    fn residual_and_mean() {
        let r = residual(&[3.0, 5.0], &[1.0, 1.0]);
        assert_eq!(r, vec![2.0, 4.0]);

        let m = mean_vector(2, [[0.0f32, 2.0], [2.0, 4.0]].iter());
        assert_eq!(m, vec![1.0, 3.0]);

        let empty: Vec<Vec<f32>> = vec![];
        assert_eq!(mean_vector(2, empty.iter()), vec![0.0, 0.0]);
    }

    #[test]
    fn residual_into_matches_residual() {
        let ds = small();
        let c = vec![1.0, 1.0, 1.0, 1.0];
        let mut out = vec![0.0; 4];
        ds.residual_into(1, &c, &mut out);
        assert_eq!(out, residual(ds.vector(1), &c));
    }
}
