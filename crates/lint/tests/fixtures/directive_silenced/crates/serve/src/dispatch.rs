//! Fixture: a reasoned trailing directive silences its own line.

pub fn head(queue: &[u32]) -> u32 {
    queue.first().copied().unwrap() // lint: allow(unwrap, reason = "callers guarantee a non-empty queue")
}
