//! Fixture: imports a vendor item missing from the stub's API manifest.

use rand::StdRng;

pub fn mk() -> StdRng {
    rand::internal::make_default()
}
