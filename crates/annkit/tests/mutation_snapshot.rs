//! Property proofs for the live-mutation layer (`annkit::mutation`):
//!
//! 1. **Snapshot immutability** — a snapshot taken at epoch E answers
//!    bitwise-identically no matter how many mutations (or compactions)
//!    happen after it was taken.
//! 2. **Incremental ≡ rebuilt** — the copy-on-write path at any epoch
//!    equals a `MutableIvf` rebuilt from scratch by replaying the same
//!    mutation prefix, bit for bit.
//! 3. **Delete-then-upsert id reuse** — an id deleted and re-upserted is
//!    indexed exactly once, under its new vector.
//! 4. **Compaction answer-invariance** — folding the overlays never changes
//!    an answer at the same epoch (and never advances the epoch).
//!
//! Like `simd_equivalence.rs`, CI re-runs this whole suite under
//! `UPANNS_FORCE_SCALAR=1`, so the invariants are proven on both the SIMD
//! and the scalar ADC paths.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::mutation::{IndexSnapshot, MutableIvf};
use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
use annkit::topk::Neighbor;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
    static FIX: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = SyntheticSpec::sift_like(700)
            .with_clusters(8)
            .with_seed(41)
            .generate_with_meta();
        let index = IvfPqIndex::train(
            &data.vectors,
            &IvfPqParams::new(8, 8).with_train_size(400),
            3,
        );
        (data, index)
    })
}

/// One generated mutation: upsert (`true`) of dataset vector `vector_of`
/// under `id`, or delete (`false`) of `id`. Ids overlap the base id space
/// (0..700) *and* a fresh range, so deletes hit base entries, overlay
/// entries, and absent ids (no-ops that must not bump the epoch).
type Op = (bool, u64, usize);

fn apply(live: &mut MutableIvf, data: &SyntheticDataset, op: Op) {
    let (upsert, id, vector_of) = op;
    if upsert {
        live.upsert(data.vectors.vector(vector_of % 700), id);
    } else {
        live.delete(id);
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<bool>(), 0u64..1100, 0usize..700), 1..36)
}

/// Bitwise comparison of two answer sets (ids and f32 distance bits).
fn assert_bitwise_equal(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.len(), y.len());
        for (n, m) in x.iter().zip(y) {
            assert_eq!(n.id, m.id);
            assert_eq!(n.distance.to_bits(), m.distance.to_bits());
        }
    }
}

fn search_all(snapshot: &IndexSnapshot, data: &SyntheticDataset) -> Vec<Vec<Neighbor>> {
    (0..5)
        .map(|q| snapshot.search(data.vectors.vector(q), 4, 10))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A snapshot is frozen at its epoch: later upserts, deletes and even a
    /// compaction of the live index change nothing it returns.
    #[test]
    fn snapshots_are_immutable_under_later_mutations(
        prefix in ops_strategy(),
        suffix in ops_strategy(),
    ) {
        let (data, index) = fixture();
        let mut live = MutableIvf::new(index);
        for &op in &prefix {
            apply(&mut live, data, op);
        }
        let snapshot = live.snapshot();
        let epoch = snapshot.epoch();
        let ntotal = snapshot.ntotal();
        let sizes = snapshot.list_sizes().to_vec();
        let answers = search_all(&snapshot, data);
        for &op in &suffix {
            apply(&mut live, data, op);
        }
        live.compact();
        prop_assert_eq!(snapshot.epoch(), epoch);
        prop_assert_eq!(snapshot.ntotal(), ntotal);
        prop_assert_eq!(snapshot.list_sizes(), &sizes[..]);
        assert_bitwise_equal(&search_all(&snapshot, data), &answers);
    }

    /// At every checkpoint epoch, the incrementally mutated index equals an
    /// index rebuilt from scratch by replaying the same mutation prefix —
    /// the COW overlays introduce no path dependence.
    #[test]
    fn incremental_equals_rebuilt_at_each_epoch(ops in ops_strategy()) {
        let (data, index) = fixture();
        let mut live = MutableIvf::new(index);
        let checkpoints = [ops.len() / 3, 2 * ops.len() / 3, ops.len()];
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut live, data, op);
            let step = i + 1;
            if !checkpoints.contains(&step) {
                continue;
            }
            let mut rebuilt = MutableIvf::new(index);
            for &p in &ops[..step] {
                apply(&mut rebuilt, data, p);
            }
            prop_assert_eq!(rebuilt.epoch(), live.epoch());
            prop_assert_eq!(rebuilt.ntotal(), live.ntotal());
            prop_assert_eq!(rebuilt.list_sizes(), live.list_sizes());
            assert_bitwise_equal(
                &search_all(&rebuilt.snapshot(), data),
                &search_all(&live.snapshot(), data),
            );
        }
    }

    /// Delete-then-upsert under the same id: the id is indexed exactly once
    /// afterwards, the epoch advances once per effective mutation, and a
    /// no-op delete of the (now absent) id does not advance it.
    #[test]
    fn delete_then_upsert_reuses_the_id(
        warmup in ops_strategy(),
        id in 0u64..1100,
        v1 in 0usize..700,
        v2 in 0usize..700,
    ) {
        let (data, index) = fixture();
        let mut live = MutableIvf::new(index);
        for &op in &warmup {
            apply(&mut live, data, op);
        }
        // Ensure the id exists, then delete it.
        live.upsert(data.vectors.vector(v1), id);
        let ntotal = live.ntotal();
        let epoch = live.epoch();
        prop_assert!(live.contains(id));
        prop_assert!(live.delete(id));
        prop_assert!(!live.contains(id));
        prop_assert_eq!(live.ntotal(), ntotal - 1);
        prop_assert_eq!(live.epoch(), epoch + 1);
        // A repeated delete is a no-op and must not bump the epoch.
        prop_assert!(!live.delete(id));
        prop_assert_eq!(live.epoch(), epoch + 1);
        // Re-upsert under the same id: indexed exactly once.
        live.upsert(data.vectors.vector(v2), id);
        prop_assert!(live.contains(id));
        prop_assert_eq!(live.ntotal(), ntotal);
        prop_assert_eq!(live.epoch(), epoch + 2);
        let snapshot = live.snapshot();
        let occurrences: usize = (0..snapshot.nlist())
            .map(|c| snapshot.list(c).ids().iter().filter(|&&x| x == id).count())
            .sum();
        prop_assert_eq!(occurrences, 1, "id must be indexed exactly once");
    }

    /// Compaction is answer-invariant: same epoch, bitwise-identical
    /// answers, identical sizes — and a second fold has nothing to move.
    #[test]
    fn compaction_preserves_answers_bitwise(ops in ops_strategy()) {
        let (data, index) = fixture();
        let mut live = MutableIvf::new(index);
        for &op in &ops {
            apply(&mut live, data, op);
        }
        let before = live.snapshot();
        let answers = search_all(&before, data);
        let stats = live.compact();
        let after = live.snapshot();
        prop_assert_eq!(after.epoch(), before.epoch(), "compaction never advances the epoch");
        prop_assert_eq!(after.ntotal(), before.ntotal());
        prop_assert_eq!(after.list_sizes(), before.list_sizes());
        assert_bitwise_equal(&search_all(&after, data), &answers);
        // Every overlay was folded, so an immediate second fold moves nothing.
        if stats.folded_lists > 0 {
            let again = live.compact();
            prop_assert_eq!(again.folded_lists, 0);
            prop_assert_eq!(again.moved_bytes, 0);
        }
    }
}
