//! Fixture: rows are sorted before rendering, so output is deterministic.

use std::collections::HashMap;

pub fn render(counts: &HashMap<u64, u64>) -> String {
    let mut rows: Vec<_> = counts.iter().collect();
    rows.sort_by_key(|(tenant, _)| **tenant);
    let mut out = String::new();
    for (tenant, n) in rows {
        out.push_str(&format!("{tenant}: {n}\n"));
    }
    out
}
