//! Background compaction planning: turning a deterministic mutation stream
//! into a [`SnapshotTimeline`] with throttled refreshes and skew-triggered
//! compaction windows.
//!
//! The serving layer never mutates an index mid-batch. Instead the whole
//! mutation stream is walked **offline** on the replay clock (the same
//! pattern as the fault schedule in [`crate::replica`]): mutations apply to
//! a [`MutableIvf`] at their arrival times, but queries only observe a new
//! epoch at the next *refresh point* — the gap between the live index and
//! the served snapshot is the **staleness** the benchmark sweeps.
//!
//! At every refresh point the planner also runs the compaction decision
//! tick: if the per-list size skew (max/avg over the incrementally
//! maintained, allocation-free [`MutableIvf::list_sizes`] slice) exceeds the
//! policy threshold, the overlays are folded ([`MutableIvf::compact`] — same
//! epoch, bitwise-identical answers) and a
//! [`CompactionWindow`](annkit::mutation::CompactionWindow) charging the
//! modeled fold + re-placement cost is recorded. Engines stall requests that
//! land inside a window; that stall is the "p99 during compaction" the
//! benchmark reports. Re-placement itself falls out of the design for free:
//! each installed snapshot gets its own offline phase (placement,
//! co-occurrence mining, MRAM staging) when the timeline is installed into
//! an engine.

use annkit::ivf::IvfPqIndex;
use annkit::mutation::{CompactionStats, MutableIvf, SnapshotTimeline};
use annkit::workload::{MutationOp, MutationStream};

/// When and how hard the background compactor kicks in.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Max/avg list-size ratio above which a decision tick compacts.
    pub skew_threshold: f64,
    /// Minimum spacing between two compactions (seconds on the replay
    /// clock); decision ticks inside the cooldown never compact.
    pub min_interval_s: f64,
    /// Modeled fold throughput in bytes/s — `moved_bytes / bytes_per_second`
    /// is the compaction window's length.
    pub bytes_per_second: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            skew_threshold: 1.5,
            min_interval_s: 5.0,
            bytes_per_second: 64.0 * 1024.0 * 1024.0,
        }
    }
}

/// One compaction the planner scheduled.
#[derive(Debug, Clone)]
pub struct PlannedCompaction {
    /// Decision-tick time the fold started (replay clock).
    pub at: f64,
    /// Window end: `at + moved_bytes / bytes_per_second`.
    pub end: f64,
    /// What the fold moved.
    pub stats: CompactionStats,
    /// The skew that triggered it.
    pub skew: f64,
}

/// The outcome of planning a live index: the timeline engines serve, plus
/// the compactions that were scheduled along the way.
#[derive(Debug, Clone)]
pub struct LiveIndexPlan {
    /// Snapshot activations + compaction windows on the replay clock.
    pub timeline: SnapshotTimeline,
    /// Every compaction, in time order.
    pub compactions: Vec<PlannedCompaction>,
    /// The final mutation epoch (equals the stream's effective mutations).
    pub final_epoch: u64,
}

/// Max/avg ratio over the current list sizes (1.0 for a degenerate empty
/// index). Reads the incrementally maintained slice — no allocation.
pub fn list_size_skew(sizes: &[usize]) -> f64 {
    let max = sizes.iter().copied().max().unwrap_or(0) as f64;
    let total: usize = sizes.iter().sum();
    if total == 0 || sizes.is_empty() {
        return 1.0;
    }
    let avg = total as f64 / sizes.len() as f64;
    max / avg
}

/// Walks `stream` over `base` on the replay clock, installing a snapshot
/// every `refresh_every_s` seconds and compacting per `policy`.
///
/// Determinism: everything is a pure function of the inputs — the stream is
/// pre-generated, refresh points are fixed multiples, and the decision tick
/// reads only the mutable index's own state.
///
/// # Panics
/// Panics if `refresh_every_s` is not positive and finite.
pub fn plan_live_index(
    base: &IvfPqIndex,
    stream: &MutationStream,
    refresh_every_s: f64,
    policy: &CompactionPolicy,
) -> LiveIndexPlan {
    assert!(
        refresh_every_s > 0.0 && refresh_every_s.is_finite(),
        "refresh interval must be positive and finite"
    );
    let mut live = MutableIvf::new(base);
    let mut timeline = SnapshotTimeline::new(live.snapshot());
    let mut compactions: Vec<PlannedCompaction> = Vec::new();
    let mut last_compaction = f64::NEG_INFINITY;
    let mut last_installed_epoch = 0u64;

    let mut refresh = |live: &mut MutableIvf,
                       timeline: &mut SnapshotTimeline,
                       compactions: &mut Vec<PlannedCompaction>,
                       t: f64| {
        let mut compacted = false;
        let skew = list_size_skew(live.list_sizes());
        if skew > policy.skew_threshold && t - last_compaction >= policy.min_interval_s {
            let stats = live.compact();
            if stats.folded_lists > 0 {
                let end = t + stats.moved_bytes as f64 / policy.bytes_per_second;
                timeline.push_window(t, end);
                compactions.push(PlannedCompaction {
                    at: t,
                    end,
                    stats,
                    skew,
                });
                last_compaction = t;
                compacted = true;
            }
        }
        // Install on epoch advance (new answers become visible) and after a
        // compaction (the rebuilt engine state models the re-placement).
        if live.epoch() != last_installed_epoch || compacted {
            timeline.install(t, live.snapshot());
            last_installed_epoch = live.epoch();
        }
    };

    let mut next_refresh = refresh_every_s;
    for event in &stream.events {
        while event.at >= next_refresh {
            refresh(&mut live, &mut timeline, &mut compactions, next_refresh);
            next_refresh += refresh_every_s;
        }
        match &event.op {
            MutationOp::Upsert { id, vector } => live.upsert(vector, *id),
            MutationOp::Delete { id } => {
                live.delete(*id);
            }
        }
    }
    // A final refresh so the tail of the stream becomes visible (a no-op
    // when nothing changed since the last install).
    refresh(&mut live, &mut timeline, &mut compactions, next_refresh);

    LiveIndexPlan {
        timeline,
        compactions,
        final_epoch: live.epoch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::IvfPqParams;
    use annkit::synthetic::SyntheticSpec;
    use annkit::workload::MutationSpec;

    fn fixture() -> (IvfPqIndex, annkit::synthetic::SyntheticDataset) {
        let data = SyntheticSpec::sift_like(900)
            .with_clusters(8)
            .with_seed(23)
            .generate_with_meta();
        let index =
            IvfPqIndex::train(&data.vectors, &IvfPqParams::new(8, 8).with_train_size(500), 3);
        (index, data)
    }

    #[test]
    fn empty_stream_plans_a_frozen_timeline() {
        let (index, data) = fixture();
        let stream = MutationSpec::new(10.0).generate(&data, index.ntotal());
        let plan = plan_live_index(&index, &stream, 2.0, &CompactionPolicy::default());
        assert!(plan.timeline.is_frozen());
        assert!(plan.compactions.is_empty());
        assert_eq!(plan.final_epoch, 0);
    }

    #[test]
    fn refreshes_throttle_visibility_and_cover_the_tail() {
        let (index, data) = fixture();
        let stream = MutationSpec::new(9.5)
            .with_tenant(annkit::workload::TenantId(1), 6.0, 1.0)
            .generate(&data, index.ntotal());
        assert!(!stream.is_empty());
        let plan = plan_live_index(&index, &stream, 2.0, &CompactionPolicy::default());
        let entries = plan.timeline.entries();
        // Activations are strict refresh multiples (plus the -inf base).
        for (t, _) in &entries[1..] {
            assert!((t / 2.0 - (t / 2.0).round()).abs() < 1e-9, "activation {t}");
        }
        // Epochs are monotone along the timeline and end at the final epoch.
        let epochs: Vec<u64> = entries.iter().map(|(_, s)| s.epoch()).collect();
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.timeline.max_epoch(), plan.final_epoch);
        assert!(plan.final_epoch > 0);
        // Between refreshes the served epoch is stale relative to the live
        // index: the epoch at t=1.9 is what was installed at t=0.
        assert_eq!(plan.timeline.epoch_at(1.9), 0);
    }

    #[test]
    fn skewed_growth_triggers_compaction_with_cooldown() {
        let (index, data) = fixture();
        // Hand-build a stream that dumps many near-identical vectors into
        // one cluster: skew must cross the default threshold.
        let donor = data.vectors.vector(0).to_vec();
        let events: Vec<annkit::workload::MutationEvent> = (0..300)
            .map(|i| annkit::workload::MutationEvent {
                at: 0.05 * (i + 1) as f64,
                tenant: annkit::workload::TenantId(1),
                op: MutationOp::Upsert {
                    id: 50_000 + i as u64,
                    vector: donor.clone(),
                },
            })
            .collect();
        let stream = MutationStream { events };
        let policy = CompactionPolicy {
            skew_threshold: 1.2,
            min_interval_s: 4.0,
            bytes_per_second: 1024.0 * 1024.0,
        };
        let plan = plan_live_index(&index, &stream, 2.0, &policy);
        assert!(
            !plan.compactions.is_empty(),
            "skewed growth must compact at least once"
        );
        for c in &plan.compactions {
            assert!(c.skew > policy.skew_threshold);
            assert!(c.end > c.at);
            assert!(c.stats.moved_bytes > 0);
        }
        // Cooldown respected.
        for pair in plan.compactions.windows(2) {
            assert!(pair[1].at - pair[0].at >= policy.min_interval_s - 1e-9);
        }
        // Windows stall requests inside them and are visible on the timeline.
        let w = plan.timeline.windows()[0];
        assert!(plan.timeline.stall_after((w.start + w.end) / 2.0) > 0.0);
        // Compaction never advances the epoch by itself.
        assert_eq!(plan.timeline.max_epoch(), plan.final_epoch);
    }

    #[test]
    fn planning_is_deterministic() {
        let (index, data) = fixture();
        let spec = MutationSpec::new(12.0)
            .with_tenant(annkit::workload::TenantId(1), 4.0, 2.0)
            .with_tenant(annkit::workload::TenantId(2), 1.0, 0.5);
        let s1 = spec.clone().generate(&data, index.ntotal());
        let s2 = spec.generate(&data, index.ntotal());
        let p1 = plan_live_index(&index, &s1, 3.0, &CompactionPolicy::default());
        let p2 = plan_live_index(&index, &s2, 3.0, &CompactionPolicy::default());
        assert_eq!(p1.final_epoch, p2.final_epoch);
        assert_eq!(p1.timeline.epoch_schedule(), p2.timeline.epoch_schedule());
        assert_eq!(p1.compactions.len(), p2.compactions.len());
    }
}
