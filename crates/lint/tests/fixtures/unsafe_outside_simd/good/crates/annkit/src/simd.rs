//! Fixture: the sanctioned SIMD module may use `unsafe` for intrinsics —
//! this exact path (`crates/annkit/src/simd.rs`) is the rule's allowlist.

pub fn first_unchecked(values: &[f32]) -> f32 {
    unsafe { *values.as_ptr() }
}
