//! SLO-feedback-driven host autoscaling against a linear capacity model.
//!
//! Closes the elasticity loop sketched in `examples/capacity_planning.rs`:
//! that example fits sustained QPS ≈ `a · hosts + b` offline and sizes a
//! deployment for a design load; this module runs the same model *online*.
//! An [`Autoscaler`] watches per-query SLO outcomes on the replay clock and,
//! when the windowed miss fraction leaves its band, steps the host count —
//! up under sustained misses, down toward the capacity floor when the
//! deployment is comfortably over-provisioned. The engine applies the step
//! through [`AnnEngine::scale_to`](baselines::engine::AnnEngine::scale_to),
//! which charges shard migration through the interconnect model.
//!
//! Everything here is driven by simulated time handed in by the caller — no
//! wall clock, no ambient randomness — so autoscaled replays stay
//! deterministic.

/// The linear capacity model `sustained_qps ≈ qps_per_host · hosts +
/// base_qps`, as fitted by `examples/capacity_planning.rs`.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Marginal sustained QPS each additional host buys.
    pub qps_per_host: f64,
    /// The fit's intercept (coordination overhead makes it negative in
    /// practice: the first host buys less than the marginal rate).
    pub base_qps: f64,
}

impl CapacityModel {
    /// Ordinary-least-squares fit of `(hosts, sustained_qps)` samples —
    /// the same math as the capacity-planning example.
    ///
    /// # Panics
    /// Panics on fewer than two samples or a degenerate (single-x) design.
    pub fn fit(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "a line needs at least two samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(x, _)| x).sum();
        let sy: f64 = samples.iter().map(|(_, y)| y).sum();
        let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > f64::EPSILON, "need at least two distinct host counts");
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        Self {
            qps_per_host: a,
            base_qps: b,
        }
    }

    /// The sustained QPS the model predicts for `hosts` hosts.
    pub fn qps_of(&self, hosts: usize) -> f64 {
        self.qps_per_host * hosts as f64 + self.base_qps
    }

    /// The fewest hosts predicted to sustain `qps` (at least 1).
    pub fn hosts_for(&self, qps: f64) -> usize {
        if self.qps_per_host <= 0.0 {
            return 1;
        }
        let hosts = (qps - self.base_qps) / self.qps_per_host;
        (hosts.ceil().max(1.0)) as usize
    }
}

/// A windowed, hysteresis-stepped host-count controller.
///
/// Feed it per-query outcomes with [`observe`](Self::observe) (completion —
/// or shed — time plus whether the query missed its SLO; a shed query always
/// counts as a miss), then poll [`decide`](Self::decide) as simulated time
/// advances. One step per decision, bounded cooldown between steps, and the
/// capacity model's floor for the offered load keeps scale-down from
/// thrashing below what the design load needs.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    model: CapacityModel,
    /// The design load the deployment must keep sustaining.
    offered_qps: f64,
    /// Windowed miss fraction above which the controller steps up.
    miss_target: f64,
    /// Sliding observation window, simulated seconds.
    window_s: f64,
    /// Minimum simulated seconds between steps.
    cooldown_s: f64,
    min_hosts: usize,
    max_hosts: usize,
    current: usize,
    last_scale_at: f64,
    /// `(time, missed)` observations still inside the window.
    window: Vec<(f64, bool)>,
}

impl Autoscaler {
    /// Fewest windowed observations before the miss fraction is trusted.
    const MIN_SAMPLES: usize = 20;

    /// A controller holding `initial` hosts within `[min_hosts, max_hosts]`,
    /// sized against `model` for the design load `offered_qps`. Defaults:
    /// 1 % miss target, 5 s window, 10 s cooldown.
    pub fn new(
        model: CapacityModel,
        offered_qps: f64,
        initial: usize,
        min_hosts: usize,
        max_hosts: usize,
    ) -> Self {
        assert!(min_hosts >= 1 && min_hosts <= max_hosts, "bad host bounds");
        Self {
            model,
            offered_qps,
            miss_target: 0.01,
            window_s: 5.0,
            cooldown_s: 10.0,
            min_hosts,
            max_hosts,
            current: initial.clamp(min_hosts, max_hosts),
            last_scale_at: f64::NEG_INFINITY,
            window: Vec::new(),
        }
    }

    /// Overrides the sliding window length.
    pub fn with_window(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.window_s = seconds;
        self
    }

    /// Overrides the cooldown between steps.
    pub fn with_cooldown(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0);
        self.cooldown_s = seconds;
        self
    }

    /// Overrides the windowed miss fraction that triggers a step up.
    pub fn with_miss_target(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction));
        self.miss_target = fraction;
        self
    }

    /// The host count the controller believes is deployed.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Re-syncs the believed host count with the engine's actual one (called
    /// once when the controller is attached to a running deployment).
    pub fn sync(&mut self, hosts: usize) {
        self.current = hosts.clamp(self.min_hosts, self.max_hosts);
    }

    /// Records one query outcome at simulated time `t`.
    pub fn observe(&mut self, t: f64, missed: bool) {
        self.window.push((t, missed));
    }

    /// The windowed miss fraction at `now`, once enough samples are in.
    fn miss_fraction(&mut self, now: f64) -> Option<f64> {
        let horizon = now - self.window_s;
        self.window.retain(|&(t, _)| t > horizon);
        if self.window.len() < Self::MIN_SAMPLES {
            return None;
        }
        let missed = self.window.iter().filter(|&&(_, m)| m).count();
        Some(missed as f64 / self.window.len() as f64)
    }

    /// Steps the host count if the windowed feedback warrants it, returning
    /// the new target. `None` means hold (cooldown, not enough samples, or
    /// the miss fraction is inside the band).
    pub fn decide(&mut self, now: f64) -> Option<usize> {
        if now - self.last_scale_at < self.cooldown_s {
            return None;
        }
        let miss = self.miss_fraction(now)?;
        let floor = self
            .model
            .hosts_for(self.offered_qps)
            .clamp(self.min_hosts, self.max_hosts);
        let target = if miss > self.miss_target {
            (self.current + 1).min(self.max_hosts)
        } else if miss <= self.miss_target / 4.0 && self.current > floor {
            self.current - 1
        } else {
            self.current
        };
        if target == self.current {
            return None;
        }
        self.current = target;
        self.last_scale_at = now;
        // A step resets the evidence: the old window described the old size.
        self.window.clear();
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_an_exact_line() {
        let samples: Vec<(f64, f64)> = (1..=6).map(|h| (h as f64, 300.0 * h as f64 - 50.0)).collect();
        let model = CapacityModel::fit(&samples);
        assert!((model.qps_per_host - 300.0).abs() < 1e-9);
        assert!((model.base_qps + 50.0).abs() < 1e-9);
        assert!((model.qps_of(4) - 1150.0).abs() < 1e-9);
        assert_eq!(model.hosts_for(1150.0), 4);
        assert_eq!(model.hosts_for(1151.0), 5, "partial hosts round up");
        assert_eq!(model.hosts_for(-1e9), 1, "never fewer than one host");
    }

    fn model() -> CapacityModel {
        CapacityModel {
            qps_per_host: 100.0,
            base_qps: 0.0,
        }
    }

    #[test]
    fn sustained_misses_step_the_host_count_up() {
        let mut scaler = Autoscaler::new(model(), 200.0, 2, 1, 8).with_cooldown(1.0);
        for i in 0..40 {
            scaler.observe(i as f64 * 0.1, i % 2 == 0); // 50 % misses
        }
        assert_eq!(scaler.decide(4.0), Some(3));
        // Cooldown holds the next step even though misses continue.
        for i in 0..40 {
            scaler.observe(4.0 + i as f64 * 0.01, true);
        }
        assert_eq!(scaler.decide(4.5), None, "cooldown");
        assert_eq!(scaler.decide(5.1), Some(4), "steps again after cooldown");
        assert_eq!(scaler.current(), 4);
    }

    #[test]
    fn a_healthy_overprovisioned_deployment_steps_down_to_the_floor() {
        // Design load 200 QPS needs 2 hosts; we hold 4 and never miss.
        let mut scaler = Autoscaler::new(model(), 200.0, 4, 1, 8).with_cooldown(1.0);
        let mut now = 0.0;
        for round in 0..10 {
            for i in 0..30 {
                scaler.observe(now + i as f64 * 0.01, false);
            }
            now += 2.0;
            let decision = scaler.decide(now);
            if round < 2 {
                assert_eq!(decision, Some(4 - round - 1), "steps toward the floor");
            } else {
                assert_eq!(decision, None, "holds at the capacity floor");
                assert_eq!(scaler.current(), 2);
            }
        }
    }

    #[test]
    fn too_few_samples_never_trigger_a_step() {
        let mut scaler = Autoscaler::new(model(), 200.0, 2, 1, 8).with_cooldown(0.0);
        for i in 0..(Autoscaler::MIN_SAMPLES - 1) {
            scaler.observe(i as f64 * 0.001, true);
        }
        assert_eq!(scaler.decide(1.0), None);
        scaler.observe(0.5, true);
        assert_eq!(scaler.decide(1.0), Some(3), "the 20th sample tips it");
    }

    #[test]
    fn bounds_are_respected() {
        let mut scaler = Autoscaler::new(model(), 1e6, 8, 1, 8).with_cooldown(0.0);
        for i in 0..40 {
            scaler.observe(i as f64 * 0.01, true);
        }
        assert_eq!(scaler.decide(1.0), None, "already at max_hosts");
        let mut down = Autoscaler::new(model(), 0.0, 1, 1, 8).with_cooldown(0.0);
        for i in 0..40 {
            down.observe(i as f64 * 0.01, false);
        }
        assert_eq!(down.decide(1.0), None, "already at min_hosts");
    }
}
