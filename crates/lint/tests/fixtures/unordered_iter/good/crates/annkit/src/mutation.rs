//! Fixture: tombstones are sorted before the fold, so the rebuilt lists
//! are identical run to run.

use std::collections::HashSet;

pub fn fold_tombstones(dead: &HashSet<u64>) -> Vec<u64> {
    let mut folded: Vec<u64> = dead.iter().copied().collect();
    folded.sort_unstable();
    folded
}
