//! Engine-level dispatch scheduling: the stage between the batch former and
//! the serial engine that kills cross-tenant head-of-line blocking.
//!
//! The engine is a single serial resource. Before this stage existed, formed
//! batches ran in **close order**: a tight-SLO tenant whose batch closed just
//! after a bulk tenant's large batch waited for the *entire* bulk batch —
//! window-level tenant isolation (per-tenant close conditions) cannot help
//! once the interference moves behind the former. The [`EngineScheduler`]
//! fixes both halves of that problem:
//!
//! * **Priority.** Queued work is dispatched in SLO-urgency order — earliest
//!   `arrival + tenant SLO` deadline first (EDF), FIFO within a tenant (and
//!   between equally urgent chunks) via a submission sequence number. A
//!   tenant with no SLO sorts last: bulk work yields to everyone.
//! * **Chunking.** Bulk batches are split into size-capped *chunks*
//!   ([`FormedBatch::into_chunks`]) at submission, so the serial engine is
//!   never committed for more than one chunk's service time. A tight-SLO
//!   batch arriving while a bulk batch drains therefore waits at most one
//!   chunk — not the whole batch. The cap is per-submission (the service
//!   resolves it per tenant from the
//!   [`BatchPolicy`](crate::controller::BatchPolicy)).
//!
//! [`DispatchOrder::CloseOrder`] keeps the pre-scheduler semantics — whole
//! batches, strict FIFO in close order — and is both the single-tenant
//! default (chunking trades batch amortization for isolation, a bad trade
//! with nobody to isolate) and the baseline the committed head-of-line
//! benchmark scenario compares against.
//!
//! The scheduler owns the engine-occupancy bookkeeping (`engine_free_at`,
//! busy time) that used to live inline in the replay loop. It never calls
//! the engine itself: [`pop_next`](EngineScheduler::pop_next) hands the
//! caller the next chunk plus its simulated start time, and the caller
//! reports the modeled service time back via
//! [`complete`](EngineScheduler::complete). That keeps the scheduler a pure
//! discrete-event queue, directly checkable by property tests.
//!
//! # Invariants
//!
//! * **Work conservation** — the engine never idles while a submitted chunk
//!   is ready: the next dispatch time is `max(engine_free_at, earliest
//!   ready_at)`.
//! * **No early answers** — a chunk never starts before its batch closed
//!   (`start ≥ closed_at`); the former's close is still the only thing that
//!   releases queries to the engine.
//! * **Serial finishes** — one chunk in flight at a time, so finish times
//!   are non-decreasing in dispatch order even though they are no longer
//!   monotone in *close* order (an urgent late-closing batch overtakes a
//!   bulk one). Downstream consumers (admission release, controller
//!   feedback) must order by finish time, not close time.
//!
//! ```
//! use upanns_serve::batcher::{BatchFormer, BatchFormerConfig, PendingQuery};
//! use upanns_serve::dispatch::{DispatchOrder, EngineScheduler};
//! use baselines::engine::{QueryOptions, TenantId};
//!
//! let mut former = BatchFormer::new(BatchFormerConfig {
//!     max_batch: 4,
//!     max_delay_s: 1.0,
//! });
//! // The tight tenant runs its own close conditions: singleton batches.
//! former.set_tenant_config(TenantId(1), BatchFormerConfig {
//!     max_batch: 1,
//!     max_delay_s: 1.0,
//! });
//! let mut scheduler = EngineScheduler::new(DispatchOrder::SloUrgency);
//!
//! // A bulk tenant's 4-query batch fills (closing at t=0.75) ...
//! let mut bulk = None;
//! for i in 0..4 {
//!     let options = QueryOptions::new(10, 8).with_tenant(TenantId(2));
//!     let q = PendingQuery { arrival_s: 0.25 * i as f64, stream_index: i, options };
//!     bulk = former.push(q, 0.25 * i as f64).or(bulk);
//! }
//! // ... and is submitted with no SLO, chunked in pairs.
//! scheduler.submit(bulk.expect("full"), None, 2);
//!
//! // A tight-SLO query closes its singleton batch at t=1.0, while the
//! // first bulk chunk is already running (it started at t=0.75).
//! let options = QueryOptions::new(10, 8).with_tenant(TenantId(1));
//! let q = PendingQuery { arrival_s: 1.0, stream_index: 4, options };
//! let tight = former.push(q, 1.0).expect("singleton closes on arrival");
//! scheduler.submit(tight, Some(0.5), 2);
//!
//! // Dispatch order: the in-flight bulk chunk finishes (non-preemptive),
//! // then the tight batch overtakes the second bulk chunk.
//! let mut tenants = Vec::new();
//! while let Some((chunk, start)) = scheduler.pop_next(f64::INFINITY) {
//!     tenants.push(chunk.batch.options.tenant);
//!     scheduler.complete(start, 0.3);
//! }
//! assert_eq!(tenants, vec![TenantId(2), TenantId(1), TenantId(2)]);
//! ```

use crate::batcher::FormedBatch;

/// How the [`EngineScheduler`] orders queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOrder {
    /// Whole batches, strict FIFO in close order — the serial execute-on-
    /// close semantics the scheduler replaced, kept as the single-tenant
    /// default and the head-of-line baseline.
    CloseOrder,
    /// Size-capped chunks dispatched earliest-deadline-first
    /// (`arrival + tenant SLO`; no SLO sorts last), FIFO within a tenant.
    SloUrgency,
}

/// A chunk waiting for (or leaving) the engine.
#[derive(Debug, Clone)]
pub struct QueuedChunk {
    /// The chunk: a tenant-pure, compat-pure slice of a formed batch
    /// (the whole batch under [`DispatchOrder::CloseOrder`]).
    pub batch: FormedBatch,
    /// The SLO-urgency key: the chunk's earliest member arrival plus its
    /// tenant's p99 SLO (`f64::INFINITY` for tenants without one).
    pub deadline: f64,
    /// Submission order — the FIFO tie-break, and the entire order under
    /// [`DispatchOrder::CloseOrder`].
    pub seq: u64,
    /// Whether this is its batch's first chunk. The lead chunk's dispatch
    /// wait (`start − closed_at`) is the *batch's* genuine cross-batch
    /// queueing delay — the engine-saturation signal adaptive policies
    /// steer by. Trailing chunks queue behind their own siblings, so their
    /// waits are self-inflicted and must not be reported as saturation.
    pub lead: bool,
}

impl QueuedChunk {
    /// When the chunk became dispatchable (its batch's close time).
    pub fn ready_at(&self) -> f64 {
        self.batch.closed_at
    }
}

/// The dispatch queue in front of the serial engine: batches enter as
/// (possibly chunked) [`QueuedChunk`]s at close time and leave in
/// [`DispatchOrder`] whenever the engine frees. See the module docs for the
/// scheduling discipline and invariants.
#[derive(Debug, Clone)]
pub struct EngineScheduler {
    order: DispatchOrder,
    queue: Vec<QueuedChunk>,
    engine_free_at: f64,
    busy_s: f64,
    seq: u64,
    in_flight: bool,
    dispatched_chunks: usize,
    split_batches: usize,
}

impl EngineScheduler {
    /// An empty scheduler over an idle engine.
    pub fn new(order: DispatchOrder) -> Self {
        Self {
            order,
            queue: Vec::new(),
            engine_free_at: 0.0,
            busy_s: 0.0,
            seq: 0,
            in_flight: false,
            dispatched_chunks: 0,
            split_batches: 0,
        }
    }

    /// The scheduling discipline.
    pub fn order(&self) -> DispatchOrder {
        self.order
    }

    /// Enqueues a formed batch, split into chunks of at most `max_chunk`
    /// queries (pass `usize::MAX` to keep it whole; under
    /// [`DispatchOrder::CloseOrder`] batches are never split regardless).
    /// `slo_p99_s` is the batch's tenant SLO, from which each chunk's
    /// urgency deadline is derived — chunk-local, so the trailing chunks of
    /// a long batch are less urgent than its head and other tenants' work
    /// interleaves between them.
    ///
    /// # Panics
    /// Panics if the batch is empty or `max_chunk` is zero.
    pub fn submit(&mut self, batch: FormedBatch, slo_p99_s: Option<f64>, max_chunk: usize) {
        if enqueue_chunks(self.order, batch, slo_p99_s, max_chunk, &mut self.seq, &mut self.queue)
        {
            self.split_batches += 1;
        }
    }

    /// When the next dispatch would start, if any work is queued: the engine
    /// frees *and* a chunk is ready — `max(engine_free_at, earliest
    /// ready_at)` (under [`DispatchOrder::CloseOrder`], the head-of-queue's
    /// ready time). The replay loop uses this to interleave dispatches with
    /// batcher deadlines in simulated-time order.
    pub fn next_dispatch_at(&self) -> Option<f64> {
        let ready = match self.order {
            DispatchOrder::CloseOrder => self.queue.first().map(QueuedChunk::ready_at),
            DispatchOrder::SloUrgency => self
                .queue
                .iter()
                .map(QueuedChunk::ready_at)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
        }?;
        Some(ready.max(self.engine_free_at))
    }

    /// Pops the chunk the engine should run next, with its simulated start
    /// time, if that start is no later than `now`. The caller executes the
    /// chunk and must report the modeled service time via
    /// [`complete`](Self::complete) before the next pop — the engine is
    /// serial.
    ///
    /// Under [`DispatchOrder::SloUrgency`] the winner is the minimum
    /// `(deadline, seq)` among chunks ready by the start time; chunks that
    /// become ready later — even more urgent ones — cannot claim this slot
    /// (dispatch is non-preemptive and never idles a free engine while work
    /// waits).
    ///
    /// # Panics
    /// Panics if the previous dispatch was never completed.
    pub fn pop_next(&mut self, now: f64) -> Option<(QueuedChunk, f64)> {
        assert!(!self.in_flight, "complete() the in-flight chunk first");
        let start = self.next_dispatch_at()?;
        if start > now {
            return None;
        }
        let index = match self.order {
            DispatchOrder::CloseOrder => 0,
            DispatchOrder::SloUrgency => {
                let most_urgent = self
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.ready_at() <= start)
                    .min_by(|(_, a), (_, b)| {
                        a.deadline
                            .partial_cmp(&b.deadline)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.seq.cmp(&b.seq))
                    })
                    .map(|(i, _)| i);
                match most_urgent {
                    Some(i) => i,
                    None => {
                        // `next_dispatch_at` derived `start` from a ready
                        // chunk, so no candidate here means a scheduler bug;
                        // degrade to "nothing to dispatch" rather than
                        // panicking live queries in release builds.
                        debug_assert!(false, "no chunk ready at the computed start time");
                        return None;
                    }
                }
            }
        };
        let chunk = self.queue.remove(index);
        self.in_flight = true;
        self.dispatched_chunks += 1;
        Some((chunk, start))
    }

    /// Reports the dispatched chunk's modeled service time, occupying the
    /// engine for `[start, start + seconds)`. Returns the finish time.
    ///
    /// # Panics
    /// Panics without a matching [`pop_next`](Self::pop_next), or on a
    /// negative/non-finite service time.
    pub fn complete(&mut self, start: f64, seconds: f64) -> f64 {
        assert!(self.in_flight, "complete() without a dispatched chunk");
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "service time must be a finite non-negative duration"
        );
        self.in_flight = false;
        self.engine_free_at = start + seconds;
        self.busy_s += seconds;
        self.engine_free_at
    }

    /// When the engine frees (0 before the first dispatch).
    pub fn engine_free_at(&self) -> f64 {
        self.engine_free_at
    }

    /// Total simulated seconds the engine has spent executing chunks.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Chunks waiting for the engine.
    pub fn queued_chunks(&self) -> usize {
        self.queue.len()
    }

    /// Queries waiting for the engine, across all queued chunks.
    pub fn queued_queries(&self) -> usize {
        self.queue.iter().map(|c| c.batch.len()).sum()
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && !self.in_flight
    }

    /// Chunks handed to the engine so far.
    pub fn dispatched_chunks(&self) -> usize {
        self.dispatched_chunks
    }

    /// Submitted batches that were split into more than one chunk.
    pub fn split_batches(&self) -> usize {
        self.split_batches
    }
}

/// Splits `batch` per `order`, derives each chunk's urgency deadline, and
/// appends the chunks to `queue` with sequence numbers drawn from `seq`.
/// Returns whether the batch was split — the one piece of chunking logic the
/// serial [`EngineScheduler`] and the multi-worker [`ChunkQueue`] share.
///
/// # Panics
/// Panics if the batch is empty or `max_chunk` is zero.
fn enqueue_chunks(
    order: DispatchOrder,
    batch: FormedBatch,
    slo_p99_s: Option<f64>,
    max_chunk: usize,
    seq: &mut u64,
    queue: &mut Vec<QueuedChunk>,
) -> bool {
    assert!(!batch.is_empty(), "the former never emits empty batches");
    let chunks = match order {
        DispatchOrder::CloseOrder => vec![batch],
        DispatchOrder::SloUrgency => batch.into_chunks(max_chunk),
    };
    let split = chunks.len() > 1;
    for (i, chunk) in chunks.into_iter().enumerate() {
        let deadline = match slo_p99_s {
            Some(slo) => chunk.members[0].arrival_s + slo,
            None => f64::INFINITY,
        };
        queue.push(QueuedChunk {
            batch: chunk,
            deadline,
            seq: *seq,
            lead: i == 0,
        });
        *seq += 1;
    }
    split
}

/// The dispatch queue of the **threaded runtime**'s dispatcher stage: the
/// same chunking and SLO-urgency discipline as the [`EngineScheduler`], but
/// feeding *N concurrent* engine workers instead of one serial simulated
/// engine — so there is no `engine_free_at`, no single in-flight slot, and
/// no simulated clock at all.
///
/// Two differences from the serial scheduler, both forced by real time:
///
/// * **Readiness is implicit.** A batch reaching this queue has already
///   closed in real time, so every queued chunk is ready by definition;
///   [`pop_most_urgent`](Self::pop_most_urgent) never needs a `now`.
/// * **No occupancy bookkeeping.** Worker occupancy lives in the dispatcher
///   thread's idle-set (it only dispatches to workers that reported idle),
///   not here — this stays a pure priority queue, clock-free, so the
///   `no-wall-clock` lint invariant keeps holding for `crates/serve`.
///
/// Ordering is identical to the serial scheduler: minimum
/// `(deadline, seq)` under [`DispatchOrder::SloUrgency`] (no-SLO chunks sort
/// last, FIFO tie-break), strict submission FIFO under
/// [`DispatchOrder::CloseOrder`].
#[derive(Debug, Clone)]
pub struct ChunkQueue {
    order: DispatchOrder,
    queue: Vec<QueuedChunk>,
    seq: u64,
    dispatched_chunks: usize,
    split_batches: usize,
}

impl ChunkQueue {
    /// An empty queue under the given discipline.
    pub fn new(order: DispatchOrder) -> Self {
        Self {
            order,
            queue: Vec::new(),
            seq: 0,
            dispatched_chunks: 0,
            split_batches: 0,
        }
    }

    /// The scheduling discipline.
    pub fn order(&self) -> DispatchOrder {
        self.order
    }

    /// Enqueues a formed batch, split into chunks of at most `max_chunk`
    /// queries exactly like [`EngineScheduler::submit`] (never split under
    /// [`DispatchOrder::CloseOrder`]; `slo_p99_s` derives each chunk's
    /// urgency deadline).
    ///
    /// # Panics
    /// Panics if the batch is empty or `max_chunk` is zero.
    pub fn submit(&mut self, batch: FormedBatch, slo_p99_s: Option<f64>, max_chunk: usize) {
        if enqueue_chunks(self.order, batch, slo_p99_s, max_chunk, &mut self.seq, &mut self.queue)
        {
            self.split_batches += 1;
        }
    }

    /// Removes and returns the chunk an idle worker should run next: the
    /// minimum `(deadline, seq)` under [`DispatchOrder::SloUrgency`], the
    /// head of the FIFO under [`DispatchOrder::CloseOrder`]. `None` when
    /// empty.
    pub fn pop_most_urgent(&mut self) -> Option<QueuedChunk> {
        if self.queue.is_empty() {
            return None;
        }
        let index = match self.order {
            DispatchOrder::CloseOrder => 0,
            DispatchOrder::SloUrgency => {
                self.queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.deadline
                            .partial_cmp(&b.deadline)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.seq.cmp(&b.seq))
                    })
                    .map(|(i, _)| i)?
            }
        };
        self.dispatched_chunks += 1;
        Some(self.queue.remove(index))
    }

    /// Chunks waiting for a worker.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no chunk is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queries waiting, across all queued chunks.
    pub fn queued_queries(&self) -> usize {
        self.queue.iter().map(|c| c.batch.len()).sum()
    }

    /// Chunks handed to workers so far.
    pub fn dispatched_chunks(&self) -> usize {
        self.dispatched_chunks
    }

    /// Submitted batches that were split into more than one chunk.
    pub fn split_batches(&self) -> usize {
        self.split_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{CloseReason, PendingQuery};
    use baselines::engine::{QueryOptions, TenantId};

    fn batch(tenant: u32, arrivals: &[f64], closed_at: f64) -> FormedBatch {
        let options = QueryOptions::new(10, 8).with_tenant(TenantId(tenant));
        FormedBatch {
            options,
            members: arrivals
                .iter()
                .enumerate()
                .map(|(i, &t)| PendingQuery {
                    arrival_s: t,
                    stream_index: i,
                    options,
                })
                .collect(),
            opened_at: arrivals[0],
            closed_at,
            reason: CloseReason::Deadline,
        }
    }

    #[test]
    fn close_order_is_strict_fifo_over_whole_batches() {
        let mut s = EngineScheduler::new(DispatchOrder::CloseOrder);
        s.submit(batch(2, &[0.0, 0.1, 0.2], 0.3), None, 1);
        s.submit(batch(1, &[0.35], 0.4), Some(0.01), 1);
        // FIFO: the bulk batch goes first whole despite the cap of 1 and the
        // urgent rival behind it.
        let (first, start) = s.pop_next(10.0).expect("work is queued");
        assert_eq!(first.batch.len(), 3, "never split in close order");
        assert_eq!(first.batch.options.tenant, TenantId(2));
        assert_eq!(start, 0.3);
        s.complete(start, 1.0);
        let (second, start) = s.pop_next(10.0).expect("one left");
        assert_eq!(second.batch.options.tenant, TenantId(1));
        assert_eq!(start, 1.3, "waits for the engine to free");
        s.complete(start, 0.5);
        assert!(s.is_idle());
        assert_eq!(s.dispatched_chunks(), 2);
        assert_eq!(s.split_batches(), 0);
        assert!((s.busy_s() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn urgent_chunk_overtakes_bulk_chunks_but_not_the_one_in_flight() {
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        s.submit(batch(2, &[0.0, 0.1, 0.2, 0.3], 0.4), None, 2);
        assert_eq!(s.queued_chunks(), 2, "bulk split at the cap");
        assert_eq!(s.queued_queries(), 4);
        assert_eq!(s.split_batches(), 1);
        // First bulk chunk dispatches (nothing else is ready)...
        let (c1, start1) = s.pop_next(10.0).expect("ready");
        assert_eq!((c1.batch.options.tenant, start1), (TenantId(2), 0.4));
        s.complete(start1, 1.0);
        // ...the tight batch closes while it runs...
        s.submit(batch(1, &[0.5], 0.6), Some(0.25), 2);
        // ...and overtakes the second bulk chunk when the engine frees.
        let (c2, start2) = s.pop_next(10.0).expect("ready");
        assert_eq!((c2.batch.options.tenant, start2), (TenantId(1), 1.4));
        s.complete(start2, 0.1);
        let (c3, _) = s.pop_next(10.0).expect("ready");
        assert_eq!(c3.batch.options.tenant, TenantId(2));
    }

    #[test]
    fn fifo_breaks_deadline_ties_within_a_tenant() {
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        // Same deadline (same arrival + SLO): submission order wins.
        s.submit(batch(1, &[0.0], 0.1), Some(1.0), 8);
        s.submit(batch(1, &[0.0], 0.1), Some(1.0), 8);
        let (first, start) = s.pop_next(10.0).expect("ready");
        assert_eq!(first.seq, 0);
        s.complete(start, 0.0);
        let (second, _) = s.pop_next(10.0).expect("ready");
        assert_eq!(second.seq, 1);
    }

    #[test]
    fn no_slo_sorts_after_any_deadline() {
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        s.submit(batch(2, &[0.0], 0.1), None, 8);
        s.submit(batch(1, &[0.05], 0.1), Some(1e6), 8);
        let (first, _) = s.pop_next(10.0).expect("ready");
        assert_eq!(
            first.batch.options.tenant,
            TenantId(1),
            "even a huge finite SLO beats no SLO"
        );
    }

    #[test]
    fn dispatch_never_starts_before_the_close_or_after_now() {
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        s.submit(batch(1, &[0.0], 0.5), Some(1.0), 8);
        assert_eq!(s.next_dispatch_at(), Some(0.5));
        assert!(s.pop_next(0.4).is_none(), "not ready yet");
        let (_, start) = s.pop_next(0.5).expect("ready exactly at the close");
        assert_eq!(start, 0.5);
        s.complete(start, 0.0);
        assert_eq!(s.next_dispatch_at(), None);
    }

    #[test]
    fn late_closing_urgent_work_cannot_claim_an_earlier_slot() {
        // Non-preemptive, work-conserving: at t=1.0 only the bulk chunk is
        // ready, so it runs even though a more urgent chunk closes at 1.5.
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        s.submit(batch(2, &[0.0], 1.0), None, 8);
        s.submit(batch(1, &[1.4], 1.5), Some(0.1), 8);
        let (first, start) = s.pop_next(10.0).expect("ready");
        assert_eq!((first.batch.options.tenant, start), (TenantId(2), 1.0));
    }

    #[test]
    #[should_panic(expected = "complete() the in-flight chunk first")]
    fn double_dispatch_without_completion_is_a_bug() {
        let mut s = EngineScheduler::new(DispatchOrder::SloUrgency);
        s.submit(batch(1, &[0.0], 0.0), None, 8);
        s.submit(batch(1, &[0.0], 0.0), None, 8);
        let _ = s.pop_next(1.0);
        let _ = s.pop_next(1.0);
    }

    #[test]
    fn chunk_queue_pops_in_slo_urgency_order() {
        let mut q = ChunkQueue::new(DispatchOrder::SloUrgency);
        q.submit(batch(2, &[0.0, 0.1, 0.2, 0.3], 0.4), None, 2);
        q.submit(batch(1, &[0.5], 0.6), Some(0.25), 2);
        assert_eq!(q.len(), 3, "bulk split in two plus the tight singleton");
        assert_eq!(q.queued_queries(), 5);
        assert_eq!(q.split_batches(), 1);
        let order: Vec<TenantId> = std::iter::from_fn(|| q.pop_most_urgent())
            .map(|c| c.batch.options.tenant)
            .collect();
        // The tight chunk overtakes both bulk chunks; bulk stays FIFO.
        assert_eq!(order, vec![TenantId(1), TenantId(2), TenantId(2)]);
        assert!(q.is_empty());
        assert_eq!(q.dispatched_chunks(), 3);
    }

    #[test]
    fn chunk_queue_close_order_is_fifo_and_never_splits() {
        let mut q = ChunkQueue::new(DispatchOrder::CloseOrder);
        q.submit(batch(2, &[0.0, 0.1, 0.2], 0.3), None, 1);
        q.submit(batch(1, &[0.35], 0.4), Some(0.01), 1);
        let first = q.pop_most_urgent().expect("work queued");
        assert_eq!(first.batch.len(), 3, "never split in close order");
        assert_eq!(first.batch.options.tenant, TenantId(2));
        let second = q.pop_most_urgent().expect("one left");
        assert_eq!(second.batch.options.tenant, TenantId(1));
        assert!(q.pop_most_urgent().is_none());
        assert_eq!(q.split_batches(), 0);
    }

    #[test]
    fn chunk_queue_matches_serial_scheduler_order() {
        // The multi-worker queue must pick chunks in exactly the order the
        // serial scheduler would when drained one at a time with the engine
        // always free — same (deadline, seq) discipline, same chunking.
        let submissions = [
            (batch(2, &[0.0, 0.1, 0.2, 0.3], 0.4), None, 2usize),
            (batch(1, &[0.1], 0.2), Some(0.5), 2),
            (batch(3, &[0.15], 0.2), Some(0.1), 2),
            (batch(1, &[0.3, 0.35], 0.4), Some(0.5), 1),
        ];
        let mut serial = EngineScheduler::new(DispatchOrder::SloUrgency);
        let mut multi = ChunkQueue::new(DispatchOrder::SloUrgency);
        for (b, slo, cap) in submissions {
            serial.submit(b.clone(), slo, cap);
            multi.submit(b, slo, cap);
        }
        let mut serial_order = Vec::new();
        while let Some((chunk, start)) = serial.pop_next(f64::INFINITY) {
            serial_order.push((chunk.seq, chunk.deadline.to_bits()));
            serial.complete(start, 0.0);
        }
        let multi_order: Vec<(u64, u64)> = std::iter::from_fn(|| multi.pop_most_urgent())
            .map(|c| (c.seq, c.deadline.to_bits()))
            .collect();
        assert_eq!(serial_order, multi_order);
    }
}
