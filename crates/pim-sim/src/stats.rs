//! Stage-labeled time accounting.
//!
//! Every transfer, host step and DPU kernel region carries a stage label
//! (e.g. `"cluster_filtering"`, `"lut"`, `"dist"`, `"topk"`). The breakdown
//! of simulated time by label is what reproduces the paper's Figure 1 and
//! Figure 19 stage-breakdown plots.

use std::collections::BTreeMap;

/// Accumulated simulated seconds per stage label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    stages: BTreeMap<String, f64>,
}

impl StageBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` to `stage`.
    pub fn add(&mut self, stage: &str, seconds: f64) {
        *self.stages.entry(stage.to_string()).or_insert(0.0) += seconds;
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (k, v) in &other.stages {
            self.add(k, *v);
        }
    }

    /// Total seconds across all stages.
    pub fn total(&self) -> f64 {
        self.stages.values().sum()
    }

    /// Seconds attributed to `stage` (0.0 if absent).
    pub fn seconds(&self, stage: &str) -> f64 {
        self.stages.get(stage).copied().unwrap_or(0.0)
    }

    /// Fraction of the total attributed to `stage` (0.0 for an empty
    /// breakdown).
    pub fn fraction(&self, stage: &str) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            0.0
        } else {
            self.seconds(stage) / total
        }
    }

    /// All (stage, seconds) pairs sorted by stage name.
    pub fn entries(&self) -> Vec<(String, f64)> {
        self.stages.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// All (stage, fraction-of-total) pairs sorted by stage name.
    pub fn fractions(&self) -> Vec<(String, f64)> {
        let total = self.total();
        self.stages
            .iter()
            .map(|(k, v)| (k.clone(), if total > 0.0 { v / total } else { 0.0 }))
            .collect()
    }

    /// Whether no time has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Removes all recorded time.
    pub fn clear(&mut self) {
        self.stages.clear();
    }
}

impl std::fmt::Display for StageBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total();
        for (stage, secs) in &self.stages {
            let pct = if total > 0.0 { secs / total * 100.0 } else { 0.0 };
            writeln!(f, "{stage:<24} {secs:>12.6} s  ({pct:>5.1} %)")?;
        }
        writeln!(f, "{:<24} {total:>12.6} s", "total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_fractions() {
        let mut b = StageBreakdown::new();
        assert!(b.is_empty());
        b.add("dist", 3.0);
        b.add("topk", 1.0);
        b.add("dist", 1.0);
        assert_eq!(b.total(), 5.0);
        assert_eq!(b.seconds("dist"), 4.0);
        assert_eq!(b.fraction("dist"), 0.8);
        assert_eq!(b.fraction("missing"), 0.0);
        assert_eq!(b.entries().len(), 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = StageBreakdown::new();
        a.add("x", 1.0);
        let mut b = StageBreakdown::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.seconds("x"), 3.0);
        assert_eq!(a.seconds("y"), 3.0);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.fraction("x"), 0.0);
    }

    #[test]
    fn display_contains_stages() {
        let mut b = StageBreakdown::new();
        b.add("lut", 0.25);
        let s = format!("{b}");
        assert!(s.contains("lut"));
        assert!(s.contains("total"));
    }
}
