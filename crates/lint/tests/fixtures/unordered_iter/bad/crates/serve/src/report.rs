//! Fixture: hash order leaks straight into a serve report.

use std::collections::HashMap;

pub fn render(counts: &HashMap<u64, u64>) -> String {
    let mut out = String::new();
    for (tenant, n) in counts.iter() {
        out.push_str(&format!("{tenant}: {n}\n"));
    }
    out
}
