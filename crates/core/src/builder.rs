//! The offline phase: mining, encoding, placement and MRAM loading.
//!
//! `UpAnnsBuilder` turns a trained [`IvfPqIndex`] plus (optionally) a
//! historical query workload into a ready-to-query [`UpAnnsEngine`]:
//!
//! 1. derive per-cluster access frequencies from the historical workload,
//! 2. run the PIM-aware data placement (Algorithm 1) — or the naive
//!    round-robin distribution for the PIM-naive baseline,
//! 3. mine high-frequency code combinations and re-encode every cluster
//!    (Opt3), and
//! 4. stage codebook, ids and code payloads into every DPU's MRAM.
//!
//! None of this counts toward query latency; the engine resets the simulated
//! clock before every batch.

use crate::config::UpAnnsConfig;
use crate::cooccurrence::{mine_cluster_combos, ComboTable, MiningParams};
use crate::encoding::CaeList;
use crate::engine::{EpochState, UpAnnsEngine};
use crate::kernel::{mailbox_slot_bytes, ClusterReplica, DpuStore, ListEncoding};
use crate::placement::{place_pim_aware, place_round_robin, Placement, PlacementInput};
use annkit::ivf::IvfPqIndex;
use annkit::mutation::IndexSnapshot;
use annkit::pq::ProductQuantizer;
use annkit::vector::Dataset;
use pim_sim::config::PimConfig;
use pim_sim::host::PimSystem;
use std::collections::HashMap;

/// Capacity hints for the per-DPU staging buffers allocated at build time.
/// The engine grows them on demand if a batch exceeds the hints.
#[derive(Debug, Clone)]
pub struct BatchCapacity {
    /// Expected number of queries per batch.
    pub batch_size: usize,
    /// Expected `nprobe`.
    pub nprobe: usize,
    /// Largest `k` that will be requested.
    pub max_k: usize,
}

impl Default for BatchCapacity {
    fn default() -> Self {
        Self {
            batch_size: 1_000,
            nprobe: 32,
            max_k: 100,
        }
    }
}

/// Builder of [`UpAnnsEngine`]s (and, with [`UpAnnsConfig::pim_naive`], of the
/// PIM-naive baseline).
pub struct UpAnnsBuilder<'a> {
    index: &'a IvfPqIndex,
    config: UpAnnsConfig,
    pim_config: PimConfig,
    frequencies: Option<Vec<f64>>,
    placement_override: Option<Placement>,
    capacity: BatchCapacity,
    mining: MiningParams,
}

impl<'a> UpAnnsBuilder<'a> {
    /// Creates a builder over a trained index with default configuration
    /// (full UpANNS, the paper's 7-DIMM system).
    pub fn new(index: &'a IvfPqIndex) -> Self {
        Self {
            index,
            config: UpAnnsConfig::upanns(),
            pim_config: PimConfig::paper_seven_dimms(),
            frequencies: None,
            placement_override: None,
            capacity: BatchCapacity::default(),
            mining: MiningParams::default(),
        }
    }

    /// Sets the engine configuration (use [`UpAnnsConfig::pim_naive`] for the
    /// baseline).
    pub fn with_config(mut self, config: UpAnnsConfig) -> Self {
        self.mining.max_combos = config.combos_per_cluster;
        self.mining.combo_len = config.combo_len;
        self.config = config;
        self
    }

    /// Sets the simulated PIM hardware configuration (number of DPUs, etc.).
    pub fn with_pim_config(mut self, pim: PimConfig) -> Self {
        self.pim_config = pim;
        self
    }

    /// Supplies per-cluster historical access frequencies directly.
    pub fn with_frequencies(mut self, frequencies: Vec<f64>) -> Self {
        assert_eq!(
            frequencies.len(),
            self.index.nlist(),
            "one frequency per cluster required"
        );
        self.frequencies = Some(frequencies);
        self
    }

    /// Derives per-cluster access frequencies from a historical query set by
    /// running cluster filtering on it (the way the paper's offline phase
    /// consumes past workload).
    pub fn with_history(mut self, history: &Dataset, nprobe: usize) -> Self {
        self.frequencies = Some(frequencies_from_queries(self.index, history, nprobe));
        self
    }

    /// Uses an externally computed placement instead of running Algorithm 1
    /// (or round-robin) inside the builder. This is how an adapted placement
    /// from [`crate::adaptive`] is turned back into a ready engine after a
    /// query-pattern shift (§4.1.2).
    ///
    /// The placement must target the same cluster count and DPU count the
    /// builder is configured for; [`build`](Self::build) validates it.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement_override = Some(placement);
        self
    }

    /// Sets the staging-buffer capacity hints.
    pub fn with_batch_capacity(mut self, capacity: BatchCapacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Runs the offline phase and returns a ready engine serving a frozen
    /// single-entry timeline. The builder's inputs are retained by the
    /// engine as its build recipe, so installing a
    /// [`SnapshotTimeline`](annkit::mutation::SnapshotTimeline) later
    /// re-runs this same offline phase per installed snapshot.
    pub fn build(self) -> UpAnnsEngine {
        let recipe = BuildRecipe {
            config: self.config,
            pim_config: self.pim_config,
            frequencies: self.frequencies,
            capacity: self.capacity,
            mining: self.mining,
        };
        let state = build_epoch_state(
            IndexSnapshot::from(self.index),
            &recipe,
            self.placement_override,
        );
        UpAnnsEngine::from_build(recipe, state)
    }
}

/// The offline-phase inputs an engine keeps so it can rebuild its per-epoch
/// state when a snapshot timeline is installed. The historical frequencies
/// are reused across epochs: the workload history does not change when the
/// corpus mutates, and the cluster count is invariant under mutation
/// (upserts assign to existing coarse clusters).
#[derive(Clone)]
pub(crate) struct BuildRecipe {
    pub(crate) config: UpAnnsConfig,
    pub(crate) pim_config: PimConfig,
    pub(crate) frequencies: Option<Vec<f64>>,
    pub(crate) capacity: BatchCapacity,
    pub(crate) mining: MiningParams,
}

/// Runs steps 1–4 of the offline phase against one snapshot: placement (so
/// every epoch gets re-placed against its own list sizes), co-occurrence
/// mining/re-encoding, and MRAM staging.
pub(crate) fn build_epoch_state(
    snapshot: IndexSnapshot,
    recipe: &BuildRecipe,
    placement_override: Option<Placement>,
) -> EpochState {
    let nlist = snapshot.nlist();
    let m = snapshot.m();
    let num_dpus = recipe.pim_config.num_dpus;

    // 1. Access frequencies (uniform when no history is supplied).
    let frequencies = recipe
        .frequencies
        .clone()
        .unwrap_or_else(|| vec![1.0 / nlist as f64; nlist]);

    // 2. Placement.
    let bytes_per_vector = m.max(2) * 2 + 8;
    let max_dpu_vectors = recipe
        .config
        .max_dpu_vectors
        .unwrap_or(recipe.pim_config.mram_bytes / bytes_per_vector);
    let mut placement_input = PlacementInput::new(
        snapshot.list_sizes().to_vec(),
        frequencies,
        num_dpus,
        max_dpu_vectors,
    );
    placement_input.threshold_rate = recipe.config.placement_threshold_rate;
    let placement: Placement = match placement_override {
        Some(p) => {
            assert_eq!(
                p.dpu_workload.len(),
                num_dpus,
                "placement override targets a different DPU count"
            );
            p
        }
        None if recipe.config.pim_aware_placement => place_pim_aware(&placement_input),
        None => place_round_robin(&placement_input),
    };
    placement
        .validate(&placement_input)
        .expect("placement must satisfy structural invariants");

    // 3. Mining + re-encoding (Opt3).
    let mut combos: HashMap<usize, ComboTable> = HashMap::new();
    let mut encoded: HashMap<usize, CaeList> = HashMap::new();
    if recipe.config.cooccurrence_encoding {
        for c in 0..nlist {
            let list = snapshot.list(c);
            if list.is_empty() {
                continue;
            }
            let table = mine_cluster_combos(list.packed_codes(), m, &recipe.mining);
            let cae = CaeList::encode(list.packed_codes(), m, &table);
            combos.insert(c, table);
            encoded.insert(c, cae);
        }
    }

    // 4. Stage everything into MRAM.
    let mut sys = PimSystem::new(recipe.pim_config.clone());
    let codebook = quantized_codebook(snapshot.pq());
    let expected_assignments_per_dpu = ((recipe.capacity.batch_size * recipe.capacity.nprobe)
        .div_ceil(num_dpus))
    .max(8)
        * 2;
    let expected_queries_per_dpu = expected_assignments_per_dpu.min(recipe.capacity.batch_size);
    let query_record_bytes = 8 + snapshot.dim() * 4;
    let mut stores = Vec::with_capacity(num_dpus);
    for dpu in 0..num_dpus {
        let codebook_addr = sys
            .mram_alloc(dpu, codebook.len())
            .expect("codebook fits in MRAM");
        sys.dpu_mut(dpu)
            .mram_mut()
            .write(codebook_addr, &codebook)
            .expect("codebook write");
        let query_buffer_bytes = expected_assignments_per_dpu * query_record_bytes;
        let query_buffer_addr = sys
            .mram_alloc(dpu, query_buffer_bytes)
            .expect("query buffer fits in MRAM");
        let mailbox_bytes = expected_queries_per_dpu * mailbox_slot_bytes(recipe.capacity.max_k);
        let mailbox_addr = sys
            .mram_alloc(dpu, mailbox_bytes)
            .expect("mailbox fits in MRAM");
        stores.push(DpuStore {
            codebook_addr,
            codebook_bytes: codebook.len(),
            query_buffer_addr,
            query_buffer_bytes,
            mailbox_addr,
            mailbox_bytes,
            ..DpuStore::default()
        });
    }

    for (cluster, dpus) in placement.cluster_to_dpus.iter().enumerate() {
        let list = snapshot.list(cluster);
        if list.is_empty() {
            continue;
        }
        let mut ids_bytes = Vec::with_capacity(list.len() * 8);
        for &id in list.ids() {
            ids_bytes.extend_from_slice(&id.to_le_bytes());
        }
        let payload: Vec<u8> = match encoded.get(&cluster) {
            Some(cae) => cae.to_bytes(),
            None => list.packed_codes().to_vec(),
        };
        for &dpu in dpus {
            let ids_addr = sys
                .mram_alloc(dpu, ids_bytes.len())
                .expect("ids fit in MRAM");
            sys.dpu_mut(dpu)
                .mram_mut()
                .write(ids_addr, &ids_bytes)
                .expect("ids write");
            let codes_addr = sys
                .mram_alloc(dpu, payload.len())
                .expect("codes fit in MRAM");
            sys.dpu_mut(dpu)
                .mram_mut()
                .write(codes_addr, &payload)
                .expect("codes write");
            let encoding = match encoded.get(&cluster) {
                Some(cae) => ListEncoding::CaeU16(cae.clone()),
                None => ListEncoding::PlainU8,
            };
            stores[dpu].replicas.insert(
                cluster,
                ClusterReplica {
                    cluster,
                    num_vectors: list.len(),
                    ids_addr,
                    codes_addr,
                    codes_bytes: payload.len(),
                    encoding,
                },
            );
        }
    }

    let reduction_rates: HashMap<usize, f64> = encoded
        .iter()
        .map(|(&c, cae)| (c, cae.reduction_rate()))
        .collect();

    EpochState {
        snapshot,
        placement,
        combos,
        reduction_rates,
        stores,
        sys,
    }
}

/// Derives per-cluster access frequencies by cluster-filtering a historical
/// query set (normalized to sum to 1).
pub fn frequencies_from_queries(index: &IvfPqIndex, history: &Dataset, nprobe: usize) -> Vec<f64> {
    let mut counts = vec![0u64; index.nlist()];
    for q in history.iter() {
        for (c, _) in index.filter_clusters(q, nprobe) {
            counts[c] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![1.0 / index.nlist() as f64; index.nlist()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Quantizes the f32 codebook to 1 byte per component for MRAM staging (the
/// representation whose size the paper quotes: 32 KB for SIFT). The values
/// themselves are only used to account WRAM/MRAM traffic; the functional LUT
/// is built from the full-precision codebook on the host side of the
/// simulator.
fn quantized_codebook(pq: &ProductQuantizer) -> Vec<u8> {
    let flat = pq.codebooks_flat();
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &x in flat {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = (hi - lo).max(f32::MIN_POSITIVE);
    flat.iter()
        .map(|&x| (((x - lo) / range) * 255.0).round() as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::IvfPqParams;
    use annkit::synthetic::SyntheticSpec;
    use std::sync::OnceLock;

    fn shared_index() -> &'static (IvfPqIndex, Dataset) {
        static IX: OnceLock<(IvfPqIndex, Dataset)> = OnceLock::new();
        IX.get_or_init(|| {
            let data = SyntheticSpec::sift_like(1600)
                .with_clusters(8)
                .with_seed(8)
                .generate();
            let index =
                IvfPqIndex::train(&data, &IvfPqParams::new(8, 16).with_train_size(700), 4);
            (index, data)
        })
    }

    #[test]
    fn builds_an_engine_with_every_cluster_stored() {
        let (index, _) = shared_index();
        let engine = UpAnnsBuilder::new(index)
            .with_pim_config(PimConfig::with_dpus(4))
            .with_batch_capacity(BatchCapacity {
                batch_size: 16,
                nprobe: 4,
                max_k: 10,
            })
            .build();
        // Every non-empty cluster must be hosted by at least one DPU store.
        for c in 0..index.nlist() {
            if index.list(c).is_empty() {
                continue;
            }
            let hosted = engine
                .stores()
                .iter()
                .filter(|s| s.replicas.contains_key(&c))
                .count();
            assert!(hosted >= 1, "cluster {c} not staged on any DPU");
            assert_eq!(hosted, engine.placement().replicas(c));
        }
    }

    #[test]
    fn pim_naive_uses_round_robin_and_plain_codes() {
        let (index, _) = shared_index();
        let engine = UpAnnsBuilder::new(index)
            .with_config(UpAnnsConfig::pim_naive())
            .with_pim_config(PimConfig::with_dpus(4))
            .with_batch_capacity(BatchCapacity {
                batch_size: 16,
                nprobe: 4,
                max_k: 10,
            })
            .build();
        assert_eq!(engine.placement().total_replicas(), index.nlist());
        for store in engine.stores() {
            for replica in store.replicas.values() {
                assert!(matches!(replica.encoding, ListEncoding::PlainU8));
            }
        }
        assert!(engine.mean_reduction_rate() == 0.0);
    }

    #[test]
    fn cae_build_records_reduction_rates() {
        let (index, _) = shared_index();
        let engine = UpAnnsBuilder::new(index)
            .with_pim_config(PimConfig::with_dpus(4))
            .with_batch_capacity(BatchCapacity {
                batch_size: 16,
                nprobe: 4,
                max_k: 10,
            })
            .build();
        assert!(engine.mean_reduction_rate() >= 0.0);
        assert!(engine.mean_reduction_rate() < 1.0);
    }

    #[test]
    fn history_frequencies_sum_to_one_and_bias_placement() {
        let (index, data) = shared_index();
        let history = data.gather(&(0..200).map(|i| i * 3 % 1600).collect::<Vec<_>>());
        let freqs = frequencies_from_queries(index, &history, 3);
        assert_eq!(freqs.len(), index.nlist());
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        let engine = UpAnnsBuilder::new(index)
            .with_history(&history, 3)
            .with_pim_config(PimConfig::with_dpus(4))
            .with_batch_capacity(BatchCapacity {
                batch_size: 16,
                nprobe: 4,
                max_k: 10,
            })
            .build();
        assert!(engine.placement().max_to_avg_workload() < 2.0);
    }

    #[test]
    fn quantized_codebook_has_expected_size() {
        let (index, _) = shared_index();
        let cb = quantized_codebook(index.pq());
        assert_eq!(cb.len(), index.dim() * 256);
        assert_eq!(cb.len(), index.pq().codebooks_flat().len());
    }
}
