//! Explicitly vectorized fast paths for the three hot kernels — the ADC
//! scan, the L2/inner-product distances, and the top-k pre-filter — behind
//! runtime feature detection.
//!
//! # The answer-identity contract
//!
//! Every committed bench record and the threaded runtime's deterministic
//! replay twin depend on search answers being a pure function of
//! `(query, k, nprobe, index)` — *never* of which machine ran the kernel.
//! This module therefore holds itself to a stronger bar than "epsilon
//! close": **every vectorized path is bitwise-identical to its scalar
//! reference**, proven by the `simd_equivalence` proptests:
//!
//! * the AVX2 ADC scan sums the same `m` table entries per record in the
//!   same order as the scalar loop (lanes are independent records);
//! * the AVX2 distance kernels keep the scalar reference's exact reduction
//!   tree — a 4-lane accumulator fed in chunk order with explicit
//!   multiply-then-add (FMA contraction is deliberately *not* used: its
//!   single rounding would fork the sums from the scalar path and thereby
//!   fork kmeans trajectories, index contents, and the byte-diffed serving
//!   records across machines);
//! * the top-k pre-filter compares exactly (no rounding is involved).
//!
//! # Where `unsafe` lives
//!
//! This module is the **only** place in the workspace where `unsafe` is
//! permitted: the crate root demotes `#![forbid(unsafe_code)]` to `deny`
//! and this file alone re-allows it, the `upanns-lint`
//! `no-unsafe-outside-simd` rule machine-checks that no other file uses
//! the keyword, and every unsafe block here is an `std::arch` intrinsic
//! call whose preconditions (CPU features, in-bounds gathers from a
//! 256-entry LUT row indexed by a `u8`) are established by the dispatcher
//! and by construction.
//!
//! # Dispatch policy
//!
//! [`active`] resolves once per process: an explicit [`force_backend`]
//! call (used by the forced-fallback equivalence tests) wins, then the
//! `UPANNS_FORCE_SCALAR` environment variable, then
//! `is_x86_feature_detected!("avx2")`+`fma`. All kernels also expose
//! `*_with(Backend, ..)` entry points so benches and tests can pin either
//! path explicitly inside a single process.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Which implementation of the hot kernels to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable chunked scalar code (autovectorization-friendly).
    Scalar,
    /// x86-64 AVX2 (+FMA detected, though contraction is unused — see the
    /// module docs) intrinsics.
    Avx2,
}

impl Backend {
    /// Stable lowercase name (`"scalar"` / `"avx2"`), used in bench ids
    /// and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

static FORCED: OnceLock<Backend> = OnceLock::new();
static ACTIVE: OnceLock<Backend> = OnceLock::new();

/// The backend the dispatching kernel entry points use, resolved once per
/// process: [`force_backend`] override first, then the
/// `UPANNS_FORCE_SCALAR` environment variable, then CPU feature detection.
pub fn active() -> Backend {
    *ACTIVE.get_or_init(|| {
        if let Some(f) = FORCED.get() {
            return *f;
        }
        if std::env::var_os("UPANNS_FORCE_SCALAR").is_some_and(|v| v != "0") {
            return Backend::Scalar;
        }
        detect()
    })
}

/// What runtime detection reports for this CPU, ignoring any override.
pub fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// Pins the process-wide dispatch to `backend` for tests that must observe
/// a specific path through the *dispatching* entry points (each Rust
/// integration-test binary is its own process, so a test file can claim
/// the dispatch for itself by calling this first).
///
/// Returns `true` when [`active`] will report `backend` — i.e. the call
/// happened before the first dispatch (or agreed with it). Production code
/// never calls this.
pub fn force_backend(backend: Backend) -> bool {
    let _ = FORCED.set(backend);
    active() == backend
}

// ---------------------------------------------------------------------------
// Distance kernels
// ---------------------------------------------------------------------------

/// Scalar reference for [`l2_squared_with`]: 4-lane accumulators fed in
/// chunk order, combined left-associatively, sequential tail. This is the
/// exact reduction tree the AVX2 path reproduces bitwise.
pub fn l2_squared_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            let d = a[i + lane] - b[i + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Scalar reference for [`inner_product_with`]; same reduction tree as
/// [`l2_squared_scalar`].
pub fn inner_product_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            acc[lane] += a[i + lane] * b[i + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared L2 distance on an explicit backend (bitwise-equal across
/// backends; see the module docs).
#[inline]
pub fn l2_squared_with(backend: Backend, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 {
        // Safety: the Avx2 backend is only handed out by `detect()` (which
        // verified the features), by tests on machines where `force_backend`
        // succeeded, or by benches that consulted `detect()` themselves.
        return unsafe { x86::l2_squared_avx2(a, b) };
    }
    let _ = backend;
    l2_squared_scalar(a, b)
}

/// Inner product on an explicit backend (bitwise-equal across backends).
#[inline]
pub fn inner_product_with(backend: Backend, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 {
        // Safety: as in `l2_squared_with`.
        return unsafe { x86::inner_product_avx2(a, b) };
    }
    let _ = backend;
    inner_product_scalar(a, b)
}

// ---------------------------------------------------------------------------
// ADC scan
// ---------------------------------------------------------------------------

/// How many records the blocked/vectorized scans keep in flight. Eight
/// records share one LUT row per sub-quantizer step (a 1 KB row of the
/// table), which is the cache-blocked access pattern the AVX2 gather path
/// uses natively.
pub const SCAN_LANES: usize = 8;

/// Naive record-major scalar ADC scan — the reference implementation every
/// other path must match bitwise. `table` is row-major (`sub * 256 + code`,
/// `m * 256` entries); `packed` holds `n` records of `m` code bytes.
pub fn adc_scan_reference(table: &[f32], m: usize, packed: &[u8], out: &mut Vec<f32>) {
    debug_assert_eq!(table.len(), m * 256, "LUT table size mismatch");
    debug_assert!(packed.len().is_multiple_of(m), "packed code buffer not a multiple of m");
    out.clear();
    out.reserve(packed.len() / m);
    for code in packed.chunks_exact(m) {
        let mut sum = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            sum += table[sub * 256 + c as usize];
        }
        out.push(sum);
    }
}

/// Portable cache-blocked ADC scan: [`SCAN_LANES`] records in flight,
/// iterated sub-major so all lanes read the *same* 256-entry LUT row before
/// moving to the next — a transposed access pattern over the row-major
/// table that the autovectorizer can turn into gathers/unrolled loads.
/// Per record the `m` partial sums are added in sub order, so the result
/// is bitwise-identical to [`adc_scan_reference`].
pub fn adc_scan_blocked(table: &[f32], m: usize, packed: &[u8], out: &mut Vec<f32>) {
    debug_assert_eq!(table.len(), m * 256, "LUT table size mismatch");
    debug_assert!(packed.len().is_multiple_of(m), "packed code buffer not a multiple of m");
    let n = packed.len() / m;
    out.clear();
    out.reserve(n);
    let mut r = 0;
    while r + SCAN_LANES <= n {
        let block = &packed[r * m..(r + SCAN_LANES) * m];
        let mut acc = [0.0f32; SCAN_LANES];
        for sub in 0..m {
            let row = &table[sub * 256..sub * 256 + 256];
            for (lane, a) in acc.iter_mut().enumerate() {
                *a += row[block[lane * m + sub] as usize];
            }
        }
        out.extend_from_slice(&acc);
        r += SCAN_LANES;
    }
    for code in packed[r * m..].chunks_exact(m) {
        let mut sum = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            sum += table[sub * 256 + c as usize];
        }
        out.push(sum);
    }
}

/// ADC scan on an explicit backend, appending one distance per record into
/// `out` (cleared first). Bitwise-equal across backends.
///
/// # Panics
/// Panics if `table.len() != m * 256` or `packed.len()` is not a multiple
/// of `m`.
pub fn adc_scan_with(backend: Backend, table: &[f32], m: usize, packed: &[u8], out: &mut Vec<f32>) {
    assert_eq!(table.len(), m * 256, "LUT table size mismatch");
    assert!(
        packed.len().is_multiple_of(m),
        "packed code buffer not a multiple of m"
    );
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 {
        // Safety: feature availability as in `l2_squared_with`; gather
        // indices are u8 codes (0..=255) into 256-entry rows, in bounds by
        // the table-size assertion above.
        unsafe { x86::adc_scan_avx2(table, m, packed, out) };
        return;
    }
    let _ = backend;
    adc_scan_blocked(table, m, packed, out);
}

// ---------------------------------------------------------------------------
// Top-k pre-filter
// ---------------------------------------------------------------------------

/// Lane mask of `values[i] <= threshold` for up to [`SCAN_LANES`] values
/// (bit `i` set iff lane `i` passes). `NaN <= t` is false in every lane,
/// exactly as in the scalar comparison, so NaN candidates are filtered the
/// same way `TopK::push` rejects them against a full heap. Comparison is
/// exact — no rounding — so the mask is identical across backends.
///
/// # Panics
/// Panics if `values.len() > SCAN_LANES`.
pub fn le_mask_with(backend: Backend, values: &[f32], threshold: f32) -> u32 {
    assert!(values.len() <= SCAN_LANES, "at most SCAN_LANES values");
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && values.len() == SCAN_LANES {
        // Safety: feature availability as in `l2_squared_with`; the length
        // check above guarantees a full 8-lane unaligned load is in bounds.
        return unsafe { x86::le_mask_avx2(values, threshold) };
    }
    let _ = backend;
    let mut mask = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if v <= threshold {
            mask |= 1 << i;
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SCAN_LANES;
    use std::arch::x86_64::*;

    /// Bitwise twin of `l2_squared_scalar`: 8 lanes of subtract/multiply
    /// per step, folded into a 4-lane accumulator as `(acc + lo) + hi` —
    /// lane `l` receives `d²` terms in exactly the scalar order
    /// (`8j+l` then `8j+4+l`). Explicit mul+add, no FMA contraction.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn l2_squared_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
        let n = a.len();
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            let d = _mm256_sub_ps(va, vb);
            let sq = _mm256_mul_ps(d, d);
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(sq));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps::<1>(sq));
            i += 8;
        }
        if i + 4 <= n {
            let va = _mm_loadu_ps(a.as_ptr().add(i));
            let vb = _mm_loadu_ps(b.as_ptr().add(i));
            let d = _mm_sub_ps(va, vb);
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
            i += 4;
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for j in i..n {
            let d = a[j] - b[j];
            sum += d * d;
        }
        sum
    }

    /// Bitwise twin of `inner_product_scalar`; same structure as
    /// [`l2_squared_avx2`].
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn inner_product_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
        let n = a.len();
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            let p = _mm256_mul_ps(va, vb);
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(p));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps::<1>(p));
            i += 8;
        }
        if i + 4 <= n {
            let va = _mm_loadu_ps(a.as_ptr().add(i));
            let vb = _mm_loadu_ps(b.as_ptr().add(i));
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
            i += 4;
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for j in i..n {
            sum += a[j] * b[j];
        }
        sum
    }

    /// Eight records in flight: per sub-quantizer, gather the eight lanes'
    /// table entries from one 256-entry LUT row and accumulate. Each lane
    /// is an independent record whose `m` adds happen in sub order, so
    /// every output is bitwise-equal to the scalar reference.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `table.len() == m * 256`, and
    /// `packed.len().is_multiple_of(m)` (gather indices are u8 codes, in bounds of
    /// their 256-entry row by construction).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn adc_scan_avx2(table: &[f32], m: usize, packed: &[u8], out: &mut Vec<f32>) {
        let n = packed.len() / m;
        out.clear();
        out.reserve(n);
        let mut r = 0;
        while r + SCAN_LANES <= n {
            let block = &packed[r * m..];
            let mut acc = _mm256_setzero_ps();
            for sub in 0..m {
                // Lane l gathers row entry `block[l * m + sub]`.
                let idx = _mm256_set_epi32(
                    block[7 * m + sub] as i32,
                    block[6 * m + sub] as i32,
                    block[5 * m + sub] as i32,
                    block[4 * m + sub] as i32,
                    block[3 * m + sub] as i32,
                    block[2 * m + sub] as i32,
                    block[m + sub] as i32,
                    block[sub] as i32,
                );
                let row = table.as_ptr().add(sub * 256);
                acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(row, idx));
            }
            let mut lanes = [0.0f32; SCAN_LANES];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            out.extend_from_slice(&lanes);
            r += SCAN_LANES;
        }
        for code in packed[r * m..].chunks_exact(m) {
            let mut sum = 0.0f32;
            for (sub, &c) in code.iter().enumerate() {
                sum += table[sub * 256 + c as usize];
            }
            out.push(sum);
        }
    }

    /// 8-lane `v <= threshold` movemask.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `values.len() == 8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn le_mask_avx2(values: &[f32], threshold: f32) -> u32 {
        let v = _mm256_loadu_ps(values.as_ptr());
        let t = _mm256_set1_ps(threshold);
        let cmp = _mm256_cmp_ps::<_CMP_LE_OQ>(v, t);
        _mm256_movemask_ps(cmp) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() * 2.0 - 0.5).collect();
        (a, b)
    }

    #[test]
    fn detected_backend_matches_both_paths_bitwise() {
        // On AVX2 hardware this proves the vector paths; elsewhere it
        // degenerates to scalar-vs-scalar, and the proptest suite is the
        // cross-machine evidence.
        let backend = detect();
        for n in [0usize, 1, 3, 4, 7, 8, 12, 15, 16, 33, 128, 131] {
            let (a, b) = vecs(n);
            assert_eq!(
                l2_squared_with(backend, &a, &b).to_bits(),
                l2_squared_scalar(&a, &b).to_bits(),
                "l2 dim {n}"
            );
            assert_eq!(
                inner_product_with(backend, &a, &b).to_bits(),
                inner_product_scalar(&a, &b).to_bits(),
                "ip dim {n}"
            );
        }
    }

    #[test]
    fn adc_scan_paths_agree_bitwise() {
        let m = 6;
        let table: Vec<f32> = (0..m * 256).map(|i| (i as f32 * 0.013).sin()).collect();
        let packed: Vec<u8> = (0..m * 21).map(|i| ((i * 37 + 11) % 256) as u8).collect();
        let mut reference = Vec::new();
        adc_scan_reference(&table, m, &packed, &mut reference);
        for backend in [Backend::Scalar, detect()] {
            let mut got = Vec::new();
            adc_scan_with(backend, &table, m, &packed, &mut got);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.to_bits(), r.to_bits(), "{backend:?}");
            }
        }
    }

    #[test]
    fn le_mask_matches_scalar_semantics() {
        let values = [1.0f32, 5.0, f32::NAN, 2.0, 2.0, -1.0, 9.0, 0.0];
        for backend in [Backend::Scalar, detect()] {
            let mask = le_mask_with(backend, &values, 2.0);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(mask & (1 << i) != 0, v <= 2.0, "{backend:?} lane {i}");
            }
        }
        // Short tails take the scalar path on every backend.
        assert_eq!(le_mask_with(detect(), &[1.0, 3.0, 2.0], 2.0), 0b101);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }
}
