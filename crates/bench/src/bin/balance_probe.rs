//! Diagnostic: prints the per-DPU scheduled-workload distribution of the
//! PIM-aware placement + scheduling on a reduced configuration, and dissects
//! the critical (most loaded) DPU. Used to verify that the Figure 11 balance
//! behaviour holds and to debug deviations.
//!
//! ```text
//! cargo run -p upanns-bench --release --bin balance_probe [-- nlist dpus nprobe batch]
//! ```

#![forbid(unsafe_code)]

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use annkit::workload::WorkloadSpec;
use upanns::builder::frequencies_from_queries;
use upanns::placement::{place_pim_aware, PlacementInput};
use upanns::scheduling::schedule_queries;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let nlist = args.first().copied().unwrap_or(512);
    let dpus = args.get(1).copied().unwrap_or(112);
    let nprobe = args.get(2).copied().unwrap_or(8);
    let batch = args.get(3).copied().unwrap_or(500);
    let n = 20_000;

    println!("n={n} nlist={nlist} dpus={dpus} nprobe={nprobe} batch={batch}");
    let dataset = SyntheticSpec::sift_like(n)
        .with_clusters((nlist / 4).clamp(16, 512))
        .with_seed(0xABCD)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(nlist, 16).with_train_size(10_000).with_coarse_iterations(8),
        1,
    );
    let history = WorkloadSpec::new(batch * 4).with_seed(2).generate(&dataset).queries;
    let queries = WorkloadSpec::new(batch).with_seed(3).generate(&dataset).queries;

    let sizes = index.list_sizes();
    let freqs = frequencies_from_queries(&index, &history, nprobe);
    let input = PlacementInput::new(sizes.clone(), freqs.clone(), dpus, usize::MAX / 2);
    let placement = place_pim_aware(&input);
    println!(
        "placement: {} replicas total, static max/avg = {:.2}",
        placement.total_replicas(),
        placement.max_to_avg_workload()
    );

    let filtered: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| index.filter_clusters(q, nprobe).into_iter().map(|(c, _)| c).collect())
        .collect();
    let schedule = schedule_queries(&filtered, &placement, &sizes);
    let mut loads: Vec<(usize, u64)> = schedule
        .dpu_workload
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, w)| *w > 0)
        .collect();
    loads.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    let total: u64 = loads.iter().map(|(_, w)| w).sum();
    let avg = total as f64 / loads.len() as f64;
    println!(
        "schedule: {} busy DPUs, avg workload {:.0} vectors, max/avg = {:.2}",
        loads.len(),
        avg,
        schedule.max_to_avg_workload()
    );
    println!("top 8 DPUs by scheduled workload:");
    for &(d, w) in loads.iter().take(8) {
        println!("  dpu {d:4}  {w:8} vectors  ({:.2}x avg)  {} assignments", w as f64 / avg, schedule.per_dpu[d].len());
    }
    let (critical, _) = loads[0];
    println!("critical DPU {critical} composition (cluster, size, replicas, assignments):");
    let mut per_cluster: std::collections::BTreeMap<usize, usize> = Default::default();
    for a in &schedule.per_dpu[critical] {
        *per_cluster.entry(a.cluster).or_default() += 1;
    }
    let mut rows: Vec<_> = per_cluster.into_iter().collect();
    rows.sort_by_key(|&(c, cnt)| std::cmp::Reverse(cnt * sizes[c]));
    for (c, cnt) in rows.iter().take(10) {
        println!(
            "  cluster {c:5}  size {:5}  replicas {}  assignments {cnt}  load {}",
            sizes[*c],
            placement.replicas(*c),
            cnt * sizes[*c]
        );
    }
}
