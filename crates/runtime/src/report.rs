//! What a threaded runtime run measured.
//!
//! The shape deliberately mirrors
//! [`ServiceReport`](upanns_serve::ServiceReport) — same percentile
//! convention, same shed-aware miss accounting — so wall-clock rows and
//! replay rows can sit side by side in one table. The runtime adds the
//! conservation counters ([`lost`](RuntimeReport::lost) /
//! [`duplicated`](RuntimeReport::duplicated)) that a single-threaded replay
//! cannot violate but a pipeline with a shutdown protocol must prove it
//! does not.

use annkit::topk::Neighbor;
use baselines::engine::TenantId;

/// Nearest-rank percentile over an ascending-sorted latency list (0 when
/// empty) — the same convention as the replay's reports.
fn percentile_of(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64).round();
    sorted[rank as usize]
}

/// Shed-aware SLO miss fraction (see
/// [`ServiceReport::slo_miss_fraction`](upanns_serve::ServiceReport::slo_miss_fraction)
/// for the rationale: a shed query is the worst possible latency).
fn miss_fraction_of(sorted: &[f64], completed: usize, shed: usize, slo: Option<f64>) -> f64 {
    let offered = completed + shed;
    if offered == 0 {
        return 0.0;
    }
    let late = match slo {
        Some(slo) => sorted.iter().filter(|&&l| l > slo).count(),
        None => 0,
    };
    (late + shed) as f64 / offered as f64
}

/// One tenant's slice of a [`RuntimeReport`].
#[derive(Debug, Clone)]
pub struct RuntimeTenantRow {
    /// The tenant.
    pub id: TenantId,
    /// Report name (from the stream's profile, or the id's display form).
    pub name: String,
    /// The SLO this tenant is judged by (same resolution rules as the
    /// replay's [`SloTable`](upanns_serve::SloTable)).
    pub slo_p99_s: Option<f64>,
    /// Queries of this tenant answered (engine or cache).
    pub completed: usize,
    /// Queries of this tenant rejected at admission.
    pub shed: usize,
    /// This tenant's end-to-end wall-clock latencies, sorted ascending.
    pub latencies_s: Vec<f64>,
}

impl RuntimeTenantRow {
    /// The `p`-th latency percentile in seconds (nearest rank).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Shed-aware SLO miss fraction for this tenant.
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether this tenant met its SLO (at most 1 % of offered queries
    /// missed; vacuously true without a target).
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }
}

/// What one threaded pipeline run measured.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The engine's display name.
    pub engine: String,
    /// The batch policy's display name (suffixed `-chunked` under priority-
    /// chunked dispatch, like the replay).
    pub policy: String,
    /// `"wall"` or `"logical"` — which clock drove the run.
    pub mode: &'static str,
    /// Engine worker threads the pipeline ran.
    pub workers: usize,
    /// Queries the stream offered.
    pub offered: usize,
    /// Queries answered (engine or cache).
    pub completed: usize,
    /// Queries rejected at admission.
    pub shed: usize,
    /// Offered queries that were neither answered nor shed when the
    /// pipeline drained — **must be 0**; a nonzero value means the shutdown
    /// protocol dropped work.
    pub lost: usize,
    /// Queries answered more than once — **must be 0**.
    pub duplicated: usize,
    /// Cache hits / misses.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Cache entries rejected for carrying an older index epoch than the
    /// arrival's (neither hit nor miss; always 0 without a live-index
    /// epoch schedule).
    pub cache_invalidated: u64,
    /// Chunks the dispatcher handed to workers.
    pub dispatched_chunks: usize,
    /// Formed batches split into more than one chunk.
    pub split_batches: usize,
    /// Query×shard pairs served with degraded (partial) coverage because a
    /// shard had no live replica at dispatch time.
    pub degraded: u64,
    /// Shards cloned to a second replica past the hedging budget.
    pub hedged: u64,
    /// Shards re-dispatched after their host died with the work in flight.
    pub redispatched: u64,
    /// Total *modeled* engine seconds across all workers (the emulated
    /// device occupancy; divide by makespan for emulated device utilization).
    pub busy_modeled_s: f64,
    /// Wall-clock seconds from pipeline start to the last completion
    /// (arrival times in logical mode).
    pub makespan_s: f64,
    /// The p99 SLO the run was measured against, if any.
    pub slo_p99_s: Option<f64>,
    /// Per-query end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// Per-query results in stream order (empty vector for shed queries) —
    /// the twin byte-diff compares exactly this against
    /// [`ServiceReport::results`](upanns_serve::ServiceReport::results).
    pub results: Vec<Vec<Neighbor>>,
    /// Per-tenant breakdown, stream-profile order first.
    pub tenants: Vec<RuntimeTenantRow>,
}

impl RuntimeReport {
    /// Completed queries per second of makespan.
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// The `p`-th latency percentile in seconds (nearest rank).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Mean latency in seconds (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Shed-aware SLO miss fraction over offered queries.
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether the run met its p99 SLO (shed-aware, vacuous without one).
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }

    /// Whether every tenant met its own SLO.
    pub fn all_tenants_meet_slo(&self) -> bool {
        self.tenants.iter().all(RuntimeTenantRow::meets_slo)
    }

    /// Cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Conservation check: every offered query was answered or shed, exactly
    /// once. The pipeline's graceful-shutdown CI gate asserts this.
    pub fn is_conserving(&self) -> bool {
        self.lost == 0 && self.duplicated == 0 && self.completed + self.shed == self.offered
    }
}
