//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use annkit::lut::LookupTable;
use annkit::pq::{pack_codes, ProductQuantizer, KSUB};
use annkit::topk::{topk_by_sort, TopK};
use annkit::vector::Dataset;
use proptest::prelude::*;
use upanns::cooccurrence::{mine_cluster_combos, MiningParams};
use upanns::encoding::CaeList;
use upanns::placement::{place_pim_aware, PlacementInput};
use upanns::scheduling::schedule_queries;
use upanns::topk_prune::merge_thread_local;

/// A product quantizer whose codebook entry `(sub, code)` decodes to
/// predictable values, built without training so properties run fast.
fn synthetic_pq(m: usize, dsub: usize) -> ProductQuantizer {
    let dim = m * dsub;
    let mut codebooks = vec![0.0f32; m * KSUB * dsub];
    for sub in 0..m {
        for code in 0..KSUB {
            for d in 0..dsub {
                codebooks[sub * KSUB * dsub + code * dsub + d] =
                    code as f32 * 0.25 + sub as f32 * 0.01 + d as f32 * 0.001;
            }
        }
    }
    ProductQuantizer::from_codebooks(dim, m, codebooks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bounded heap returns exactly the k smallest candidates, matching a
    /// full sort, for arbitrary inputs.
    #[test]
    fn topk_heap_matches_sort(
        distances in prop::collection::vec(0.0f32..1e6, 1..300),
        k in 1usize..40,
    ) {
        let candidates: Vec<(u64, f32)> = distances
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u64, d))
            .collect();
        let mut heap = TopK::new(k);
        for &(id, d) in &candidates {
            heap.push(id, d);
        }
        let from_heap = heap.into_sorted();
        let from_sort = topk_by_sort(&candidates, k);
        prop_assert_eq!(from_heap.len(), from_sort.len());
        for (a, b) in from_heap.iter().zip(&from_sort) {
            prop_assert_eq!(a.id, b.id);
        }
    }

    /// The pruned merge of thread-local heaps returns exactly the same global
    /// top-k as the naive merge, regardless of how candidates are distributed
    /// across tasklets.
    #[test]
    fn pruned_merge_is_lossless(
        distances in prop::collection::vec(0.0f32..1e6, 1..400),
        tasklets in 1usize..16,
        k in 1usize..24,
    ) {
        let mut locals = vec![TopK::new(k); tasklets];
        for (i, &d) in distances.iter().enumerate() {
            locals[i % tasklets].push(i as u64, d);
        }
        let (pruned, stats_p) = merge_thread_local(&locals, k, true);
        let (naive, stats_n) = merge_thread_local(&locals, k, false);
        let a: Vec<u64> = pruned.into_sorted().iter().map(|n| n.id).collect();
        let b: Vec<u64> = naive.into_sorted().iter().map(|n| n.id).collect();
        prop_assert_eq!(a, b);
        prop_assert!(stats_p.comparisons <= stats_n.comparisons);
    }

    /// ADC via the LUT equals the exact distance between the residual and the
    /// decoded code, for arbitrary residuals and codes.
    #[test]
    fn lut_adc_equals_decoded_distance(
        residual in prop::collection::vec(-10.0f32..10.0, 8),
        code in prop::collection::vec(0u8..=255, 4),
    ) {
        let pq = synthetic_pq(4, 2);
        let lut = LookupTable::build(&pq, &residual);
        let adc = lut.adc_distance(&code);
        let decoded = pq.decode(&code);
        let exact = annkit::distance::l2_squared(&residual, &decoded);
        prop_assert!((adc - exact).abs() <= 1e-2 * exact.abs().max(1.0));
    }

    /// Co-occurrence aware re-encoding never changes the ADC distance and
    /// never lengthens a record beyond m entries.
    #[test]
    fn cae_reencoding_is_lossless(
        codes in prop::collection::vec(prop::collection::vec(0u8..32, 8), 16..80),
        residual in prop::collection::vec(-5.0f32..5.0, 16),
    ) {
        let m = 8;
        let packed = pack_codes(&codes, m);
        let combos = mine_cluster_combos(&packed, m, &MiningParams {
            max_combos: 64,
            combo_len: 3,
            min_support: 0.05,
        });
        let cae = CaeList::encode(&packed, m, &combos);
        let pq = synthetic_pq(m, 2);
        let lut = LookupTable::build(&pq, &residual);
        let sums = combos.partial_sums(&lut);
        for (i, code) in codes.iter().enumerate() {
            let direct = lut.adc_distance(code);
            let via_cae = cae.adc_distance(i, &lut, &sums);
            prop_assert!((direct - via_cae).abs() <= 1e-3 * direct.abs().max(1.0));
            prop_assert!(cae.record(i).len() <= m);
        }
    }

    /// Data placement always covers every cluster, never exceeds DPU capacity
    /// and never places two replicas of one cluster on the same DPU.
    #[test]
    fn placement_invariants_hold(
        sizes in prop::collection::vec(1usize..2_000, 4..64),
        dpus in 2usize..48,
        hot in 0.0f64..20.0,
    ) {
        let mut freqs: Vec<f64> = vec![1.0; sizes.len()];
        freqs[0] += hot; // one arbitrarily hot cluster
        let capacity = sizes.iter().sum::<usize>() * 2 / dpus.min(sizes.len()) + 4_000;
        let input = PlacementInput::new(sizes, freqs, dpus, capacity);
        let placement = place_pim_aware(&input);
        prop_assert!(placement.validate(&input).is_ok());
        prop_assert!(placement.max_to_avg_workload() >= 1.0 - 1e-9);
    }

    /// Query scheduling covers every (query, cluster) pair exactly once on a
    /// DPU that hosts the cluster.
    #[test]
    fn scheduling_invariants_hold(
        sizes in prop::collection::vec(1usize..500, 8..32),
        dpus in 2usize..24,
        probes in prop::collection::vec(prop::collection::vec(0usize..8, 1..6), 1..40),
    ) {
        let clusters = sizes.len();
        let freqs = vec![1.0; clusters];
        let input = PlacementInput::new(sizes.clone(), freqs, dpus, usize::MAX / 2);
        let placement = place_pim_aware(&input);
        // Map probe indices into the valid cluster range and deduplicate.
        let filtered: Vec<Vec<usize>> = probes
            .iter()
            .map(|p| {
                let mut v: Vec<usize> = p.iter().map(|&c| c % clusters).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let schedule = schedule_queries(&filtered, &placement, &sizes);
        prop_assert!(schedule.validate(&filtered, &placement).is_ok());
        prop_assert_eq!(
            schedule.total_assignments(),
            filtered.iter().map(|f| f.len()).sum::<usize>()
        );
    }

    /// PQ encode/decode round-trips stay within the quantization error bound
    /// implied by the synthetic codebook's resolution. The synthetic codebook
    /// places both dimensions of a 2-d subspace at (nearly) the same value, so
    /// the property generates vectors on that diagonal — the region the
    /// codebook can actually represent — and checks the per-dimension error
    /// stays within half the 0.25 grid spacing plus the small sub/dim offsets.
    #[test]
    fn pq_encode_decode_bounded_error(
        sub_values in prop::collection::vec(0.0f32..63.0, 4),
    ) {
        let vector: Vec<f32> = sub_values.iter().flat_map(|&v| [v, v]).collect();
        let pq = synthetic_pq(4, 2);
        let code = pq.encode(&vector);
        let decoded = pq.decode(&code);
        prop_assert_eq!(code.len(), 4);
        prop_assert_eq!(decoded.len(), 8);
        for (orig, rec) in vector.iter().zip(&decoded) {
            prop_assert!((orig - rec).abs() < 0.2, "{} vs {}", orig, rec);
        }
    }

    /// The dataset container preserves pushed vectors verbatim.
    #[test]
    fn dataset_roundtrip(rows in prop::collection::vec(prop::collection::vec(-1e3f32..1e3, 6), 1..50)) {
        let ds = Dataset::from_rows(&rows);
        prop_assert_eq!(ds.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(ds.vector(i), row.as_slice());
        }
    }
}
