//! The serving front-end: admission → batching → dispatch → cache → engine,
//! replayed against the simulated clock.
//!
//! [`SearchService`] wraps any [`AnnEngine`] and replays a timed
//! [`QueryStream`]: every arrival is admitted (or shed), checked against the
//! result cache, and batched with compatible queries; formed batches enter
//! the [`EngineScheduler`], which hands
//! them to the engine (a single serial resource) either whole in close
//! order, or — with [`ServiceConfig::max_chunk`] set — as size-capped
//! chunks in SLO-urgency order, so a tight-SLO tenant's batch waits at most
//! one chunk of a bulk co-tenant's work instead of the whole batch. All
//! times are simulated seconds — the engines' own timing models drive the
//! clock, so sustained QPS and latency percentiles are comparable across
//! the CPU, GPU and PIM engines exactly like the batch benchmarks.

use crate::admission::AdmissionQueue;
use crate::autoscale::Autoscaler;
use crate::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
use crate::cache::ResultCache;
use crate::controller::{BatchPolicy, FixedPolicy};
use crate::dispatch::{DispatchOrder, EngineScheduler, QueuedChunk};
use annkit::mutation::SnapshotTimeline;
use annkit::topk::Neighbor;
use annkit::workload::QueryStream;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest, TenantId};

/// Nearest-rank percentile over an ascending-sorted latency list (0 when
/// empty) — shared by the aggregate and per-tenant report rows.
fn percentile_of(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64).round();
    sorted[rank as usize]
}

/// Shed-aware SLO miss fraction: completed queries over the target plus
/// every shed query, over the offered total (0 when nothing was offered).
fn miss_fraction_of(sorted: &[f64], completed: usize, shed: usize, slo: Option<f64>) -> f64 {
    let offered = completed + shed;
    if offered == 0 {
        return 0.0;
    }
    let late = match slo {
        Some(slo) => sorted.iter().filter(|&&l| l > slo).count(),
        None => 0,
    };
    (late + shed) as f64 / offered as f64
}

/// Configuration of a [`SearchService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum queries waiting for a batch before arrivals are shed.
    pub queue_capacity: usize,
    /// Close conditions of the dynamic batch former — the *initial*
    /// conditions when an adaptive [`BatchPolicy`] is installed via
    /// [`SearchService::with_policy`], the permanent ones otherwise.
    pub batcher: BatchFormerConfig,
    /// Result-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Simulated seconds to answer a query from the cache.
    pub cache_lookup_s: f64,
    /// Optional p99 latency SLO (seconds) used for attainment reporting.
    /// When unset, the replayed stream's own
    /// [`slo_p99_s`](QueryStream::slo_p99_s) annotation is used instead.
    pub slo_p99_s: Option<f64>,
    /// Priority-chunked engine dispatch. `Some(cap)` splits every formed
    /// batch into chunks of at most `cap` queries and dispatches them in
    /// SLO-urgency order ([`DispatchOrder::SloUrgency`]) — the head-of-line
    /// bound: no tenant's dispatch commits the serial engine for more than
    /// one chunk. A [`BatchPolicy`] may steer a *smaller* per-tenant cap
    /// ([`chunk_for`](BatchPolicy::chunk_for)); `cap` stays the ceiling.
    /// `None` (the default) keeps whole batches in serial close order
    /// ([`DispatchOrder::CloseOrder`]) — right for single-tenant streams,
    /// where chunking trades batch amortization for isolation nobody needs.
    pub max_chunk: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            batcher: BatchFormerConfig::default(),
            cache_capacity: 1024,
            cache_lookup_s: 2e-6,
            slo_p99_s: None,
            max_chunk: None,
        }
    }
}

/// One tenant's slice of a [`ServiceReport`]: its own latency distribution,
/// shed count, SLO attainment, and the batching window its traffic ended
/// under. Single-tenant replays produce exactly one row (the `default`
/// tenant), so the per-tenant view is always present.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant.
    pub id: TenantId,
    /// Report name (from the stream's [`TenantProfile`], or the id's
    /// display form for tenants the stream did not announce).
    ///
    /// [`TenantProfile`]: annkit::workload::TenantProfile
    pub name: String,
    /// The tenant's weighted-fair admission share.
    pub weight: u32,
    /// The SLO this tenant was measured against: its own profile SLO, or
    /// the explicit [`ServiceConfig::slo_p99_s`] override. A tenant without
    /// a target of its own — a profiled tenant that declared none, or a
    /// tenant the stream never announced — keeps `None` (vacuous
    /// attainment) unless the config override supplies one. It is **never**
    /// measured against the stream-level SLO, which is the *tightest
    /// profiled tenant's* target and would poison
    /// [`meets_slo`](Self::meets_slo) for strangers. This matches the
    /// [`ControllerBank`](crate::controller::ControllerBank), which gives
    /// targetless tenants no controller.
    pub slo_p99_s: Option<f64>,
    /// Queries of this tenant answered (engine or cache).
    pub completed: usize,
    /// Queries of this tenant rejected at admission.
    pub shed: usize,
    /// This tenant's end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// The close conditions this tenant's groups ended the replay under.
    pub final_batcher: BatchFormerConfig,
}

impl TenantReport {
    /// The `p`-th latency percentile in seconds (nearest rank).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Shed-aware SLO miss fraction for this tenant (see
    /// [`ServiceReport::slo_miss_fraction`]).
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether this tenant met its SLO, shed-aware: at most 1 % of its
    /// offered queries missed. Vacuously true without a target.
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }
}

/// What the replay measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The engine's display name.
    pub engine: String,
    /// The batch policy's display name ("fixed", "adaptive-slo", ...).
    pub policy: String,
    /// The p99 SLO the replay was measured against, if any.
    pub slo_p99_s: Option<f64>,
    /// How many times the policy adjusted the former's close conditions.
    pub controller_adjustments: usize,
    /// The close conditions the policy had settled on when the stream ended.
    pub final_batcher: BatchFormerConfig,
    /// Queries answered (engine or cache).
    pub completed: usize,
    /// Queries rejected at admission.
    pub shed: usize,
    /// Cache hits / misses.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Cache entries rejected for carrying an older index epoch than the
    /// arrival's — removed and recomputed, counted as neither hit nor miss.
    /// Always 0 without an installed [`SnapshotTimeline`].
    pub cache_invalidated: u64,
    /// Formed batches submitted for dispatch, split by close reason.
    pub size_closed_batches: usize,
    /// Batches closed by the waiting deadline.
    pub deadline_closed_batches: usize,
    /// Batches flushed at stream end. Always 0 since trailing batches
    /// close at their own deadlines on the replay clock (kept for
    /// record-schema stability and custom front-ends that still flush).
    pub flushed_batches: usize,
    /// Chunks the dispatcher handed to the engine — equal to
    /// [`batches`](Self::batches) under whole-batch (close-order) dispatch,
    /// larger when [`ServiceConfig::max_chunk`] splits bulk batches.
    pub dispatched_chunks: usize,
    /// Formed batches the dispatcher split into more than one chunk.
    pub split_batches: usize,
    /// Simulated seconds the engine spent executing chunks.
    pub engine_busy_s: f64,
    /// Time of the last completion (the replay's makespan).
    pub makespan_s: f64,
    /// Per-query end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// Per-query results in stream order (empty vector for shed queries).
    pub results: Vec<Vec<Neighbor>>,
    /// Per-query `(arrival, Some(latency) | None)` outcomes — `None` marks a
    /// shed query. The raw material of a
    /// [`RecoveryEnvelope`](crate::envelope::RecoveryEnvelope) over a
    /// fault-injected replay.
    pub outcomes: Vec<(f64, Option<f64>)>,
    /// Query×shard pairs the engine dropped for lack of a live replica
    /// (degraded coverage; 0 for engines without replication).
    pub degraded: u64,
    /// Shard groups the engine hedged to a second replica.
    pub hedged: u64,
    /// Shard groups the engine re-dispatched after their host died in
    /// flight.
    pub redispatched: u64,
    /// Host-count changes an attached [`Autoscaler`] applied.
    pub scale_events: usize,
    /// Total modeled shard-migration seconds those scale events charged.
    pub migration_s: f64,
    /// Per-tenant breakdown, in the stream's tenant-profile order (one
    /// `default` row for single-tenant replays).
    pub tenants: Vec<TenantReport>,
}

impl ServiceReport {
    /// Completed queries per second of makespan (sustained throughput).
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// The `p`-th latency percentile in seconds (nearest-rank on the sorted
    /// latencies; 0 when nothing completed).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Mean latency in seconds (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Fraction of *offered* queries that missed the SLO: completed queries
    /// whose end-to-end latency exceeded the target, **plus every shed
    /// query** — a query turned away at the door received no answer at all,
    /// which is the worst possible latency, so it always counts as a miss
    /// (even when no explicit SLO was configured). 0 when nothing was
    /// offered. A 100 %-shed replay therefore reports exactly 1.0.
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether the replay met its p99 SLO, shed-aware: at most 1 % of the
    /// *offered* queries (shed queries included, via
    /// [`slo_miss_fraction`](Self::slo_miss_fraction)) missed the target.
    /// Vacuously true when no SLO was set.
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }

    /// Whether **every** tenant met its own SLO (the multi-tenant success
    /// criterion — the aggregate [`meets_slo`](Self::meets_slo) can look
    /// healthy while one tenant takes all the misses).
    pub fn all_tenants_meet_slo(&self) -> bool {
        self.tenants.iter().all(TenantReport::meets_slo)
    }

    /// The per-tenant row of `tenant`, if the replay saw it.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == tenant)
    }

    /// Cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total batches the engine executed.
    pub fn batches(&self) -> usize {
        self.size_closed_batches + self.deadline_closed_batches + self.flushed_batches
    }

    /// Mean queries per executed batch (0 without batches).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        let engine_answered = self.completed as u64 - self.cache_hits;
        if batches == 0 {
            0.0
        } else {
            engine_answered as f64 / batches as f64
        }
    }

    /// Mean queries per *dispatched chunk* — the serial engine's actual
    /// per-commitment granularity (0 without dispatches). Equals
    /// [`mean_batch_size`](Self::mean_batch_size) under whole-batch
    /// dispatch.
    pub fn mean_chunk_size(&self) -> f64 {
        let engine_answered = self.completed as u64 - self.cache_hits;
        if self.dispatched_chunks == 0 {
            0.0
        } else {
            engine_answered as f64 / self.dispatched_chunks as f64
        }
    }
}

/// Policy feedback queued until the arrival clock catches up with the
/// completion it describes (the causality guarantee of
/// [`SearchService::replay`]). Each observation carries its tenant so a
/// per-tenant policy bank can route it to the owning controller.
#[derive(Clone, Copy)]
enum Feedback {
    Query {
        at: f64,
        tenant: TenantId,
        latency_s: f64,
    },
    Batch {
        at: f64,
        tenant: TenantId,
        len: usize,
        wait_s: f64,
    },
}

impl Feedback {
    fn at(&self) -> f64 {
        match *self {
            Feedback::Query { at, .. } | Feedback::Batch { at, .. } => at,
        }
    }
}

/// The SLO each tenant's dispatch urgency and report row are judged by:
/// a profiled tenant's own target (or the config override), the config
/// override alone for tenants the stream never announced — never the
/// stream-level SLO, which is the tightest *profiled* tenant's target.
///
/// Public because the threaded runtime's dispatcher stage resolves chunk
/// deadlines with exactly the same table the replay twin uses.
#[derive(Debug, Clone)]
pub struct SloTable {
    entries: Vec<(TenantId, Option<f64>)>,
    fallback: Option<f64>,
}

impl SloTable {
    /// Builds the table from the stream's tenant profiles and the service
    /// config's explicit override (which also covers unannounced tenants).
    pub fn new(stream: &QueryStream, config_slo: Option<f64>) -> Self {
        Self {
            entries: stream
                .tenant_profiles
                .iter()
                .map(|p| (p.id, p.slo_p99_s.or(config_slo)))
                .collect(),
            fallback: config_slo,
        }
    }

    /// The SLO `tenant` is judged (and dispatched) by, if any.
    pub fn slo_of(&self, tenant: TenantId) -> Option<f64> {
        self.entries
            .iter()
            .find(|(id, _)| *id == tenant)
            .map_or(self.fallback, |(_, slo)| *slo)
    }
}

/// The per-tenant dispatch chunk cap: the policy's steered cap clamped by
/// the service-level ceiling (`usize::MAX` — never split — when chunked
/// dispatch is off). Public for the same reason as [`SloTable`]: the
/// threaded runtime's batcher stage resolves chunk caps identically.
pub fn effective_chunk(
    policy: &dyn BatchPolicy,
    tenant: TenantId,
    max_chunk: Option<usize>,
) -> usize {
    match max_chunk {
        None => usize::MAX,
        Some(cap) => policy.chunk_for(tenant).map_or(cap, |c| c.min(cap)).max(1),
    }
}

/// The replay simulation: the former, the dispatch scheduler and all the
/// bookkeeping arrival processing and dispatch-driven completions share.
/// The engine and policy stay parameters — they are borrowed from the
/// service alongside this state.
struct ReplayState<'s> {
    stream: &'s QueryStream,
    former: BatchFormer,
    scheduler: EngineScheduler,
    slos: SloTable,
    max_chunk: Option<usize>,
    cache: ResultCache,
    /// The installed timeline's `(activation, epoch)` schedule — empty for a
    /// frozen index, where every query and cache entry sits at epoch 0.
    epochs: &'s [(f64, u64)],
    /// `(finish, tenant, queries)` of every executed chunk, pushed in
    /// dispatch order. The serial engine makes finish times non-decreasing
    /// in this order (a `debug_assert` guards it) even though they are not
    /// monotone in *close* order under priority dispatch — which is exactly
    /// why admission release walks this vector, not the close sequence.
    completions: Vec<(f64, TenantId, usize)>,
    pending_feedback: Vec<Feedback>,
    latencies: Vec<f64>,
    tenant_latencies: Vec<(TenantId, f64)>,
    results: Vec<Vec<Neighbor>>,
    /// Per-query `(arrival, Some(latency) | None)` — shed queries are `None`.
    outcomes: Vec<(f64, Option<f64>)>,
    /// `(time, missed)` SLO observations an attached autoscaler has not yet
    /// consumed; drained causally, like `pending_feedback`.
    pending_slo_events: Vec<(f64, bool)>,
    /// Fault-tolerance work counters accumulated from engine responses.
    degraded: u64,
    hedged: u64,
    redispatched: u64,
    makespan_s: f64,
    size_closed: usize,
    deadline_closed: usize,
    flushed: usize,
}

impl ReplayState<'_> {
    /// Counts the batch's close reason and enqueues it for dispatch, under
    /// its tenant's SLO deadline and effective chunk cap.
    ///
    /// Under [`DispatchOrder::CloseOrder`] the batch also *executes*
    /// immediately: FIFO dispatch is fully determined at close
    /// (`start = max(closed_at, engine free)`), so running it now — with a
    /// finish possibly in the simulated future — is timing-identical to
    /// waiting, and it makes the batch's cache entries visible from close
    /// time (a repeat of a closed-but-unfinished query coalesces onto the
    /// pending answer via `ready_at`, exactly the pre-scheduler
    /// semantics). Under [`DispatchOrder::SloUrgency`] execution must wait
    /// for [`advance`](Self::advance): a more urgent later close may
    /// overtake this batch, so its start is genuinely undetermined here.
    fn submit<E: AnnEngine>(
        &mut self,
        engine: &mut E,
        next_request_id: &mut u64,
        policy: &dyn BatchPolicy,
        batch: FormedBatch,
    ) {
        match batch.reason {
            CloseReason::Size => self.size_closed += 1,
            CloseReason::Deadline => self.deadline_closed += 1,
            CloseReason::Flush => self.flushed += 1,
        }
        let tenant = batch.options.tenant;
        self.scheduler.submit(
            batch,
            self.slos.slo_of(tenant),
            effective_chunk(policy, tenant, self.max_chunk),
        );
        if self.scheduler.order() == DispatchOrder::CloseOrder {
            while let Some((chunk, start)) = self.scheduler.pop_next(f64::INFINITY) {
                self.run_chunk(engine, next_request_id, chunk, start);
            }
        }
    }

    /// Executes one dispatched chunk on the engine at its simulated start
    /// time: records the completion, the causal policy feedback, the cache
    /// entries (available from `finish` — the ready-at guard keeps repeats
    /// honest) and the per-query results and latencies.
    fn run_chunk<E: AnnEngine>(
        &mut self,
        engine: &mut E,
        next_request_id: &mut u64,
        chunk: QueuedChunk,
        start: f64,
    ) {
        let batch = chunk.batch;
        // Chunks are tenant-pure (the former never mixes tenants and the
        // dispatcher splits batches without mixing), so the options name
        // the one tenant all feedback and the admission release belong to.
        let tenant = batch.options.tenant;
        let indices: Vec<usize> = batch.members.iter().map(|m| m.stream_index).collect();
        let options: Vec<QueryOptions> = batch.members.iter().map(|m| m.options).collect();
        let queries = self.stream.batch.queries.gather(&indices);
        *next_request_id += 1;
        // The request is stamped with the batch's *close* time — the one
        // timestamp the threaded twin reproduces exactly — so an engine with
        // a fault schedule evaluates host liveness identically in replay and
        // twin runs. Per-query arrivals ride along so a live-mutation engine
        // resolves each query's snapshot at its own arrival, keeping every
        // answer a pure function of (query, arrival) no matter how the
        // twin's asynchronous cache happened to shape this batch.
        let request = SearchRequest::new(queries, options)
            .with_id(*next_request_id)
            .with_at(batch.closed_at)
            .with_arrivals(batch.members.iter().map(|m| m.arrival_s).collect());
        let response = engine.execute(&request);
        self.degraded += response.stats.degraded;
        self.hedged += response.stats.hedged;
        self.redispatched += response.stats.redispatched;
        let finish = self.scheduler.complete(start, response.seconds);
        debug_assert!(
            self.completions.last().is_none_or(|&(f, _, _)| f <= finish),
            "serial dispatch must finish in non-decreasing order"
        );
        self.makespan_s = self.makespan_s.max(finish);
        self.completions.push((finish, tenant, batch.len()));
        // The time the batch sat behind a busy engine after it closed — the
        // saturation signal an adaptive policy steers by. Only the *lead*
        // chunk reports it: trailing chunks queue behind their own
        // siblings, and that self-inflicted wait is not engine saturation
        // (a controller reading it as such would widen the window and make
        // the blocking worse).
        if chunk.lead {
            self.pending_feedback.push(Feedback::Batch {
                at: finish,
                tenant,
                len: batch.len(),
                wait_s: start - batch.closed_at,
            });
        }
        let slo = self.slos.slo_of(tenant);
        for (member, neighbors) in batch.members.iter().zip(response.results) {
            let latency = finish - member.arrival_s;
            self.latencies.push(latency);
            self.tenant_latencies.push((tenant, latency));
            self.outcomes.push((member.arrival_s, Some(latency)));
            self.pending_slo_events
                .push((finish, slo.is_some_and(|s| latency > s)));
            self.pending_feedback.push(Feedback::Query {
                at: finish,
                tenant,
                latency_s: latency,
            });
            // The answer was computed against the snapshot active at the
            // query's own arrival — stamp the entry with that epoch so a
            // later-epoch arrival invalidates it (and recomputes byte-
            // identically) instead of serving a stale answer.
            self.cache.insert_at_epoch(
                self.stream.batch.queries.vector(member.stream_index),
                &member.options,
                neighbors.clone(),
                finish,
                ResultCache::epoch_at(self.epochs, member.arrival_s),
            );
            self.results[member.stream_index] = neighbors;
        }
    }

    /// Advances the simulation to `now`: closes every batching deadline and
    /// runs every due dispatch, interleaved in simulated-time order — a
    /// deadline that closes a batch before the engine frees lets that batch
    /// compete for the next dispatch slot.
    fn advance<E: AnnEngine>(
        &mut self,
        engine: &mut E,
        next_request_id: &mut u64,
        policy: &dyn BatchPolicy,
        now: f64,
    ) {
        loop {
            let deadline = self.former.next_deadline().filter(|&d| d <= now);
            let dispatch = self.scheduler.next_dispatch_at().filter(|&t| t <= now);
            match (deadline, dispatch) {
                (Some(d), t) if t.is_none_or(|t| d <= t) => {
                    for batch in self.former.due(d) {
                        self.submit(engine, next_request_id, policy, batch);
                    }
                }
                (_, Some(_)) => {
                    // The guard just observed a due dispatch, so `None` here
                    // means a scheduler bug; stop advancing rather than
                    // panicking mid-dispatch in release builds.
                    let Some((chunk, start)) = self.scheduler.pop_next(now) else {
                        debug_assert!(false, "a dispatch was due but pop_next returned None");
                        break;
                    };
                    self.run_chunk(engine, next_request_id, chunk, start);
                }
                // `(Some, None)` with a failed guard cannot occur — the
                // guard always passes when no dispatch is due.
                _ => break,
            }
        }
    }

    /// Delivers every queued observation the clock has caught up with to
    /// the policy, in completion-time order (engine finishes are
    /// non-decreasing but cache-hit times can interleave with them).
    fn deliver_feedback(&mut self, policy: &mut dyn BatchPolicy, now: f64) {
        let mut due = Vec::new();
        self.pending_feedback.retain(|obs| {
            if obs.at() <= now {
                due.push(*obs);
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.at().partial_cmp(&b.at()).unwrap_or(std::cmp::Ordering::Equal));
        for obs in due {
            match obs {
                Feedback::Query {
                    at,
                    tenant,
                    latency_s,
                } => policy.observe_for(tenant, at, latency_s),
                Feedback::Batch {
                    at,
                    tenant,
                    len,
                    wait_s,
                } => policy.observe_batch_for(tenant, at, len, wait_s),
            }
        }
    }
}

/// A serving front-end over one engine.
pub struct SearchService<E: AnnEngine> {
    engine: E,
    config: ServiceConfig,
    policy: Box<dyn BatchPolicy>,
    autoscaler: Option<Autoscaler>,
    /// `(activation, epoch)` schedule of the installed live-index timeline
    /// (empty for a frozen index) — drives result-cache invalidation.
    epoch_schedule: Vec<(f64, u64)>,
    next_request_id: u64,
}

impl<E: AnnEngine> SearchService<E> {
    /// Wraps `engine` with the given front-end configuration and the static
    /// batch policy implied by `config.batcher`.
    pub fn new(engine: E, config: ServiceConfig) -> Self {
        Self {
            engine,
            policy: Box::new(FixedPolicy(config.batcher)),
            config,
            autoscaler: None,
            epoch_schedule: Vec::new(),
            next_request_id: 0,
        }
    }

    /// Installs a live-index [`SnapshotTimeline`]: the engine serves each
    /// request from the snapshot active at its batch-close time (and charges
    /// compaction-window stalls), while the result cache stamps entries with
    /// the computing snapshot's epoch and invalidates them when a newer
    /// epoch's arrival finds them. Returns whether the engine accepted the
    /// timeline ([`AnnEngine::install_timeline`] — engines without live-
    /// mutation support decline and keep serving their frozen base; the
    /// cache-epoch wiring is installed either way, which can only *shrink*
    /// cache reuse, never serve a stale answer the engine wouldn't).
    pub fn with_live_index(mut self, timeline: &SnapshotTimeline) -> (Self, bool) {
        let accepted = self.engine.install_timeline(timeline.clone());
        self.epoch_schedule = timeline.epoch_schedule();
        (self, accepted)
    }

    /// Attaches a host [`Autoscaler`]: per-query SLO outcomes feed it
    /// causally on the replay clock, and its steps are applied to the engine
    /// through [`AnnEngine::scale_to`] (a no-op `None` for engines without
    /// host-level elasticity). The controller's believed host count is
    /// re-synced with [`AnnEngine::live_hosts`] when the replay starts.
    pub fn with_autoscaler(mut self, autoscaler: Autoscaler) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Replaces the batch policy (e.g. with an
    /// [`SloController`](crate::controller::SloController)). The policy's own
    /// initial conditions take over from `config.batcher`.
    pub fn with_policy(mut self, policy: Box<dyn BatchPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The front-end configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The batch policy currently steering the former.
    pub fn policy(&self) -> &dyn BatchPolicy {
        self.policy.as_ref()
    }

    /// Unwraps the service, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Replays a timed stream, assigning `options_of(stream_index)` to each
    /// query, and reports sustained QPS, latency percentiles, SLO attainment
    /// and front-end counters. The replay is deterministic.
    ///
    /// The batch policy is consulted for the former's close conditions before
    /// every arrival and observes completion latencies on the simulated
    /// clock **causally**: a completion that finishes at simulated time `t`
    /// is delivered to the policy only once the arrival clock has passed
    /// `t`, exactly as an online controller would see it — feedback from a
    /// batch still executing in the simulated future never steers earlier
    /// arrivals.
    ///
    /// Formed batches run through the
    /// [`EngineScheduler`]: whole and in
    /// close order by default, size-capped and SLO-urgency-ordered with
    /// [`ServiceConfig::max_chunk`] set. Completions, admission releases
    /// and policy feedback are all driven by *dispatch finishes* (which the
    /// serial engine keeps non-decreasing) rather than close order, so
    /// priority dispatch — where an urgent batch finishes before an earlier-
    /// closed bulk one — keeps the accounting causal.
    ///
    /// When the last arrival has been processed, open groups still close at
    /// their **own deadlines** on the replay clock — the stream ending does
    /// not teleport trailing windows shut, so trailing latencies are
    /// `window + service`, exactly like mid-stream ones.
    ///
    /// Cache entries carry `ready_at` = the answer's finish time, and they
    /// appear as soon as that time is *knowable*: at batch close under
    /// close-order dispatch (FIFO start is fully determined there, so a
    /// repeat of any closed query coalesces onto the pending answer — the
    /// pre-scheduler semantics, unchanged), but only at **dispatch** under
    /// priority dispatch, where a queued chunk's start is genuinely
    /// undetermined until the engine picks it (a more urgent later close
    /// may overtake it). There, a repeat of a still-queued question is
    /// admitted as a fresh query; a repeat of an in-flight one still waits.
    pub fn replay(
        &mut self,
        stream: &QueryStream,
        mut options_of: impl FnMut(usize) -> QueryOptions,
    ) -> ServiceReport {
        let engine = &mut self.engine;
        let policy = &mut self.policy;
        let autoscaler = &mut self.autoscaler;
        let next_request_id = &mut self.next_request_id;
        let config = self.config;
        let mut scale_events = 0usize;
        let mut migration_s = 0.0f64;
        if let (Some(scaler), Some(hosts)) = (autoscaler.as_mut(), engine.live_hosts()) {
            scaler.sync(hosts);
        }
        let mut queue = AdmissionQueue::new(config.queue_capacity);
        for p in &stream.tenant_profiles {
            queue.register(p.id, p.weight);
        }
        let mut former = BatchFormer::new(policy.current());
        // Tenants whose windows the policy steers: the announced profiles
        // plus any tenant the options closure invents mid-stream.
        let mut tenants_seen: Vec<TenantId> =
            stream.tenant_profiles.iter().map(|p| p.id).collect();
        for &t in &tenants_seen {
            former.set_tenant_config(t, policy.current_for(t));
        }
        let slo_p99_s = config.slo_p99_s.or(stream.slo_p99_s);
        // Admitted queries occupy the waiting room until their chunk
        // *finishes* on the engine, so an engine backlog exerts backpressure
        // on admission (per tenant — chunks are tenant-pure). Completions
        // are released lazily as the clock passes them.
        let mut state = ReplayState {
            stream,
            former,
            scheduler: EngineScheduler::new(match config.max_chunk {
                Some(_) => DispatchOrder::SloUrgency,
                None => DispatchOrder::CloseOrder,
            }),
            slos: SloTable::new(stream, config.slo_p99_s),
            max_chunk: config.max_chunk,
            cache: ResultCache::new(config.cache_capacity),
            epochs: &self.epoch_schedule,
            completions: Vec::new(),
            pending_feedback: Vec::new(),
            latencies: Vec::with_capacity(stream.len()),
            tenant_latencies: Vec::with_capacity(stream.len()),
            results: vec![Vec::new(); stream.len()],
            outcomes: Vec::with_capacity(stream.len()),
            pending_slo_events: Vec::new(),
            degraded: 0,
            hedged: 0,
            redispatched: 0,
            makespan_s: 0.0,
            size_closed: 0,
            deadline_closed: 0,
            flushed: 0,
        };

        let mut released_upto = 0usize;
        for (arrival, index) in stream.iter() {
            // Deliver every completion the clock has caught up with, let the
            // policy re-steer the close conditions (the default window plus
            // every known tenant's own), then run the simulation — batcher
            // deadlines and engine dispatches, interleaved in time order —
            // up to this arrival.
            state.deliver_feedback(policy.as_mut(), arrival);
            state.former.set_config(policy.current());
            for &t in &tenants_seen {
                state.former.set_tenant_config(t, policy.current_for(t));
            }
            state.advance(engine, next_request_id, policy.as_ref(), arrival);

            // The elasticity loop: deliver the SLO outcomes the clock has
            // caught up with to the autoscaler (causally, like policy
            // feedback) and apply any step it decides through the engine's
            // own scale hook, charging the modeled migration time.
            if let Some(scaler) = autoscaler.as_mut() {
                let mut due = Vec::new();
                state.pending_slo_events.retain(|&(t, missed)| {
                    if t <= arrival {
                        due.push((t, missed));
                        false
                    } else {
                        true
                    }
                });
                for (t, missed) in due {
                    scaler.observe(t, missed);
                }
                if let Some(target) = scaler.decide(arrival) {
                    if let Some(cost) = engine.scale_to(target, arrival) {
                        scale_events += 1;
                        migration_s += cost;
                    }
                }
            }

            // Free the waiting room of every chunk finished by now (the
            // engine is serial, so finish times are non-decreasing in
            // dispatch order — the order completions were pushed).
            while released_upto < state.completions.len()
                && state.completions[released_upto].0 <= arrival
            {
                let (_, tenant, n) = state.completions[released_upto];
                queue.release(tenant, n);
                released_upto += 1;
            }

            let options = options_of(index);
            let tenant = options.tenant;
            if !tenants_seen.contains(&tenant) {
                tenants_seen.push(tenant);
                state.former.set_tenant_config(tenant, policy.current_for(tenant));
            }
            if let Some((cached, ready_at)) = state.cache.lookup_at_epoch(
                stream.batch.queries.vector(index),
                &options,
                ResultCache::epoch_at(state.epochs, arrival),
            ) {
                // A repeat arriving before the original answer is ready waits
                // for it; afterwards the hit costs only the lookup.
                let finish = arrival.max(ready_at) + config.cache_lookup_s;
                state.latencies.push(finish - arrival);
                state.tenant_latencies.push((tenant, finish - arrival));
                state.outcomes.push((arrival, Some(finish - arrival)));
                state.pending_slo_events.push((
                    finish,
                    state
                        .slos
                        .slo_of(tenant)
                        .is_some_and(|s| finish - arrival > s),
                ));
                state.pending_feedback.push(Feedback::Query {
                    at: finish,
                    tenant,
                    latency_s: finish - arrival,
                });
                state.makespan_s = state.makespan_s.max(finish);
                state.results[index] = cached;
                continue;
            }
            if !queue.try_admit(tenant) {
                // Shed at the door, charged to this tenant — and recorded:
                // a query that got no answer is the worst SLO outcome.
                state.outcomes.push((arrival, None));
                state.pending_slo_events.push((arrival, true));
                continue;
            }
            let pending = PendingQuery {
                arrival_s: arrival,
                stream_index: index,
                options,
            };
            if let Some(batch) = state.former.push(pending, arrival) {
                state.submit(engine, next_request_id, policy.as_ref(), batch);
            }
        }

        // Stream over — but the replay clock keeps running: every group
        // still open closes at its *own* deadline (`advance` drains the
        // remaining deadlines and dispatches in time order), not at the
        // last arrival. Flushing at `stream.duration()` here used to snap
        // trailing windows shut the instant the stream ended, understating
        // exactly the trailing latencies a real server would observe.
        state.advance(engine, next_request_id, policy.as_ref(), f64::INFINITY);
        debug_assert!(
            state.scheduler.is_idle(),
            "every submitted chunk was dispatched"
        );
        debug_assert_eq!(
            state.former.open_queries(),
            0,
            "every open group was closed"
        );

        // Drain the remaining feedback (in completion order) so the
        // reported final controller state reflects every observation.
        state.deliver_feedback(policy.as_mut(), f64::INFINITY);

        let ReplayState {
            scheduler,
            slos,
            cache,
            mut latencies,
            tenant_latencies,
            results,
            outcomes,
            degraded,
            hedged,
            redispatched,
            makespan_s,
            size_closed,
            deadline_closed,
            flushed,
            ..
        } = state;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        // Per-tenant rows, in profile order (tenants the options closure
        // invented follow, in first-seen order).
        let tenants = tenants_seen
            .iter()
            .map(|&t| {
                let profile = stream.profile(t);
                let mut lats: Vec<f64> = tenant_latencies
                    .iter()
                    .filter(|(id, _)| *id == t)
                    .map(|(_, l)| *l)
                    .collect();
                lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                TenantReport {
                    id: t,
                    name: profile.map_or_else(|| t.to_string(), |p| p.name.clone()),
                    weight: profile.map_or(1, |p| p.weight),
                    // Every tenant is measured against its own SLO (or the
                    // explicit config override) — never against another
                    // tenant's target; see the field docs and `SloTable`.
                    slo_p99_s: slos.slo_of(t),
                    completed: lats.len(),
                    shed: queue.shed_of(t) as usize,
                    latencies_s: lats,
                    final_batcher: self.policy.current_for(t),
                }
            })
            .collect();

        ServiceReport {
            engine: self.engine.name().to_string(),
            policy: match config.max_chunk {
                Some(_) => format!("{}-chunked", self.policy.name()),
                None => self.policy.name().to_string(),
            },
            slo_p99_s,
            controller_adjustments: self.policy.adjustments(),
            final_batcher: self.policy.current(),
            completed: latencies.len(),
            shed: queue.shed() as usize,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_invalidated: cache.invalidated(),
            size_closed_batches: size_closed,
            deadline_closed_batches: deadline_closed,
            flushed_batches: flushed,
            dispatched_chunks: scheduler.dispatched_chunks(),
            split_batches: scheduler.split_batches(),
            engine_busy_s: scheduler.busy_s(),
            makespan_s,
            latencies_s: latencies,
            results,
            outcomes,
            degraded,
            hedged,
            redispatched,
            scale_events,
            migration_s,
            tenants,
        }
    }

    /// [`replay`](Self::replay) with one shared [`QueryOptions`] for the
    /// whole stream.
    pub fn replay_uniform(&mut self, stream: &QueryStream, options: QueryOptions) -> ServiceReport {
        self.replay(stream, |_| options)
    }

    /// [`replay`](Self::replay) driven entirely by the stream's own
    /// annotations: each query runs under its tenant's `(k, nprobe)` plan
    /// ([`option_plan`](QueryStream::option_plan)) tagged with its tenant
    /// ([`tenant_of`](QueryStream::tenant_of)) — the natural entry point for
    /// a [`MultiTenantSpec`](annkit::workload::MultiTenantSpec) stream.
    /// Queries without a plan entry fall back to the default options.
    pub fn replay_planned(&mut self, stream: &QueryStream) -> ServiceReport {
        self.replay(stream, |i| {
            let (k, nprobe) = stream
                .option_plan
                .get(i)
                .copied()
                .unwrap_or_else(|| (QueryOptions::default().k, QueryOptions::default().nprobe));
            QueryOptions::new(k, nprobe).with_tenant(stream.tenant(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
    use annkit::workload::StreamSpec;
    use baselines::cpu::CpuFaissEngine;
    use std::sync::OnceLock;

    fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
        static FIX: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
        FIX.get_or_init(|| {
            let dataset = SyntheticSpec::sift_like(1500)
                .with_clusters(12)
                .with_seed(31)
                .generate_with_meta();
            let index = IvfPqIndex::train(
                &dataset.vectors,
                &IvfPqParams::new(12, 16).with_train_size(600),
                3,
            );
            (dataset, index)
        })
    }

    fn stream(n: usize, qps: f64, repeats: f64) -> QueryStream {
        let (dataset, _) = fixture();
        StreamSpec::new(n, qps)
            .with_repeat_fraction(repeats)
            .generate(dataset)
    }

    #[test]
    fn replay_answers_every_query_or_sheds_it() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(200, 50_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report.latencies_s.len(), report.completed);
        assert!(report.batches() > 0);
        assert!(report.sustained_qps() > 0.0);
        assert!(report.makespan_s >= stream.duration() * 0.5);
        assert!(report.engine_busy_s > 0.0);
        // Latencies are sorted, so the percentiles are monotone.
        assert!(report.p50() <= report.p99());
        assert!(report.percentile(0.0) <= report.p50());
    }

    #[test]
    fn replay_results_match_direct_execution() {
        let (_, index) = fixture();
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                queue_capacity: 10_000,
                ..ServiceConfig::default()
            },
        );
        let stream = stream(60, 20_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(5, 6));
        assert_eq!(report.shed, 0);
        let mut engine = CpuFaissEngine::new(index);
        let direct = engine.search_batch(&stream.batch.queries, 6, 5);
        for (served, expected) in report.results.iter().zip(&direct.results) {
            assert_eq!(
                served.iter().map(|n| n.id).collect::<Vec<_>>(),
                expected.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(300, 50_000.0, 0.4);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.cache_hits > 0, "repeats must hit the cache");
        assert!(report.cache_hit_rate() > 0.05);
        // A cached answer equals the originally computed answer.
        assert_eq!(report.completed + report.shed, 300);
    }

    #[test]
    fn mutation_free_replay_never_invalidates_and_matches_plain_replay() {
        // The satellite-2 regression: without a live-index timeline the
        // epoch machinery must be invisible — zero invalidations and
        // answers identical to the plain replay path.
        let (_, index) = fixture();
        let stream = stream(300, 50_000.0, 0.4);
        let mut plain =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let plain_report = plain.replay_uniform(&stream, QueryOptions::new(10, 4));
        let frozen = annkit::mutation::SnapshotTimeline::frozen(index);
        let (mut live, accepted) =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_live_index(&frozen);
        assert!(accepted, "the CPU engine accepts timelines");
        let live_report = live.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(plain_report.cache_invalidated, 0);
        assert_eq!(live_report.cache_invalidated, 0);
        assert_eq!(plain_report.cache_hits, live_report.cache_hits);
        assert_eq!(plain_report.results, live_report.results);
        assert_eq!(plain_report.latencies_s, live_report.latencies_s);
    }

    #[test]
    fn epoch_boundary_invalidates_cached_repeats() {
        use annkit::mutation::{MutableIvf, SnapshotTimeline};
        let (dataset, index) = fixture();
        // One upsert becomes visible mid-stream: repeats that cached an
        // epoch-0 answer and re-arrive after the activation must be
        // invalidated (removed + recomputed), not served stale.
        let mut live = MutableIvf::new(index);
        let mut timeline = SnapshotTimeline::new(live.snapshot());
        live.upsert(dataset.vectors.vector(0), 900_000);
        let stream = stream(400, 50_000.0, 0.5);
        timeline.install(stream.duration() / 2.0, live.snapshot());
        let (mut service, accepted) =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_live_index(&timeline);
        assert!(accepted);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.completed + report.shed, 400);
        assert!(report.cache_hits > 0, "repeats within an epoch still hit");
        assert!(
            report.cache_invalidated > 0,
            "repeats across the epoch boundary must invalidate"
        );
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        let (_, index) = fixture();
        let config = ServiceConfig {
            queue_capacity: 4,
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: 10.0, // deadlines never fire mid-stream
            },
            cache_capacity: 0,
            cache_lookup_s: 0.0,
            slo_p99_s: None,
            max_chunk: None,
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        let stream = stream(100, 1.0e9, 0.0); // everything arrives at once
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.shed > 0, "overload must shed");
        assert!(report.completed >= 4, "admitted queries still complete");
    }

    #[test]
    fn fully_shed_run_reports_total_slo_miss() {
        // The shed-accounting regression: a replay that sheds everything must
        // report a 100 % SLO miss fraction — shed queries received no answer,
        // which is the worst possible latency, not a free pass.
        let report = ServiceReport {
            engine: "test".to_string(),
            policy: "fixed".to_string(),
            slo_p99_s: Some(1.0),
            controller_adjustments: 0,
            final_batcher: BatchFormerConfig::default(),
            completed: 0,
            shed: 50,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidated: 0,
            size_closed_batches: 0,
            deadline_closed_batches: 0,
            flushed_batches: 0,
            dispatched_chunks: 0,
            split_batches: 0,
            engine_busy_s: 0.0,
            makespan_s: 0.0,
            latencies_s: Vec::new(),
            results: Vec::new(),
            outcomes: Vec::new(),
            degraded: 0,
            hedged: 0,
            redispatched: 0,
            scale_events: 0,
            migration_s: 0.0,
            tenants: Vec::new(),
        };
        assert_eq!(report.slo_miss_fraction(), 1.0);
        assert!(!report.meets_slo());
        // Sheds count even without an explicit SLO target...
        let unslod = ServiceReport {
            slo_p99_s: None,
            ..report.clone()
        };
        assert_eq!(unslod.slo_miss_fraction(), 1.0);
        // ...though SLO attainment stays vacuous without a target.
        assert!(unslod.meets_slo());
    }

    #[test]
    fn shed_queries_count_as_slo_misses_in_a_replay() {
        let (dataset, index) = fixture();
        let config = ServiceConfig {
            queue_capacity: 4,
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: 10.0, // deadlines never fire mid-stream
            },
            cache_capacity: 0,
            cache_lookup_s: 0.0,
            slo_p99_s: None,
            max_chunk: None,
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        // Everything arrives at once with a generous SLO: admitted queries
        // complete comfortably, yet the report must still charge every shed.
        let stream = StreamSpec::new(100, 1.0e9)
            .with_slo_p99(1e9)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.shed > 0, "overload must shed");
        let expected = report.shed as f64 / (report.completed + report.shed) as f64;
        assert!((report.slo_miss_fraction() - expected).abs() < 1e-12);
        assert!(
            !report.meets_slo(),
            "shedding {} of {} queries cannot meet the SLO",
            report.shed,
            report.completed + report.shed
        );
    }

    #[test]
    fn slo_attainment_is_reported_from_the_stream_annotation() {
        let (dataset, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        // An impossibly tight SLO: everything misses.
        let tight = StreamSpec::new(150, 30_000.0)
            .with_slo_p99(1e-12)
            .generate(dataset);
        let report = service.replay_uniform(&tight, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, Some(1e-12));
        assert_eq!(report.policy, "fixed");
        assert!(!report.meets_slo());
        assert!(report.slo_miss_fraction() > 0.99);
        // An impossibly loose SLO: everything fits.
        let loose = StreamSpec::new(150, 30_000.0)
            .with_slo_p99(1e9)
            .generate(dataset);
        let report = service.replay_uniform(&loose, QueryOptions::new(10, 4));
        assert!(report.meets_slo());
        assert_eq!(report.slo_miss_fraction(), 0.0);
        // No SLO anywhere: attainment is vacuous.
        let plain = StreamSpec::new(150, 30_000.0).generate(dataset);
        let report = service.replay_uniform(&plain, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, None);
        assert!(report.meets_slo());
        assert_eq!(report.slo_miss_fraction(), 0.0);
    }

    #[test]
    fn service_config_slo_overrides_the_stream_annotation() {
        let (dataset, index) = fixture();
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                slo_p99_s: Some(2.0),
                ..ServiceConfig::default()
            },
        );
        let stream = StreamSpec::new(60, 30_000.0)
            .with_slo_p99(1e-12)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, Some(2.0));
    }

    #[test]
    fn adaptive_policy_steers_the_former_and_is_reported() {
        use crate::controller::SloController;
        let (dataset, index) = fixture();
        let slo = 5e-3;
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_policy(Box::new(SloController::for_slo(slo)));
        let initial = service.policy().current();
        let stream = StreamSpec::new(400, 20_000.0)
            .with_slo_p99(slo)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.policy, "adaptive-slo");
        assert_eq!(report.completed + report.shed, 400);
        assert!(
            report.controller_adjustments > 0,
            "the controller never moved"
        );
        assert!(
            report.final_batcher.max_delay_s != initial.max_delay_s
                || report.final_batcher.max_batch != initial.max_batch,
            "final close conditions should differ from the initial ones"
        );
        // The controller's answers equal the fixed policy's: batching shape
        // changes latency, never correctness.
        let mut fixed =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let fixed_report = fixed.replay_uniform(&stream, QueryOptions::new(10, 4));
        for (a, b) in report.results.iter().zip(&fixed_report.results) {
            if a.is_empty() || b.is_empty() {
                continue; // shed under one policy but not the other
            }
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_tenant_replay_reports_per_tenant_rows() {
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(TenantId(1), StreamSpec::new(60, 20_000.0).with_slo_p99(0.05))
                    .with_name("tight")
                    .with_weight(2)
                    .with_option_mix(vec![(10, 4)]),
            )
            .with_tenant(
                TenantSpec::new(TenantId(2), StreamSpec::new(140, 50_000.0).with_slo_p99(5.0))
                    .with_name("batchy")
                    .with_option_mix(vec![(10, 8), (20, 8)]),
            );
        let stream = spec.generate(dataset);
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let report = service.replay_planned(&stream);
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report.tenants.len(), 2);
        let t1 = report.tenant(TenantId(1)).expect("tight row");
        let t2 = report.tenant(TenantId(2)).expect("batchy row");
        assert_eq!((t1.name.as_str(), t1.weight), ("tight", 2));
        assert_eq!(t1.slo_p99_s, Some(0.05));
        assert_eq!(t2.slo_p99_s, Some(5.0));
        // Per-tenant conservation, and the rows add up to the aggregate.
        assert_eq!(t1.completed + t1.shed, 60);
        assert_eq!(t2.completed + t2.shed, 140);
        assert_eq!(t1.completed + t2.completed, report.completed);
        assert_eq!(t1.shed + t2.shed, report.shed);
        assert_eq!(t1.latencies_s.len(), t1.completed);
        // The aggregate SLO is the tightest tenant's.
        assert_eq!(report.slo_p99_s, Some(0.05));
        // Answer shape follows each tenant's own option plan.
        let mut seen = vec![0usize; stream.len()];
        for (i, r) in report.results.iter().enumerate() {
            seen[i] = r.len();
            if r.is_empty() {
                continue; // shed
            }
            let expected_k = stream.option_plan[i].0;
            assert_eq!(r.len(), expected_k);
        }
    }

    #[test]
    fn controller_bank_steers_tenant_windows_independently() {
        use crate::controller::ControllerBank;
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let tight_slo = 2e-3;
        let loose_slo = 10.0;
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(
                    TenantId(1),
                    StreamSpec::new(150, 30_000.0).with_slo_p99(tight_slo),
                )
                .with_option_mix(vec![(10, 4)]),
            )
            .with_tenant(
                TenantSpec::new(
                    TenantId(2),
                    StreamSpec::new(150, 30_000.0).with_slo_p99(loose_slo),
                )
                .with_option_mix(vec![(10, 8)]),
            );
        let stream = spec.generate(dataset);
        let bank = ControllerBank::for_profiles(
            &stream.tenant_profiles,
            BatchFormerConfig::default(),
        );
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_policy(Box::new(bank));
        let report = service.replay_planned(&stream);
        assert_eq!(report.policy, "adaptive-tenant");
        let t1 = report.tenant(TenantId(1)).expect("tight row");
        let t2 = report.tenant(TenantId(2)).expect("loose row");
        // Each tenant ends under a window derived from its own SLO: the
        // SLO-derived bounds alone separate them by orders of magnitude.
        assert!(
            t1.final_batcher.max_delay_s <= tight_slo / 2.0 + 1e-12,
            "tight tenant's window {} exceeds its SLO-derived cap",
            t1.final_batcher.max_delay_s
        );
        assert!(
            t2.final_batcher.max_delay_s >= loose_slo / 100.0,
            "loose tenant's window {} fell below its SLO-derived floor",
            t2.final_batcher.max_delay_s
        );
        assert!(t2.final_batcher.max_delay_s > t1.final_batcher.max_delay_s);
    }

    #[test]
    fn trailing_batch_closes_at_its_deadline_not_at_stream_end() {
        // The end-of-stream regression: a batch whose close deadline fires
        // after the final arrival must still close at that deadline on the
        // replay clock — its members' latency is window + service, exactly
        // like mid-stream deadline closes. (It used to be flushed the
        // instant the stream ended, snapping the window shut early.)
        let (dataset, index) = fixture();
        let window = 0.5;
        let config = ServiceConfig {
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: window,
            },
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        let stream = StreamSpec::new(1, 100.0).generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.completed, 1);
        assert_eq!(report.deadline_closed_batches, 1, "closed by its deadline");
        assert_eq!(report.flushed_batches, 0, "nothing was flushed early");
        let latency = report.latencies_s[0];
        assert!(
            latency >= window,
            "the single query must wait out its window: {latency} < {window}"
        );
        assert!(
            latency <= window + 0.1,
            "latency {latency} should be ≈ window + service, not inflated"
        );
        assert!(report.makespan_s >= stream.duration() + window);
    }

    #[test]
    fn unprofiled_tenants_are_not_judged_by_another_tenants_slo() {
        // The reporting regression: a tenant the stream never announced
        // (invented by the options closure) used to inherit the stream-level
        // SLO — the *tightest profiled tenant's* target — poisoning its
        // meets_slo. It must be judged by the explicit config override or
        // not at all.
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let spec = MultiTenantSpec::new().with_tenant(
            TenantSpec::new(
                TenantId(1),
                // An impossibly tight SLO: whoever is judged by it misses.
                StreamSpec::new(80, 30_000.0).with_slo_p99(1e-12),
            )
            .with_name("tight")
            .with_option_mix(vec![(10, 4)]),
        );
        let stream = spec.generate(dataset);
        assert_eq!(stream.slo_p99_s, Some(1e-12), "stream SLO is the tight tenant's");
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        // Route half the traffic to an invented tenant the stream knows
        // nothing about.
        let report = service.replay(&stream, |i| {
            let tenant = if i % 2 == 0 { TenantId(1) } else { TenantId(9) };
            QueryOptions::new(10, 4).with_tenant(tenant)
        });
        let profiled = report.tenant(TenantId(1)).expect("profiled row");
        let invented = report.tenant(TenantId(9)).expect("invented row");
        assert_eq!(profiled.slo_p99_s, Some(1e-12));
        assert!(!profiled.meets_slo(), "the tight tenant honestly misses");
        assert_eq!(
            invented.slo_p99_s, None,
            "an unprofiled tenant is never judged by the tight tenant's SLO"
        );
        assert!(
            invented.meets_slo(),
            "no target of its own: attainment is vacuous, not poisoned"
        );

        // With an explicit config override, the invented tenant is judged
        // by exactly that override.
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                slo_p99_s: Some(2.0),
                ..ServiceConfig::default()
            },
        );
        let report = service.replay(&stream, |i| {
            let tenant = if i % 2 == 0 { TenantId(1) } else { TenantId(9) };
            QueryOptions::new(10, 4).with_tenant(tenant)
        });
        let invented = report.tenant(TenantId(9)).expect("invented row");
        assert_eq!(invented.slo_p99_s, Some(2.0));
    }

    #[test]
    fn chunked_dispatch_bounds_cross_tenant_head_of_line_blocking() {
        // A bulk tenant's huge batch closes just before a tight tenant's
        // single query. Whole-batch close-order dispatch makes the tight
        // query wait for the entire bulk batch; priority-chunked dispatch
        // bounds its wait to one chunk — and answers stay identical.
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(
                    TenantId(1),
                    StreamSpec::new(4, 2.0).with_slo_p99(0.05),
                )
                .with_name("tight")
                .with_option_mix(vec![(10, 4)]),
            )
            .with_tenant(
                TenantSpec::new(TenantId(2), StreamSpec::new(400, 400.0))
                    .with_name("bulk")
                    .with_option_mix(vec![(10, 8)]),
            );
        let stream = spec.generate(dataset);
        // A heavy engine (large work scale) makes bulk batches expensive.
        let build = || CpuFaissEngine::new(index).with_work_scale(2e4);
        let config = ServiceConfig {
            batcher: BatchFormerConfig {
                max_batch: 256,
                max_delay_s: 0.5,
            },
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let mut fifo = SearchService::new(build(), config);
        let fifo_report = fifo.replay_planned(&stream);
        let mut chunked = SearchService::new(
            build(),
            ServiceConfig {
                max_chunk: Some(16),
                ..config
            },
        );
        let chunked_report = chunked.replay_planned(&stream);
        assert!(chunked_report.policy.ends_with("-chunked"));
        assert!(
            chunked_report.split_batches > 0,
            "bulk batches must actually be split"
        );
        assert!(chunked_report.dispatched_chunks > chunked_report.batches());
        let fifo_tight = fifo_report.tenant(TenantId(1)).expect("tight row");
        let chunked_tight = chunked_report.tenant(TenantId(1)).expect("tight row");
        assert!(
            chunked_tight.p99() < fifo_tight.p99(),
            "chunked dispatch must cut the tight tenant's tail: {} vs {}",
            chunked_tight.p99(),
            fifo_tight.p99()
        );
        // Dispatch shape never changes answers: every query answered under
        // both disciplines got the same neighbors.
        for (a, b) in fifo_report.results.iter().zip(&chunked_report.results) {
            if a.is_empty() || b.is_empty() {
                continue; // shed under one discipline but not the other
            }
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn mixed_options_are_batched_separately_but_all_answered() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(120, 30_000.0, 0.0);
        let report = service.replay(&stream, |i| {
            if i % 2 == 0 {
                QueryOptions::new(5, 4)
            } else {
                QueryOptions::new(20, 8)
            }
        });
        assert_eq!(report.completed + report.shed, 120);
        for (i, r) in report.results.iter().enumerate() {
            if r.is_empty() {
                continue; // shed
            }
            assert_eq!(r.len(), if i % 2 == 0 { 5 } else { 20 });
        }
    }
}
