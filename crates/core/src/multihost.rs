//! Multi-host scale-out (§5.5): sharding the dataset across several PIM
//! hosts, with only query distribution and result aggregation crossing the
//! network.
//!
//! The paper's scalability discussion notes that UpANNS "can be easily
//! extended to multi-host configurations. Only query distribution and result
//! aggregation require cross-host communication. The core memory-intensive
//! search operations remain local to each host." This module implements that
//! extension on top of the single-host [`UpAnnsEngine`]:
//!
//! * the dataset is **sharded** — every host owns a disjoint slice of the
//!   vectors (with globally unique ids), trains its own IVFPQ index over its
//!   shard, and runs a full single-host UpANNS engine on its own DIMMs;
//! * per batch, the coordinator **broadcasts** the query vectors to every
//!   host, each host searches its shard in parallel, and the coordinator
//!   **aggregates** the per-host top-k lists into the global answer;
//! * the added cost is exactly the two network legs plus the final merge,
//!   modeled by [`InterconnectModel`].
//!
//! See `examples/multihost_scaleout.rs` for an end-to-end walk-through.

use annkit::topk::{Neighbor, TopK};
use baselines::engine::{AnnEngine, SearchRequest, SearchResponse};
use baselines::workload_stats::WorkloadStats;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

use crate::engine::UpAnnsEngine;

/// The network connecting the coordinator to the PIM hosts.
#[derive(Debug, Clone)]
pub struct InterconnectModel {
    /// Point-to-point bandwidth in bytes/s (default 100 Gb/s Ethernet-class).
    pub bandwidth_bytes_per_s: f64,
    /// One-way message latency in seconds (default 10 µs RDMA-class).
    pub latency_s: f64,
}

impl Default for InterconnectModel {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_s: 12.5e9,
            latency_s: 10e-6,
        }
    }
}

impl InterconnectModel {
    /// Time to move `bytes` to/from `peers` hosts (transfers to distinct
    /// hosts overlap on the fabric but each pays the per-message latency and
    /// shares the coordinator's NIC bandwidth).
    pub fn transfer_seconds(&self, bytes: usize, peers: usize) -> f64 {
        if peers == 0 || bytes == 0 {
            return 0.0;
        }
        self.latency_s + (bytes as f64 * peers as f64) / self.bandwidth_bytes_per_s
    }
}

/// Splits `n` rows into `hosts` contiguous shards (sizes differ by at most
/// one). Returns the row-index ranges, which double as the global id ranges
/// when each shard's index is built with the matching id offset.
pub fn shard_ranges(n: usize, hosts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(hosts > 0, "need at least one host");
    let base = n / hosts;
    let extra = n % hosts;
    let mut out = Vec::with_capacity(hosts);
    let mut start = 0usize;
    for h in 0..hosts {
        let len = base + usize::from(h < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A multi-host UpANNS deployment: one single-host engine per shard plus the
/// coordinator-side network and merge model.
pub struct MultiHostUpAnns {
    hosts: Vec<UpAnnsEngine>,
    interconnect: InterconnectModel,
    name: String,
}

impl MultiHostUpAnns {
    /// Assembles a deployment from per-shard engines (each built by
    /// [`UpAnnsBuilder`](crate::builder::UpAnnsBuilder) over that shard's
    /// index, with globally unique vector ids).
    ///
    /// # Panics
    /// Panics if no engines are supplied.
    pub fn new(hosts: Vec<UpAnnsEngine>, interconnect: InterconnectModel) -> Self {
        assert!(!hosts.is_empty(), "a deployment needs at least one host");
        let name = format!("UpANNS x{} hosts", hosts.len());
        Self {
            hosts,
            interconnect,
            name,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The per-host engines (for inspection).
    pub fn hosts(&self) -> &[UpAnnsEngine] {
        &self.hosts
    }

    /// The interconnect model in use.
    pub fn interconnect(&self) -> &InterconnectModel {
        &self.interconnect
    }

    /// The worst per-host DPU balance ratio of the last batch. Non-finite
    /// per-host values (a host that has not executed anything since its
    /// engine was rebuilt, or a degenerate 0/0 workload ratio) are discarded
    /// rather than poisoning the max, so the value stays well-defined when
    /// the host set changes between batches; with no finite contribution it
    /// is 1.0 (perfectly balanced, vacuously).
    pub fn last_balance_ratio(&self) -> f64 {
        self.hosts
            .iter()
            .map(|h| h.last_balance_ratio())
            .filter(|r| r.is_finite())
            .fold(1.0f64, f64::max)
    }
}

impl AnnEngine for MultiHostUpAnns {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, request: &SearchRequest) -> SearchResponse {
        if request.is_empty() {
            return SearchResponse::empty(request.id);
        }
        let queries = request.queries();
        let peers = self.hosts.len().saturating_sub(1);
        let query_bytes = queries.len() * queries.dim() * 4;
        let broadcast_s = self.interconnect.transfer_seconds(query_bytes, peers);

        // Every host receives the full request (per-query options included)
        // and searches its shard in parallel: the search leg lasts as long as
        // the slowest host.
        let mut host_outcomes = Vec::with_capacity(self.hosts.len());
        for host in self.hosts.iter_mut() {
            host_outcomes.push(host.execute(request));
        }
        let search_s = host_outcomes
            .iter()
            .map(|o| o.seconds)
            .fold(0.0f64, f64::max);

        // Result aggregation: each peer returns k_i neighbors for query i;
        // the coordinator merges all lists under the query's own k.
        let returned_k: usize = request.options().iter().map(|o| o.k).sum();
        let result_bytes = returned_k * 12;
        let gather_s = self.interconnect.transfer_seconds(result_bytes, peers);
        let merge_ops = (self.hosts.len() * returned_k) as f64;
        let merge_s = merge_ops * 8.0 / 2.1e9; // scalar heap ops on the coordinator CPU

        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(queries.len());
        for (q, opt) in request.options().iter().enumerate() {
            let mut heap = TopK::new(opt.k);
            for outcome in &host_outcomes {
                for n in &outcome.results[q] {
                    heap.push(n.id, n.distance);
                }
            }
            results.push(heap.into_sorted());
        }

        let mut breakdown = StageBreakdown::new();
        breakdown.add("query_broadcast", broadcast_s);
        // Fold the slowest host's stage breakdown in, scaled to the search leg.
        let critical = host_outcomes
            .iter()
            .max_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one host");
        let critical_total = critical.breakdown.total().max(f64::MIN_POSITIVE);
        for (label, secs) in critical.breakdown.entries() {
            breakdown.add(&label, secs / critical_total * search_s);
        }
        breakdown.add("result_gather", gather_s);
        breakdown.add("coordinator_merge", merge_s);

        let mut stats = WorkloadStats::default();
        for o in &host_outcomes {
            stats.merge(&o.stats);
        }
        stats.queries = queries.len();
        stats.k = request.max_k();
        stats.nprobe = request.options().iter().map(|o| o.nprobe).max().unwrap_or(0);

        SearchResponse {
            request_id: request.id,
            results,
            seconds: broadcast_s + search_s + gather_s + merge_s,
            breakdown,
            stats,
        }
    }

    fn energy_model(&self) -> EnergyModel {
        let mut watts = 0.0;
        let mut price = 0.0;
        for host in &self.hosts {
            let m = host.energy_model();
            watts += m.peak_watts;
            price += m.price_usd;
        }
        EnergyModel::new(self.name.clone(), watts, price)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BatchCapacity, UpAnnsBuilder};
    use crate::config::UpAnnsConfig;
    use annkit::flat::FlatIndex;
    use annkit::vector::Dataset;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::recall::recall_at_k;
    use annkit::synthetic::SyntheticSpec;
    use pim_sim::config::PimConfig;

    /// Compile-time Send audit: a multi-host deployment is a vector of
    /// single-host engines plus plain interconnect parameters, so it is
    /// `Send` exactly when `UpAnnsEngine` is (see `upanns_engine_is_send`).
    #[test]
    fn multihost_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MultiHostUpAnns>();
    }
    use std::sync::OnceLock;

    struct Deployment {
        data: Dataset,
        shards: Vec<IvfPqIndex>,
        whole: IvfPqIndex,
    }

    fn deployment() -> &'static Deployment {
        static D: OnceLock<Deployment> = OnceLock::new();
        D.get_or_init(|| {
            let data = SyntheticSpec::sift_like(3_000)
                .with_clusters(16)
                .with_seed(55)
                .generate();
            let params = IvfPqParams::new(12, 16).with_train_size(900);
            // Two shards with globally unique ids.
            let ranges = shard_ranges(data.len(), 2);
            let mut shards = Vec::new();
            for r in &ranges {
                let rows: Vec<usize> = r.clone().collect();
                let shard_data = data.gather(&rows);
                // Train codebooks on the shard, then add its vectors under
                // their *global* ids so merged results are unambiguous.
                let mut index = IvfPqIndex::train_empty(&shard_data, &params, 3);
                index.add(&shard_data, r.start as u64);
                shards.push(index);
            }
            let whole_params = IvfPqParams::new(12, 16).with_train_size(900);
            let whole = IvfPqIndex::train(&data, &whole_params, 3);
            Deployment {
                data,
                shards,
                whole,
            }
        })
    }

    fn host_engine(index: &IvfPqIndex, dpus: usize) -> UpAnnsEngine {
        UpAnnsBuilder::new(index)
            .with_config(UpAnnsConfig::upanns())
            .with_pim_config(PimConfig::with_dpus(dpus))
            .with_batch_capacity(BatchCapacity {
                batch_size: 32,
                nprobe: 6,
                max_k: 20,
            })
            .build()
    }

    #[test]
    fn shard_ranges_cover_everything_without_overlap() {
        let ranges = shard_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0], 0..4);
        assert_eq!(ranges[1], 4..7);
        assert_eq!(ranges[2], 7..10);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shard_ranges(4, 8).iter().filter(|r| !r.is_empty()).count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_is_rejected() {
        let _ = shard_ranges(10, 1); // fine
        let _ = MultiHostUpAnns::new(Vec::new(), InterconnectModel::default());
    }

    #[test]
    fn two_hosts_return_global_ids_and_sane_recall() {
        let dep = deployment();
        let hosts: Vec<UpAnnsEngine> =
            dep.shards.iter().map(|ix| host_engine(ix, 8)).collect();
        let mut multi = MultiHostUpAnns::new(hosts, InterconnectModel::default());
        assert_eq!(multi.num_hosts(), 2);

        let queries = dep.data.gather(&(0..24).map(|i| i * 113 % 3000).collect::<Vec<_>>());
        let out = multi.search_batch(&queries, 6, 10);
        assert_eq!(out.results.len(), 24);
        // Global ids span both shards.
        let max_id = out
            .results
            .iter()
            .flatten()
            .map(|n| n.id)
            .max()
            .unwrap_or(0);
        assert!(max_id >= 1_500, "results never reference the second shard");

        // Recall of the sharded deployment is in the same ballpark as a
        // single index over the whole dataset (sharded IVF probes nprobe
        // clusters per shard, so it can only see *more* candidates).
        let exact = FlatIndex::new(&dep.data).search_batch(&queries, 10);
        let whole_recall = recall_at_k(&dep.whole.search_batch(&queries, 6, 10), &exact, 10);
        let multi_recall = recall_at_k(&out.results, &exact, 10);
        assert!(
            multi_recall + 0.05 >= whole_recall,
            "sharded recall {multi_recall} much worse than single-index {whole_recall}"
        );
    }

    #[test]
    fn search_time_includes_network_and_slowest_host() {
        let dep = deployment();
        let hosts: Vec<UpAnnsEngine> =
            dep.shards.iter().map(|ix| host_engine(ix, 8)).collect();
        let mut multi = MultiHostUpAnns::new(hosts, InterconnectModel::default());
        let queries = dep.data.gather(&[1, 2, 3, 4]);
        let out = multi.search_batch(&queries, 4, 5);
        assert!(out.breakdown.seconds("query_broadcast") > 0.0);
        assert!(out.breakdown.seconds("result_gather") > 0.0);
        assert!(out.breakdown.seconds("coordinator_merge") > 0.0);
        assert!(out.seconds >= out.breakdown.seconds("query_broadcast"));
        assert!(out.qps() > 0.0);

        // A slower fabric makes the same batch slower, all else equal.
        let hosts2: Vec<UpAnnsEngine> =
            dep.shards.iter().map(|ix| host_engine(ix, 8)).collect();
        let slow = InterconnectModel {
            bandwidth_bytes_per_s: 1e6,
            latency_s: 5e-3,
        };
        let mut slow_multi = MultiHostUpAnns::new(hosts2, slow);
        let slow_out = slow_multi.search_batch(&queries, 4, 5);
        assert!(slow_out.seconds > out.seconds);
        // The answers do not depend on the fabric.
        for (a, b) in out.results.iter().zip(&slow_out.results) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn energy_model_aggregates_hosts() {
        let dep = deployment();
        let one = MultiHostUpAnns::new(
            vec![host_engine(&dep.shards[0], 8)],
            InterconnectModel::default(),
        );
        let two = MultiHostUpAnns::new(
            dep.shards.iter().map(|ix| host_engine(ix, 8)).collect(),
            InterconnectModel::default(),
        );
        let e1 = one.energy_model();
        let e2 = two.energy_model();
        assert!((e2.peak_watts - 2.0 * e1.peak_watts).abs() < 1e-9);
        assert!(e2.price_usd > e1.price_usd);
        assert_eq!(two.name(), "UpANNS x2 hosts");
    }

    #[test]
    fn interconnect_transfer_model_is_monotone() {
        let net = InterconnectModel::default();
        assert_eq!(net.transfer_seconds(0, 4), 0.0);
        assert_eq!(net.transfer_seconds(1024, 0), 0.0);
        assert!(net.transfer_seconds(1 << 20, 2) > net.transfer_seconds(1 << 20, 1));
        assert!(net.transfer_seconds(1 << 24, 1) > net.transfer_seconds(1 << 12, 1));
    }
}
