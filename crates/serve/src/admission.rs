//! The admission queue: a bounded, weighted-fair waiting room in front of
//! the batch former.
//!
//! Under overload, queueing theory leaves two options: let the queue (and
//! therefore the tail latency) grow without bound, or shed load at the door.
//! The service sheds — but a shared waiting room with first-come-first-shed
//! admission hands the whole capacity to whichever tenant arrives fastest,
//! starving everyone else. This queue therefore allocates capacity
//! **per tenant** with a deficit-round-robin (DRR) scheduler:
//!
//! * While unreserved room exists, every arrival is admitted — free capacity
//!   is never withheld for fairness (work conservation).
//! * A shed arrival records per-tenant *backlog* (unmet demand).
//! * Capacity freed by completing batches is handed back as per-tenant
//!   *reservations*, allocated to backlogged tenants by DRR: each tenant's
//!   deficit counter grows by `quantum × weight` when the round-robin cursor
//!   reaches it and is spent one slot per reservation, so over a contended
//!   period tenants re-acquire capacity in proportion to their weights, and
//!   even a weight-1 tenant is granted slots every round (no starvation).
//! * A tenant's next arrivals consume its reservations before touching the
//!   shared free pool.
//! * Reservations record *historical* demand (the shed queries themselves
//!   never retry), so a tenant that sheds and then goes silent would strand
//!   its earmarked slots. A staleness valve reclaims every reservation into
//!   the free pool after `capacity` consecutive sheds with no admission
//!   anywhere — bounded unfairness instead of a wedged waiting room.
//!
//! Every shed is charged to the tenant that suffered it, and the serving
//! report counts it as an SLO miss — shed traffic never silently vanishes
//! from the accounting.

use annkit::workload::TenantId;

/// One tenant's admission lane.
#[derive(Debug, Clone)]
struct TenantLane {
    id: TenantId,
    weight: u32,
    /// Queries of this tenant currently occupying the waiting room.
    waiting: usize,
    /// Slots earmarked for this tenant by the DRR allocator.
    reserved: usize,
    /// Sheds not yet compensated by a reservation (the demand signal DRR
    /// allocates against), saturating at the queue capacity.
    backlog: usize,
    /// The DRR deficit counter, in slots.
    deficit: f64,
    admitted: u64,
    shed: u64,
}

/// Bounded weighted-fair admission accounting for queries waiting to be
/// batched.
///
/// Tenants may be registered up front ([`with_tenant`](Self::with_tenant))
/// or implicitly on their first arrival (weight 1), so single-tenant callers
/// can keep treating the queue as a plain bounded waiting room.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    /// Unreserved free slots.
    free: usize,
    /// DRR quantum in slots per weight unit per round.
    quantum: f64,
    /// Round-robin position of the DRR allocator.
    cursor: usize,
    /// Sheds since the last successful admission — the staleness signal
    /// that triggers reservation reclaim once it exceeds the capacity.
    consecutive_sheds: usize,
    lanes: Vec<TenantLane>,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` concurrent waiters across all
    /// tenants.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a service that admits nothing).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        Self {
            capacity,
            free: capacity,
            quantum: 1.0,
            cursor: 0,
            consecutive_sheds: 0,
            lanes: Vec::new(),
        }
    }

    /// Registers a tenant with a fair-share weight before traffic starts
    /// (re-weights the lane if the id is already known).
    ///
    /// # Panics
    /// Panics on a zero weight.
    pub fn with_tenant(mut self, id: TenantId, weight: u32) -> Self {
        self.register(id, weight);
        self
    }

    /// Registers (or re-weights) a tenant.
    ///
    /// # Panics
    /// Panics on a zero weight.
    pub fn register(&mut self, id: TenantId, weight: u32) {
        assert!(weight >= 1, "tenant weight must be at least 1");
        match self.lanes.iter_mut().find(|l| l.id == id) {
            Some(lane) => lane.weight = weight,
            None => self.lanes.push(TenantLane {
                id,
                weight,
                waiting: 0,
                reserved: 0,
                backlog: 0,
                deficit: 0.0,
                admitted: 0,
                shed: 0,
            }),
        }
    }

    fn lane_index(&mut self, id: TenantId) -> usize {
        match self.lanes.iter().position(|l| l.id == id) {
            Some(i) => i,
            None => {
                self.register(id, 1);
                self.lanes.len() - 1
            }
        }
    }

    /// Tries to admit one query of `tenant`. Returns `false` (and charges the
    /// shed to that tenant) when neither a reservation nor free room exists.
    ///
    /// Reservations belong to the tenant they were granted to — but when
    /// `capacity` consecutive arrivals have been shed with no admission in
    /// between, whoever holds reservations is clearly not showing up to use
    /// them, so they are all reclaimed into the free pool before this
    /// arrival is judged (the staleness valve: shed queries never retry, so
    /// unconsumed reservations would otherwise wedge the room forever).
    pub fn try_admit(&mut self, tenant: TenantId) -> bool {
        let i = self.lane_index(tenant);
        if self.lanes[i].reserved == 0
            && self.free == 0
            && self.consecutive_sheds >= self.capacity
        {
            for lane in &mut self.lanes {
                self.free += lane.reserved;
                lane.reserved = 0;
            }
        }
        let lane = &mut self.lanes[i];
        if lane.reserved > 0 {
            lane.reserved -= 1;
        } else if self.free > 0 {
            self.free -= 1;
        } else {
            lane.shed += 1;
            lane.backlog = (lane.backlog + 1).min(self.capacity);
            self.consecutive_sheds += 1;
            return false;
        }
        lane.waiting += 1;
        lane.admitted += 1;
        self.consecutive_sheds = 0;
        true
    }

    /// Releases `n` waiters of `tenant` (a formed batch finished on the
    /// engine), then re-allocates the freed room to backlogged tenants by
    /// deficit round robin.
    ///
    /// # Panics
    /// Panics if more waiters are released than the tenant has admitted.
    pub fn release(&mut self, tenant: TenantId, n: usize) {
        let i = self.lane_index(tenant);
        let lane = &mut self.lanes[i];
        assert!(
            n <= lane.waiting,
            "released more queries than are waiting for tenant {tenant}"
        );
        lane.waiting -= n;
        self.free += n;
        self.allocate();
    }

    /// DRR allocation of free slots to backlogged tenants: the cursor stays
    /// on a lane while it still has both backlog and ≥ 1 slot of deficit, so
    /// a weight-`w` tenant absorbs up to `w` consecutive slots per round —
    /// proportional shares under contention, one-slot minimum per round for
    /// everyone (no starvation).
    fn allocate(&mut self) {
        let n = self.lanes.len();
        if n == 0 {
            return;
        }
        // Fresh grants restart the staleness clock: newly earmarked slots
        // get a full `capacity` arrivals to be consumed before the valve
        // may reclaim them.
        if self.free > 0 && self.lanes.iter().any(|l| l.backlog > 0) {
            self.consecutive_sheds = 0;
        }
        while self.free > 0 && self.lanes.iter().any(|l| l.backlog > 0) {
            let lane = &mut self.lanes[self.cursor];
            if lane.backlog == 0 {
                lane.deficit = 0.0;
                self.cursor = (self.cursor + 1) % n;
                continue;
            }
            if lane.deficit < 1.0 {
                lane.deficit += self.quantum * f64::from(lane.weight);
            }
            let grant = (lane.deficit as usize).min(lane.backlog).min(self.free);
            lane.reserved += grant;
            lane.backlog -= grant;
            lane.deficit -= grant as f64;
            self.free -= grant;
            if lane.backlog == 0 {
                // Classic DRR: an emptied queue forfeits its residual deficit.
                lane.deficit = 0.0;
                self.cursor = (self.cursor + 1) % n;
            } else if lane.deficit < 1.0 {
                self.cursor = (self.cursor + 1) % n;
            }
            // Otherwise the lane keeps the cursor; `free` must be 0 here, so
            // the loop exits and the residual deficit carries to the next
            // release.
        }
    }

    /// Queries currently waiting, across all tenants.
    pub fn waiting(&self) -> usize {
        self.lanes.iter().map(|l| l.waiting).sum()
    }

    /// Maximum concurrent waiters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unreserved free slots (capacity not held by waiters or reservations).
    pub fn free(&self) -> usize {
        self.free
    }

    /// Slots currently reserved for `tenant` by the DRR allocator.
    pub fn reserved_of(&self, tenant: TenantId) -> usize {
        self.lane(tenant).map_or(0, |l| l.reserved)
    }

    /// Total queries admitted so far, across all tenants.
    pub fn admitted(&self) -> u64 {
        self.lanes.iter().map(|l| l.admitted).sum()
    }

    /// Total queries shed so far, across all tenants.
    pub fn shed(&self) -> u64 {
        self.lanes.iter().map(|l| l.shed).sum()
    }

    fn lane(&self, id: TenantId) -> Option<&TenantLane> {
        self.lanes.iter().find(|l| l.id == id)
    }

    /// Queries of `tenant` currently waiting.
    pub fn waiting_of(&self, tenant: TenantId) -> usize {
        self.lane(tenant).map_or(0, |l| l.waiting)
    }

    /// Queries of `tenant` admitted so far.
    pub fn admitted_of(&self, tenant: TenantId) -> u64 {
        self.lane(tenant).map_or(0, |l| l.admitted)
    }

    /// Queries of `tenant` shed so far.
    pub fn shed_of(&self, tenant: TenantId) -> u64 {
        self.lane(tenant).map_or(0, |l| l.shed)
    }

    /// The tenants the queue has seen, in registration order.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.lanes.iter().map(|l| l.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TenantId = TenantId(1);
    const T2: TenantId = TenantId(2);

    #[test]
    fn admits_until_capacity_then_sheds() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.try_admit(TenantId::DEFAULT));
        assert!(q.try_admit(TenantId::DEFAULT));
        assert!(!q.try_admit(TenantId::DEFAULT), "third waiter must be shed");
        assert_eq!((q.waiting(), q.admitted(), q.shed()), (2, 2, 1));

        q.release(TenantId::DEFAULT, 1);
        assert!(q.try_admit(TenantId::DEFAULT), "capacity freed by release");
        assert_eq!(q.waiting(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn free_room_is_never_withheld_across_tenants() {
        // Work conservation: while unreserved room exists, any tenant gets
        // in, whatever the weights say.
        let mut q = AdmissionQueue::new(4).with_tenant(T1, 100).with_tenant(T2, 1);
        assert!(q.try_admit(T2));
        assert!(q.try_admit(T2));
        assert!(q.try_admit(T2));
        assert!(q.try_admit(T2), "low-weight tenant may fill idle capacity");
        assert!(!q.try_admit(T1), "room genuinely exhausted");
        assert_eq!(q.shed_of(T1), 1);
        assert_eq!(q.shed_of(T2), 0);
    }

    #[test]
    fn freed_capacity_flows_to_backlogged_tenants_by_weight() {
        // Saturate with both tenants backlogged, then free slots one at a
        // time: reservations must land 3:1.
        let mut q = AdmissionQueue::new(8).with_tenant(T1, 3).with_tenant(T2, 1);
        for _ in 0..4 {
            assert!(q.try_admit(T1));
            assert!(q.try_admit(T2));
        }
        // Both tenants now shed (recording backlog).
        for _ in 0..8 {
            assert!(!q.try_admit(T1));
            assert!(!q.try_admit(T2));
        }
        // Free 4 slots of tenant 1's completed batch: DRR earmarks 3 for the
        // weight-3 tenant and 1 for the weight-1 tenant.
        q.release(T1, 4);
        assert_eq!(q.reserved_of(T1), 3);
        assert_eq!(q.reserved_of(T2), 1);
        assert_eq!(q.free(), 0, "all freed room was allocated");
        // Arrivals consume their own reservations; the other tenant's
        // reservation is not up for grabs.
        assert!(q.try_admit(T2));
        assert!(!q.try_admit(T2), "tenant 2's single reservation is spent");
        assert!(q.try_admit(T1));
        assert!(q.try_admit(T1));
        assert!(q.try_admit(T1));
        assert!(!q.try_admit(T1));
    }

    #[test]
    fn low_weight_tenant_is_granted_every_round() {
        // No starvation: a weight-1 tenant is handed at least one slot per
        // DRR round even against a weight-5 rival with a deep backlog.
        let mut q = AdmissionQueue::new(12).with_tenant(T1, 5).with_tenant(T2, 1);
        for _ in 0..12 {
            q.try_admit(T1);
        }
        for _ in 0..20 {
            q.try_admit(T1);
            q.try_admit(T2);
        }
        q.release(T1, 12);
        assert!(
            q.reserved_of(T2) >= 1,
            "weight-1 tenant starved: reservations {:?}",
            (q.reserved_of(T1), q.reserved_of(T2))
        );
        // ... and proportionality holds within the round: 5:1 over 12 slots.
        assert_eq!((q.reserved_of(T1), q.reserved_of(T2)), (10, 2));
    }

    #[test]
    fn stale_reservations_are_reclaimed_instead_of_wedging_the_room() {
        // T2 sheds, earning reservations, then goes silent forever; T1 must
        // not be locked out of the capacity T2 will never use.
        let mut q = AdmissionQueue::new(4).with_tenant(T1, 1).with_tenant(T2, 1);
        for _ in 0..4 {
            assert!(q.try_admit(T1));
        }
        for _ in 0..4 {
            assert!(!q.try_admit(T2)); // backlog builds
        }
        q.release(T1, 4);
        assert_eq!(q.reserved_of(T2), 4, "all freed room earmarked for T2");
        // T2 never returns. T1's arrivals shed until the staleness valve
        // (capacity consecutive sheds) reclaims the stranded reservations;
        // after that T1 reoccupies the whole room.
        let mut pre_sheds = 0;
        let mut admitted = 0;
        for _ in 0..16 {
            if q.try_admit(T1) {
                admitted += 1;
                if admitted == 4 {
                    break;
                }
            } else if admitted == 0 {
                pre_sheds += 1;
            }
        }
        assert_eq!(admitted, 4, "T1 eventually reoccupies the whole room");
        assert!(
            pre_sheds <= q.capacity(),
            "unwedging took {pre_sheds} sheds, more than one capacity turnover"
        );
        assert_eq!(q.reserved_of(T2), 0);
    }

    #[test]
    fn unknown_tenants_register_implicitly_with_weight_one() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.try_admit(TenantId(9)));
        assert_eq!(q.admitted_of(TenantId(9)), 1);
        assert_eq!(q.waiting_of(TenantId(9)), 1);
        assert_eq!(q.tenants().collect::<Vec<_>>(), vec![TenantId(9)]);
    }

    #[test]
    #[should_panic(expected = "more queries than are waiting")]
    fn over_release_is_a_bug() {
        let mut q = AdmissionQueue::new(4);
        q.try_admit(TenantId::DEFAULT);
        q.release(TenantId::DEFAULT, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = AdmissionQueue::new(0);
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_is_rejected() {
        let _ = AdmissionQueue::new(4).with_tenant(T1, 0);
    }
}
