//! The five-stage threaded serving pipeline.
//!
//! ```text
//!                 bounded                bounded               cap-1
//!  admission ───────────────▶ batcher ───────────▶ dispatcher ═══════▶ worker 0..N
//!  (AdmissionQueue,           (BatchFormer,        (ChunkQueue,           (one engine
//!   ResultCache)               BatchPolicy)         SloTable, idle set)    each)
//!      ▲                          ▲                                          │
//!      │ releases +               │ policy feedback        completions       │
//!      │ cache inserts            │ (lossy under backpressure)  bounded      │
//!      └──────────────────── completion ◀──────────────────────────────────┘
//!                            (results, latencies, conservation counters)
//! ```
//!
//! Every serve-crate structure is owned by exactly one stage thread —
//! there is no shared mutable state, no lock, and no `unsafe`; stages
//! communicate only by message over `std::sync::mpsc` channels. Forward
//! edges are *bounded* ([`sync_channel`]) so a slow stage exerts
//! backpressure instead of ballooning memory; the two feedback edges into
//! admission and the batcher run on channels that can never participate in
//! a send-cycle deadlock: completion→admission is unbounded (its occupancy
//! is bounded in practice by the admission queue's capacity, which caps
//! in-flight queries), and completion→batcher uses `try_send` — policy
//! feedback is advisory, and stale feedback a saturated batcher cannot
//! accept yet is precisely the feedback not worth blocking a completion
//! stage for.
//!
//! # The two clocks
//!
//! [`RuntimeMode::Wall`] runs the pipeline against real time: admission
//! paces arrivals with [`thread::sleep`], the batcher turns window
//! deadlines into [`recv_timeout`](Receiver::recv_timeout) waits, and each
//! worker *emulates its engine's modeled occupancy* — after computing a
//! chunk's answers it sleeps until `start + response.seconds` has elapsed,
//! so one worker thread behaves like one modeled PIM device and adding
//! workers buys genuine pipeline concurrency against emulated hardware
//! (this is what makes 1→4 worker scaling measurable on a single host
//! core: the bottleneck is the emulated device, not the host CPU).
//!
//! [`RuntimeMode::Logical`] is the deterministic twin: no thread ever
//! sleeps, the batcher's windows are driven by `AdvanceTo(arrival)`
//! messages that mirror the replay's `advance(arrival)` calls, and the
//! admission queue is widened to the stream length so nothing is shed.
//!
//! # The twin contract
//!
//! Answers in this workspace are pure functions of `(query vector, k,
//! nprobe, index)` — batch shape, dispatch order, policy steering and
//! cache routing change *when* a query is answered, never *what* it is
//! answered (the serve crate's policy-invariance and dispatch-discipline
//! tests prove this for the replay; the runtime's twin tests extend it
//! across threads). Logical mode therefore produces, for every stream
//! index, byte-for-byte the same neighbor ids as
//! [`SearchService::replay`](upanns_serve::SearchService::replay) on the
//! same stream with a shed-proof queue — regardless of worker count or
//! thread interleaving. Latencies, batch counts and cache hit rates are
//! *not* part of the contract; only the answer map is.
//!
//! # Clean shutdown
//!
//! Admission sends `Eos` after the last arrival; the batcher closes its
//! trailing windows (at their own deadlines in wall mode, at `+∞` in
//! logical mode — the same trailing-deadline close as the replay) and
//! forwards `Eos`; the dispatcher drains its chunk queue, waits for every
//! worker to report idle, shuts the workers down and sends `Drained` to
//! completion. Channel FIFO plus the happens-before chain through those
//! hops guarantees `Drained` is dequeued after every completion message,
//! so the conservation check (`completed + shed == offered`, zero lost,
//! zero duplicated) is exact, not racy.

use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::thread;
use std::time::{Duration, Instant};

use annkit::topk::Neighbor;
use annkit::workload::QueryStream;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest, TenantId};
use upanns_serve::admission::AdmissionQueue;
use upanns_serve::batcher::{BatchFormer, FormedBatch, PendingQuery};
use upanns_serve::cache::ResultCache;
use upanns_serve::controller::BatchPolicy;
use upanns_serve::dispatch::{ChunkQueue, DispatchOrder, QueuedChunk};
use upanns_serve::service::{effective_chunk, ServiceConfig, SloTable};

use crate::report::{RuntimeReport, RuntimeTenantRow};

/// Bound of the forward data-path channels. Deep enough that stages only
/// stall under genuine overload, shallow enough that backpressure reaches
/// admission while shedding is still useful.
const STAGE_CHANNEL_BOUND: usize = 1024;

/// Which clock drives the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Real time: paced arrivals, `recv_timeout` batching windows, and
    /// workers that emulate their engine's modeled occupancy by sleeping.
    Wall,
    /// The deterministic twin: the stream's arrival timestamps drive the
    /// batcher exactly as the replay clock would, nothing sleeps, nothing
    /// is shed, and the answer map equals the replay's byte for byte.
    Logical,
}

impl RuntimeMode {
    /// The mode's report label.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeMode::Wall => "wall",
            RuntimeMode::Logical => "logical",
        }
    }
}

/// Configuration for one pipeline run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The front-end knobs, shared verbatim with the replay
    /// ([`ServiceConfig`]) so a threaded run and its twin are configured by
    /// the same struct.
    pub service: ServiceConfig,
    /// Which clock drives the run.
    pub mode: RuntimeMode,
    /// The live-index `(activation, epoch)` schedule
    /// ([`SnapshotTimeline::epoch_schedule`]) driving result-cache
    /// invalidation, shared with the replay via
    /// [`SearchService::with_live_index`]. Empty (the default) for a frozen
    /// index — every entry sits at epoch 0 and nothing ever invalidates.
    /// The engines themselves are the caller's: install the same timeline
    /// into each worker engine before handing them to [`run_pipeline`].
    ///
    /// [`SnapshotTimeline::epoch_schedule`]: annkit::mutation::SnapshotTimeline::epoch_schedule
    /// [`SearchService::with_live_index`]: upanns_serve::SearchService::with_live_index
    pub epoch_schedule: Vec<(f64, u64)>,
}

impl RuntimeConfig {
    /// Wall-clock mode over the given service configuration.
    pub fn wall(service: ServiceConfig) -> Self {
        Self {
            service,
            mode: RuntimeMode::Wall,
            epoch_schedule: Vec::new(),
        }
    }

    /// Deterministic-twin mode over the given service configuration.
    pub fn logical(service: ServiceConfig) -> Self {
        Self {
            service,
            mode: RuntimeMode::Logical,
            epoch_schedule: Vec::new(),
        }
    }

    /// Attaches a live-index epoch schedule (see
    /// [`epoch_schedule`](Self::epoch_schedule)).
    pub fn with_epoch_schedule(mut self, schedule: Vec<(f64, u64)>) -> Self {
        self.epoch_schedule = schedule;
        self
    }
}

/// The wall clock every stage shares: seconds since pipeline start, so
/// wall-mode timestamps are directly comparable with the replay's
/// stream-relative seconds.
#[derive(Clone, Copy)]
struct WallClock(Instant);

impl WallClock {
    fn start() -> Self {
        Self(Instant::now())
    }

    fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Sleeps until `t` seconds since pipeline start (no-op if already
    /// past).
    fn sleep_until(&self, t: f64) {
        let now = self.elapsed_s();
        if t > now && t.is_finite() {
            thread::sleep(Duration::from_secs_f64(t - now));
        }
    }
}

/// Into the batcher stage (from admission, and feedback from completion).
enum ToBatcher {
    /// An admitted query to fold into a batch.
    Query(PendingQuery),
    /// Logical mode only: the replay clock reached this arrival — close
    /// every window whose deadline has passed (mirrors `advance(arrival)`).
    AdvanceTo(f64),
    /// A query finished: per-query policy feedback.
    QueryDone {
        tenant: TenantId,
        at: f64,
        latency_s: f64,
    },
    /// A lead chunk finished: batch-level policy feedback.
    BatchDone {
        tenant: TenantId,
        at: f64,
        len: usize,
        wait_s: f64,
    },
    /// No more arrivals: close trailing windows and forward `Eos`.
    Eos,
}

/// Into the dispatcher stage (from the batcher, and idle notices from
/// workers).
enum ToDispatcher {
    /// A closed batch, with its per-tenant chunk cap already resolved by
    /// the batcher (the policy lives there).
    Batch { batch: FormedBatch, chunk_cap: usize },
    /// Worker `i` finished its chunk and is ready for the next.
    WorkerIdle(usize),
    /// No more batches will arrive.
    Eos,
}

/// Into one engine worker.
enum ToWorker {
    /// Execute this chunk.
    Chunk(QueuedChunk),
    /// Drain complete: exit.
    Shutdown,
}

/// Into the completion stage.
enum ToCompletion {
    /// Admission answered a query straight from the result cache.
    CacheHit {
        stream_index: usize,
        tenant: TenantId,
        latency_s: f64,
        finish_s: f64,
        neighbors: Vec<Neighbor>,
    },
    /// Admission rejected a query (queue full).
    Shed { tenant: TenantId },
    /// A worker executed a chunk.
    Executed {
        members: Vec<PendingQuery>,
        answers: Vec<Vec<Neighbor>>,
        tenant: TenantId,
        finish_s: f64,
        modeled_s: f64,
        lead: bool,
        wait_s: f64,
        /// Per-member epoch of the snapshot that computed each answer
        /// (resolved from the query's own arrival — the replay stamps
        /// identically), aligned with `members`.
        answer_epochs: Vec<u64>,
        /// Fault-tolerance counters from the engine's `WorkloadStats`
        /// (nonzero only for replicated engines under a fault schedule).
        degraded: u64,
        hedged: u64,
        redispatched: u64,
    },
    /// The dispatcher drained: every completion message is already queued
    /// ahead of this one (see the module docs' happens-before argument).
    Drained,
}

/// Back into admission from completion.
enum ToAdmission {
    /// A chunk finished: free its tenant's seats in the waiting room.
    Release { tenant: TenantId, n: usize },
    /// An answered query's neighbors, for the result cache.
    CacheInsert {
        stream_index: usize,
        options: QueryOptions,
        neighbors: Vec<Neighbor>,
        ready_at: f64,
        /// Epoch of the snapshot that computed the answer.
        epoch: u64,
    },
}

/// Runs the full pipeline over `stream`, one engine instance per worker
/// thread, and returns the merged report once every stage has joined.
///
/// `engines` determines the worker count; every element must answer
/// identically for the same `(query, k, nprobe)` — in this workspace that
/// holds for N instances of any engine over the same index (answers are
/// pure), which is exactly what the twin tests assert. The `options_of`
/// closure maps a stream index to its query options, like
/// [`SearchService::replay`](upanns_serve::SearchService::replay).
///
/// # Panics
///
/// Panics if `engines` is empty, or if a stage thread panics.
pub fn run_pipeline<E, F>(
    engines: Vec<E>,
    stream: &QueryStream,
    options_of: F,
    policy: Box<dyn BatchPolicy>,
    config: RuntimeConfig,
) -> RuntimeReport
where
    E: AnnEngine + Send,
    F: FnMut(usize) -> QueryOptions + Send,
{
    assert!(!engines.is_empty(), "the pipeline needs at least one engine worker");
    let workers = engines.len();
    let mode = config.mode;
    let svc = config.service;
    let epoch_schedule = config.epoch_schedule;
    let epochs: &[(f64, u64)] = &epoch_schedule;
    // The twin must be lossless: whether a query is shed depends on thread
    // timing, so logical mode widens the waiting room to hold the whole
    // stream. Wall mode sheds exactly as configured.
    let queue_capacity = match mode {
        RuntimeMode::Logical => svc.queue_capacity.max(stream.len()),
        RuntimeMode::Wall => svc.queue_capacity,
    };
    let slo_p99_s = svc.slo_p99_s.or(stream.slo_p99_s);
    let policy_label = match svc.max_chunk {
        Some(_) => format!("{}-chunked", policy.name()),
        None => policy.name().to_string(),
    };
    let clock = WallClock::start();

    let (outcome, engine_name) = thread::scope(|scope| {
        let (to_batcher, batcher_rx) = sync_channel::<ToBatcher>(STAGE_CHANNEL_BOUND);
        let (to_dispatcher, dispatcher_rx) = sync_channel::<ToDispatcher>(STAGE_CHANNEL_BOUND);
        let (to_completion, completion_rx) = sync_channel::<ToCompletion>(STAGE_CHANNEL_BOUND);
        let (to_admission, admission_rx) = channel::<ToAdmission>();
        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<ToWorker>(1);
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        let admission = {
            let to_batcher = to_batcher.clone();
            let to_completion = to_completion.clone();
            let mut options_of = options_of;
            scope.spawn(move || {
                admission_stage(
                    stream,
                    &mut options_of,
                    mode,
                    clock,
                    svc,
                    epochs,
                    queue_capacity,
                    &admission_rx,
                    &to_batcher,
                    &to_completion,
                )
            })
        };

        let batcher = {
            let to_dispatcher = to_dispatcher.clone();
            scope.spawn(move || {
                batcher_stage(stream, policy, mode, clock, svc, &batcher_rx, &to_dispatcher)
            })
        };

        let dispatcher = {
            let to_completion = to_completion.clone();
            let worker_txs_for_dispatch = worker_txs;
            scope.spawn(move || {
                dispatcher_stage(
                    stream,
                    svc,
                    &dispatcher_rx,
                    &worker_txs_for_dispatch,
                    &to_completion,
                )
            })
        };

        let mut worker_handles = Vec::with_capacity(workers);
        for (w, (engine, rx)) in engines.into_iter().zip(worker_rxs).enumerate() {
            let to_completion = to_completion.clone();
            let to_dispatcher = to_dispatcher.clone();
            worker_handles.push(scope.spawn(move || {
                worker_stage(
                    w,
                    engine,
                    stream,
                    mode,
                    clock,
                    epochs,
                    &rx,
                    &to_completion,
                    &to_dispatcher,
                )
            }));
        }
        // Only the stages hold senders now, so every receiver's disconnect
        // tracks its true producer set. (The batcher's sender survives in
        // the completion stage for feedback, but the batcher exits on the
        // explicit `Eos`, never on disconnect.)
        drop(to_dispatcher);
        drop(to_completion);

        let completion = scope.spawn(move || {
            completion_stage(stream.len(), &completion_rx, &to_admission, &to_batcher)
        });

        let (cache_hits, cache_misses, cache_invalidated) =
            admission.join().expect("admission stage panicked");
        batcher.join().expect("batcher stage panicked");
        let (dispatched_chunks, split_batches) =
            dispatcher.join().expect("dispatcher stage panicked");
        let mut engine_name = String::new();
        for handle in worker_handles {
            engine_name = handle.join().expect("worker stage panicked");
        }
        let mut outcome = completion.join().expect("completion stage panicked");
        outcome.cache_hits = cache_hits;
        outcome.cache_misses = cache_misses;
        outcome.cache_invalidated = cache_invalidated;
        outcome.dispatched_chunks = dispatched_chunks;
        outcome.split_batches = split_batches;
        (outcome, engine_name)
    });

    finish_report(
        outcome,
        engine_name,
        policy_label,
        mode,
        workers,
        stream,
        slo_p99_s,
        svc.slo_p99_s,
    )
}

/// Stage 1: paces arrivals, consults the cache, admits or sheds, and keeps
/// draining releases so bounded senders can never block on a dead stage.
#[allow(clippy::too_many_arguments)]
fn admission_stage<F: FnMut(usize) -> QueryOptions>(
    stream: &QueryStream,
    options_of: &mut F,
    mode: RuntimeMode,
    clock: WallClock,
    svc: ServiceConfig,
    epochs: &[(f64, u64)],
    queue_capacity: usize,
    admission_rx: &Receiver<ToAdmission>,
    to_batcher: &SyncSender<ToBatcher>,
    to_completion: &SyncSender<ToCompletion>,
) -> (u64, u64, u64) {
    let mut queue = AdmissionQueue::new(queue_capacity);
    for p in &stream.tenant_profiles {
        queue.register(p.id, p.weight);
    }
    let mut cache = ResultCache::new(svc.cache_capacity);
    let drain = |queue: &mut AdmissionQueue, cache: &mut ResultCache| {
        while let Ok(msg) = admission_rx.try_recv() {
            match msg {
                ToAdmission::Release { tenant, n } => queue.release(tenant, n),
                ToAdmission::CacheInsert {
                    stream_index,
                    options,
                    neighbors,
                    ready_at,
                    epoch,
                } => cache.insert_at_epoch(
                    stream.batch.queries.vector(stream_index),
                    &options,
                    neighbors,
                    ready_at,
                    epoch,
                ),
            }
        }
    };
    for (arrival, index) in stream.iter() {
        let now = match mode {
            RuntimeMode::Wall => {
                clock.sleep_until(arrival);
                clock.elapsed_s()
            }
            RuntimeMode::Logical => arrival,
        };
        drain(&mut queue, &mut cache);
        if mode == RuntimeMode::Logical {
            // Close every window the replay clock would have closed before
            // processing this arrival.
            let _ = to_batcher.send(ToBatcher::AdvanceTo(arrival));
        }
        let options = options_of(index);
        let tenant = options.tenant;
        if let Some((neighbors, ready_at)) = cache.lookup_at_epoch(
            stream.batch.queries.vector(index),
            &options,
            ResultCache::epoch_at(epochs, now),
        ) {
            // Wall mode has no modeled ready-at guard: the entry physically
            // exists, so the hit is served now. Logical mode keeps the
            // replay's guard so twin latencies stay meaningful.
            let finish = match mode {
                RuntimeMode::Wall => now + svc.cache_lookup_s,
                RuntimeMode::Logical => now.max(ready_at) + svc.cache_lookup_s,
            };
            let _ = to_completion.send(ToCompletion::CacheHit {
                stream_index: index,
                tenant,
                latency_s: finish - now,
                finish_s: finish,
                neighbors,
            });
            continue;
        }
        if !queue.try_admit(tenant) {
            let _ = to_completion.send(ToCompletion::Shed { tenant });
            continue;
        }
        let _ = to_batcher.send(ToBatcher::Query(PendingQuery {
            arrival_s: now,
            stream_index: index,
            options,
        }));
    }
    let _ = to_batcher.send(ToBatcher::Eos);
    // The pipeline is still draining: keep accepting releases (blocking,
    // not spinning) until completion hangs up its sender.
    while let Ok(msg) = admission_rx.recv() {
        if let ToAdmission::Release { tenant, n } = msg {
            queue.release(tenant, n);
        }
        // A cache insert after the last arrival can no longer produce a
        // hit; dropping it is harmless.
    }
    (cache.hits(), cache.misses(), cache.invalidated())
}

/// Stage 2: owns the batch former and the policy; closes windows by real
/// deadline (wall) or by `AdvanceTo` (logical) and forwards closed batches
/// with their chunk cap resolved.
fn batcher_stage(
    stream: &QueryStream,
    mut policy: Box<dyn BatchPolicy>,
    mode: RuntimeMode,
    clock: WallClock,
    svc: ServiceConfig,
    batcher_rx: &Receiver<ToBatcher>,
    to_dispatcher: &SyncSender<ToDispatcher>,
) {
    let mut former = BatchFormer::new(policy.current());
    let mut tenants_seen: Vec<TenantId> = stream.tenant_profiles.iter().map(|p| p.id).collect();
    for &t in &tenants_seen {
        former.set_tenant_config(t, policy.current_for(t));
    }
    let forward = |batch: FormedBatch, policy: &dyn BatchPolicy| {
        let cap = effective_chunk(policy, batch.options.tenant, svc.max_chunk);
        let _ = to_dispatcher.send(ToDispatcher::Batch {
            batch,
            chunk_cap: cap,
        });
    };
    let refresh = |former: &mut BatchFormer, policy: &dyn BatchPolicy, tenants: &[TenantId]| {
        former.set_config(policy.current());
        for &t in tenants {
            former.set_tenant_config(t, policy.current_for(t));
        }
    };
    loop {
        let msg = match mode {
            RuntimeMode::Wall => match former.next_deadline() {
                Some(deadline) => {
                    let now = clock.elapsed_s();
                    if deadline <= now {
                        for batch in former.due(now) {
                            forward(batch, policy.as_ref());
                        }
                        continue;
                    }
                    match batcher_rx.recv_timeout(Duration::from_secs_f64(deadline - now)) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => ToBatcher::Eos,
                    }
                }
                None => batcher_rx.recv().unwrap_or(ToBatcher::Eos),
            },
            RuntimeMode::Logical => batcher_rx.recv().unwrap_or(ToBatcher::Eos),
        };
        match msg {
            ToBatcher::Query(query) => {
                let tenant = query.options.tenant;
                if !tenants_seen.contains(&tenant) {
                    tenants_seen.push(tenant);
                }
                refresh(&mut former, policy.as_ref(), &tenants_seen);
                let now = match mode {
                    RuntimeMode::Wall => {
                        // Close anything whose real deadline passed while
                        // this message sat in the channel.
                        let now = clock.elapsed_s();
                        for batch in former.due(now) {
                            forward(batch, policy.as_ref());
                        }
                        now
                    }
                    RuntimeMode::Logical => query.arrival_s,
                };
                if let Some(batch) = former.push(query, now) {
                    forward(batch, policy.as_ref());
                }
            }
            ToBatcher::AdvanceTo(t) => {
                refresh(&mut former, policy.as_ref(), &tenants_seen);
                for batch in former.due(t) {
                    forward(batch, policy.as_ref());
                }
            }
            ToBatcher::QueryDone {
                tenant,
                at,
                latency_s,
            } => policy.observe_for(tenant, at, latency_s),
            ToBatcher::BatchDone {
                tenant,
                at,
                len,
                wait_s,
            } => policy.observe_batch_for(tenant, at, len, wait_s),
            ToBatcher::Eos => {
                match mode {
                    // The replay closes trailing groups at their own
                    // deadlines, never flushing early; both modes mirror
                    // that.
                    RuntimeMode::Logical => {
                        for batch in former.due(f64::INFINITY) {
                            forward(batch, policy.as_ref());
                        }
                    }
                    RuntimeMode::Wall => {
                        while let Some(deadline) = former.next_deadline() {
                            clock.sleep_until(deadline);
                            for batch in former.due(clock.elapsed_s()) {
                                forward(batch, policy.as_ref());
                            }
                        }
                    }
                }
                let _ = to_dispatcher.send(ToDispatcher::Eos);
                return;
            }
        }
    }
}

/// Stage 3: owns the chunk queue and the idle-worker set; hands the most
/// urgent ready chunk to the first idle worker, and runs the drain
/// protocol once the batcher signals `Eos`.
fn dispatcher_stage(
    stream: &QueryStream,
    svc: ServiceConfig,
    dispatcher_rx: &Receiver<ToDispatcher>,
    worker_txs: &[SyncSender<ToWorker>],
    to_completion: &SyncSender<ToCompletion>,
) -> (usize, usize) {
    let order = match svc.max_chunk {
        Some(_) => DispatchOrder::SloUrgency,
        None => DispatchOrder::CloseOrder,
    };
    let mut queue = ChunkQueue::new(order);
    let slos = SloTable::new(stream, svc.slo_p99_s);
    let mut idle: Vec<usize> = (0..worker_txs.len()).collect();
    let mut eos = false;
    loop {
        while !idle.is_empty() {
            let Some(chunk) = queue.pop_most_urgent() else {
                break;
            };
            let Some(worker) = idle.pop() else { break };
            // Cap-1 channel to a worker that reported idle (i.e. is blocked
            // in recv), so this send cannot stall the dispatch loop.
            let _ = worker_txs[worker].send(ToWorker::Chunk(chunk));
        }
        if eos && queue.is_empty() && idle.len() == worker_txs.len() {
            for tx in worker_txs {
                let _ = tx.send(ToWorker::Shutdown);
            }
            let _ = to_completion.send(ToCompletion::Drained);
            return (queue.dispatched_chunks(), queue.split_batches());
        }
        match dispatcher_rx.recv() {
            Ok(ToDispatcher::Batch { batch, chunk_cap }) => {
                let slo = slos.slo_of(batch.options.tenant);
                queue.submit(batch, slo, chunk_cap);
            }
            Ok(ToDispatcher::WorkerIdle(worker)) => idle.push(worker),
            Ok(ToDispatcher::Eos) => eos = true,
            // All senders gone without Eos: a stage panicked; exit so the
            // scope can surface that panic instead of deadlocking here.
            Err(_) => return (queue.dispatched_chunks(), queue.split_batches()),
        }
    }
}

/// Stage 4 (×N): one engine per worker. Computes a chunk's answers, then —
/// in wall mode — sleeps out the engine's modeled occupancy so the thread
/// behaves like one modeled device. Returns the engine's name.
#[allow(clippy::too_many_arguments)]
fn worker_stage<E: AnnEngine>(
    worker: usize,
    mut engine: E,
    stream: &QueryStream,
    mode: RuntimeMode,
    clock: WallClock,
    epochs: &[(f64, u64)],
    rx: &Receiver<ToWorker>,
    to_completion: &SyncSender<ToCompletion>,
    to_dispatcher: &SyncSender<ToDispatcher>,
) -> String {
    // Distinct id ranges per worker keep request ids unique without
    // cross-thread coordination (ids label requests; answers ignore them).
    let mut next_request_id = (worker as u64) << 32;
    while let Ok(ToWorker::Chunk(chunk)) = rx.recv() {
        let batch = chunk.batch;
        // Chunks are tenant-pure (the former never mixes tenants and the
        // dispatcher splits without mixing), so the batch options name the
        // one tenant the release and feedback belong to.
        let tenant = batch.options.tenant;
        let indices: Vec<usize> = batch.members.iter().map(|m| m.stream_index).collect();
        let options: Vec<QueryOptions> = batch.members.iter().map(|m| m.options).collect();
        let queries = stream.batch.queries.gather(&indices);
        next_request_id += 1;
        let started = clock.elapsed_s();
        // The batch close time is the one timestamp identical between this
        // runtime and the replay twin, so fault membership stays a pure
        // function of the schedule and the request. Per-query arrivals ride
        // along so a live-mutation engine resolves each query's snapshot at
        // its own arrival — answers stay a pure function of (query,
        // arrival) even though this pipeline's cache hits (and hence batch
        // shapes) are thread-timing dependent.
        let request = SearchRequest::new(queries, options)
            .with_id(next_request_id)
            .with_at(batch.closed_at)
            .with_arrivals(batch.members.iter().map(|m| m.arrival_s).collect());
        let response = engine.execute(&request);
        let (finish, wait_s) = match mode {
            RuntimeMode::Wall => {
                // The real computation is nearly free at fixture scale; the
                // modeled seconds are the device occupancy being emulated.
                clock.sleep_until(started + response.seconds);
                (clock.elapsed_s(), (started - batch.closed_at).max(0.0))
            }
            RuntimeMode::Logical => (batch.closed_at + response.seconds, 0.0),
        };
        let answer_epochs = batch
            .members
            .iter()
            .map(|m| ResultCache::epoch_at(epochs, m.arrival_s))
            .collect();
        let _ = to_completion.send(ToCompletion::Executed {
            members: batch.members,
            answers: response.results,
            tenant,
            finish_s: finish,
            modeled_s: response.seconds,
            lead: chunk.lead,
            wait_s,
            answer_epochs,
            degraded: response.stats.degraded,
            hedged: response.stats.hedged,
            redispatched: response.stats.redispatched,
        });
        let _ = to_dispatcher.send(ToDispatcher::WorkerIdle(worker));
    }
    engine.name().to_string()
}

/// Everything the completion stage accumulates; the missing counters
/// (cache, dispatch) are filled in from the other stages' join results.
struct Outcome {
    results: Vec<Vec<Neighbor>>,
    latencies: Vec<f64>,
    tenant_latencies: Vec<(TenantId, f64)>,
    tenant_order: Vec<TenantId>,
    shed_of: Vec<(TenantId, usize)>,
    completed: usize,
    shed: usize,
    duplicated: usize,
    lost: usize,
    busy_modeled_s: f64,
    makespan_s: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidated: u64,
    dispatched_chunks: usize,
    split_batches: usize,
    degraded: u64,
    hedged: u64,
    redispatched: u64,
}

/// Stage 5: the single writer of results, latencies and conservation
/// counters; routes releases and cache inserts back to admission and
/// (lossily) policy feedback back to the batcher.
fn completion_stage(
    expected: usize,
    completion_rx: &Receiver<ToCompletion>,
    to_admission: &Sender<ToAdmission>,
    to_batcher: &SyncSender<ToBatcher>,
) -> Outcome {
    // Policy feedback is advisory: if the batcher is saturated (or already
    // gone), dropping the observation beats blocking the completion stage
    // on it — hence try_send, never send.
    let feedback = |msg: ToBatcher| {
        let _ = to_batcher.try_send(msg);
    };
    let mut out = Outcome {
        results: vec![Vec::new(); expected],
        latencies: Vec::new(),
        tenant_latencies: Vec::new(),
        tenant_order: Vec::new(),
        shed_of: Vec::new(),
        completed: 0,
        shed: 0,
        duplicated: 0,
        lost: 0,
        busy_modeled_s: 0.0,
        makespan_s: 0.0,
        cache_hits: 0,
        cache_misses: 0,
        cache_invalidated: 0,
        dispatched_chunks: 0,
        split_batches: 0,
        degraded: 0,
        hedged: 0,
        redispatched: 0,
    };
    let mut answered = vec![false; expected];
    let mut accounted = 0usize;
    let note_tenant = |order: &mut Vec<TenantId>, t: TenantId| {
        if !order.contains(&t) {
            order.push(t);
        }
    };
    while let Ok(msg) = completion_rx.recv() {
        match msg {
            ToCompletion::CacheHit {
                stream_index,
                tenant,
                latency_s,
                finish_s,
                neighbors,
            } => {
                note_tenant(&mut out.tenant_order, tenant);
                if answered[stream_index] {
                    out.duplicated += 1;
                } else {
                    answered[stream_index] = true;
                    out.results[stream_index] = neighbors;
                }
                out.completed += 1;
                accounted += 1;
                out.latencies.push(latency_s);
                out.tenant_latencies.push((tenant, latency_s));
                out.makespan_s = out.makespan_s.max(finish_s);
            }
            ToCompletion::Shed { tenant } => {
                note_tenant(&mut out.tenant_order, tenant);
                out.shed += 1;
                accounted += 1;
                match out.shed_of.iter_mut().find(|(t, _)| *t == tenant) {
                    Some((_, n)) => *n += 1,
                    None => out.shed_of.push((tenant, 1)),
                }
            }
            ToCompletion::Executed {
                members,
                answers,
                tenant,
                finish_s,
                modeled_s,
                lead,
                wait_s,
                answer_epochs,
                degraded,
                hedged,
                redispatched,
            } => {
                note_tenant(&mut out.tenant_order, tenant);
                out.busy_modeled_s += modeled_s;
                out.makespan_s = out.makespan_s.max(finish_s);
                out.degraded += degraded;
                out.hedged += hedged;
                out.redispatched += redispatched;
                let n = members.len();
                if lead {
                    feedback(ToBatcher::BatchDone {
                        tenant,
                        at: finish_s,
                        len: n,
                        wait_s,
                    });
                }
                for ((member, neighbors), epoch) in
                    members.into_iter().zip(answers).zip(answer_epochs)
                {
                    let latency = finish_s - member.arrival_s;
                    out.completed += 1;
                    accounted += 1;
                    out.latencies.push(latency);
                    out.tenant_latencies.push((tenant, latency));
                    let _ = to_admission.send(ToAdmission::CacheInsert {
                        stream_index: member.stream_index,
                        options: member.options,
                        neighbors: neighbors.clone(),
                        ready_at: finish_s,
                        epoch,
                    });
                    feedback(ToBatcher::QueryDone {
                        tenant,
                        at: finish_s,
                        latency_s: latency,
                    });
                    if answered[member.stream_index] {
                        out.duplicated += 1;
                    } else {
                        answered[member.stream_index] = true;
                        out.results[member.stream_index] = neighbors;
                    }
                }
                let _ = to_admission.send(ToAdmission::Release { tenant, n });
            }
            ToCompletion::Drained => break,
        }
    }
    out.lost = expected.saturating_sub(accounted);
    out
}

/// Sorts, groups per tenant and assembles the final [`RuntimeReport`].
#[allow(clippy::too_many_arguments)]
fn finish_report(
    out: Outcome,
    engine: String,
    policy: String,
    mode: RuntimeMode,
    workers: usize,
    stream: &QueryStream,
    slo_p99_s: Option<f64>,
    config_slo: Option<f64>,
) -> RuntimeReport {
    let slos = SloTable::new(stream, config_slo);
    // Profile order first, then tenants first seen mid-stream — the same
    // row order as the replay's report.
    let mut tenant_rows: Vec<TenantId> = stream.tenant_profiles.iter().map(|p| p.id).collect();
    for &t in &out.tenant_order {
        if !tenant_rows.contains(&t) {
            tenant_rows.push(t);
        }
    }
    let tenants = tenant_rows
        .into_iter()
        .map(|t| {
            let mut lats: Vec<f64> = out
                .tenant_latencies
                .iter()
                .filter(|(id, _)| *id == t)
                .map(|(_, l)| *l)
                .collect();
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            RuntimeTenantRow {
                id: t,
                name: stream
                    .profile(t)
                    .map_or_else(|| t.to_string(), |p| p.name.clone()),
                slo_p99_s: slos.slo_of(t),
                completed: lats.len(),
                shed: out
                    .shed_of
                    .iter()
                    .find(|(id, _)| *id == t)
                    .map_or(0, |(_, n)| *n),
                latencies_s: lats,
            }
        })
        .collect();
    let mut latencies = out.latencies;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    RuntimeReport {
        engine,
        policy,
        mode: mode.label(),
        workers,
        offered: stream.len(),
        completed: out.completed,
        shed: out.shed,
        lost: out.lost,
        duplicated: out.duplicated,
        cache_hits: out.cache_hits,
        cache_misses: out.cache_misses,
        cache_invalidated: out.cache_invalidated,
        dispatched_chunks: out.dispatched_chunks,
        split_batches: out.split_batches,
        degraded: out.degraded,
        hedged: out.hedged,
        redispatched: out.redispatched,
        busy_modeled_s: out.busy_modeled_s,
        makespan_s: out.makespan_s,
        slo_p99_s,
        latencies_s: latencies,
        results: out.results,
        tenants,
    }
}
