//! Fixture: a directive that matches no violation is itself reported.

// lint: allow(wall-clock, reason = "nothing here reads time")
pub fn nop() {}
