#!/usr/bin/env python3
"""Validate the committed bench records against their schemas.

Usage:
    check_bench_schema.py BENCH_serving.json BENCH_runtime.json ...

Each file is dispatched on its top-level "schema" tag:

* ``upanns-serving-bench-v6`` — the discrete-event replay record written by
  ``serve --json`` (default replay runtime).
* ``upanns-runtime-bench-v3`` — the threaded-runtime sweep written by
  ``serve --runtime threaded --json``.

Checks are structural (required keys, types, row shapes) plus the
invariants a record must never violate to be worth committing:

* every runtime row conserves queries (``lost == 0``, ``duplicated == 0``,
  ``completed + shed == num_queries``);
* counters are non-negative, fractions live in [0, 1];
* the runtime sweep contains every workload (single, multi, failover,
  live-mutation) and more than one worker count (otherwise it cannot show
  scaling);
* the serving failover row carries a recovery envelope that actually
  recovered, and only failover rows carry one;
* runtime failover and live-mutation rows ran in deterministic logical mode
  (fault schedules and epoch visibility live on the simulated clock);
* serving live rows carry the live-mutation audit: ``stale_served == 0``
  (the snapshot-consistency contract), a recall-vs-staleness curve with the
  four committed lag buckets, and only live rows carry one.

Exit status 0 when every file validates; 1 with a per-file message
otherwise. This replaces the old inline ``python3 -m json.tool`` CI calls,
which only proved the files were JSON.
"""

import json
import sys

SERVING_SCHEMA = "upanns-serving-bench-v6"
RUNTIME_SCHEMA = "upanns-runtime-bench-v3"

SERVING_WORKLOADS = ("single", "multi", "failover", "live-mutation", "live-growth")
RUNTIME_WORKLOADS = ("single", "multi", "failover", "live-mutation")

# The committed recall-vs-staleness bucket labels, in order.
STALENESS_LAGS = ("lag=0", "lag=1-10", "lag=11-100", "lag=101+")

SERVING_ROW_KEYS = {
    "name", "workload", "policy", "sustained_qps", "p50_ms", "p99_ms",
    "mean_ms", "slo_miss_fraction", "meets_slo", "all_tenants_meet_slo",
    "completed", "shed", "cache_hit_rate", "cache_invalidated", "batches",
    "mean_batch_size",
    "dispatched_chunks", "mean_chunk_size", "final_max_batch",
    "final_max_delay_ms", "controller_adjustments", "engine_busy_s",
    "degraded", "hedged", "redispatched", "scale_events", "migration_s",
    "envelope", "live", "tenants",
}

LIVE_KEYS = {
    "final_epoch", "snapshots", "compactions", "mutation_events",
    "stale_served", "answered_in_window", "p99_steady_ms",
    "p99_compaction_ms", "recall_vs_staleness",
}

LIVE_BUCKET_KEYS = {"lag", "queries", "mean_recall"}

ENVELOPE_KEYS = {
    "bucket_s", "t_down", "baseline_attainment", "max_dip", "dip_at",
    "recovery_s", "recovered",
}

RUNTIME_ROW_KEYS = {
    "engine", "workload", "mode", "policy", "workers", "offered_qps",
    "num_queries", "sustained_qps", "p50_ms", "p99_ms", "mean_ms",
    "completed", "shed", "lost", "duplicated", "degraded", "hedged",
    "redispatched", "cache_hit_rate", "cache_invalidated",
    "dispatched_chunks", "busy_modeled_s",
    "makespan_s", "emulated_utilization", "tenants",
}

RUNTIME_TENANT_KEYS = {
    "tenant", "slo_ms", "completed", "shed", "p50_ms", "p99_ms",
    "slo_miss_fraction", "meets_slo",
}


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_keys(obj, expected, label):
    require(isinstance(obj, dict), f"{label} is not an object")
    missing = expected - set(obj)
    extra = set(obj) - expected
    require(not missing, f"{label} is missing keys: {sorted(missing)}")
    require(not extra, f"{label} has unexpected keys: {sorted(extra)}")


def check_fraction(value, label):
    require(isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
            f"{label} = {value!r} is not a fraction in [0, 1]")


def check_count(value, label):
    require(isinstance(value, int) and value >= 0,
            f"{label} = {value!r} is not a non-negative integer")


def check_serving(doc):
    require(set(doc) == {"schema", "config", "engines"},
            f"top-level keys {sorted(doc)} != ['config', 'engines', 'schema']")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config block is missing or empty")
    rows = doc["engines"]
    require(isinstance(rows, list) and rows, "engines list is missing or empty")
    for i, row in enumerate(rows):
        label = f"engines[{i}]"
        check_keys(row, SERVING_ROW_KEYS, label)
        require(row["workload"] in SERVING_WORKLOADS,
                f"{label}.workload = {row['workload']!r}")
        for key in ("completed", "shed", "batches", "dispatched_chunks",
                    "degraded", "hedged", "redispatched", "scale_events",
                    "cache_invalidated"):
            check_count(row[key], f"{label}.{key}")
        for key in ("slo_miss_fraction", "cache_hit_rate"):
            check_fraction(row[key], f"{label}.{key}")
        require(isinstance(row["migration_s"], (int, float))
                and row["migration_s"] >= 0,
                f"{label}.migration_s = {row['migration_s']!r}")
        require(isinstance(row["tenants"], list), f"{label}.tenants is not a list")
        if row["workload"] == "failover":
            check_envelope(row["envelope"], f"{label}.envelope")
        else:
            require(row["envelope"] is None,
                    f"{label} is a {row['workload']} row but carries an envelope")
        if row["workload"].startswith("live"):
            check_live(row["live"], row, f"{label}.live")
        else:
            require(row["live"] is None,
                    f"{label} is a {row['workload']} row but carries a live audit")
    workloads = {r["workload"] for r in rows}
    require(workloads == set(SERVING_WORKLOADS),
            f"expected {sorted(SERVING_WORKLOADS)} rows, got {sorted(workloads)}")


def check_live(live, row, label):
    """A committed live row must prove the consistency contract held: zero
    answers differ from their arrival snapshot, mutations actually flowed,
    and the recall-vs-staleness curve has the committed bucket shape."""
    check_keys(live, LIVE_KEYS, label)
    for key in ("final_epoch", "snapshots", "compactions", "mutation_events",
                "stale_served", "answered_in_window"):
        check_count(live[key], f"{label}.{key}")
    require(live["stale_served"] == 0,
            f"{label}: {live['stale_served']} served answers differ from "
            "their arrival snapshot — the consistency contract is broken")
    require(live["mutation_events"] > 0,
            f"{label}: a live row with no mutations proves nothing")
    require(live["final_epoch"] > 0, f"{label}.final_epoch = 0")
    require(live["snapshots"] >= 2,
            f"{label}: {live['snapshots']} snapshots means no epoch ever "
            "became visible mid-stream")
    for key in ("p99_steady_ms", "p99_compaction_ms"):
        require(isinstance(live[key], (int, float)) and live[key] >= 0,
                f"{label}.{key} = {live[key]!r}")
    curve = live["recall_vs_staleness"]
    require(isinstance(curve, list) and
            tuple(b.get("lag") for b in curve) == STALENESS_LAGS,
            f"{label}.recall_vs_staleness lacks the committed lag buckets "
            f"{STALENESS_LAGS}")
    for j, bucket in enumerate(curve):
        blabel = f"{label}.recall_vs_staleness[{j}]"
        check_keys(bucket, LIVE_BUCKET_KEYS, blabel)
        check_count(bucket["queries"], f"{blabel}.queries")
        check_fraction(bucket["mean_recall"], f"{blabel}.mean_recall")
    answered = sum(b["queries"] for b in curve)
    require(answered == row["completed"],
            f"{label}: staleness buckets cover {answered} queries but the "
            f"row completed {row['completed']}")


def check_envelope(env, label):
    """A committed failover row must prove the deployment recovered: the
    envelope is the CI-asserted contract (max dip bounded, recovery reached
    within the run) — a record showing an unrecovered outage must not land."""
    check_keys(env, ENVELOPE_KEYS, label)
    require(isinstance(env["bucket_s"], (int, float)) and env["bucket_s"] > 0,
            f"{label}.bucket_s = {env['bucket_s']!r}")
    require(isinstance(env["t_down"], (int, float)) and env["t_down"] >= 0,
            f"{label}.t_down = {env['t_down']!r}")
    check_fraction(env["baseline_attainment"], f"{label}.baseline_attainment")
    require(env["baseline_attainment"] > 0,
            f"{label}: baseline attainment {env['baseline_attainment']} means "
            "the deployment was already failing before the outage")
    check_fraction(env["max_dip"], f"{label}.max_dip")
    require(env["recovered"] is True,
            f"{label}: the scenario never recovered from its outage")
    require(isinstance(env["recovery_s"], (int, float)) and env["recovery_s"] >= 0,
            f"{label}.recovery_s = {env['recovery_s']!r}")
    require(isinstance(env["dip_at"], (int, float))
            and env["dip_at"] >= env["t_down"],
            f"{label}.dip_at = {env['dip_at']!r} precedes the outage")


def check_runtime(doc):
    require(set(doc) == {"schema", "config", "rows"},
            f"top-level keys {sorted(doc)} != ['config', 'rows', 'schema']")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config block is missing or empty")
    rows = doc["rows"]
    require(isinstance(rows, list) and rows, "rows list is missing or empty")
    for i, row in enumerate(rows):
        label = f"rows[{i}]"
        check_keys(row, RUNTIME_ROW_KEYS, label)
        require(row["workload"] in RUNTIME_WORKLOADS,
                f"{label}.workload = {row['workload']!r}")
        require(row["mode"] in ("wall", "logical"), f"{label}.mode = {row['mode']!r}")
        if row["workload"] in ("failover", "live-mutation"):
            # Fault schedules and epoch visibility live on the simulated
            # clock, so these rows are only meaningful (and only
            # deterministic) in logical mode.
            require(row["mode"] == "logical",
                    f"{label} is a {row['workload']} row in {row['mode']!r} mode")
        for key in ("completed", "shed", "lost", "duplicated", "workers",
                    "num_queries", "dispatched_chunks", "degraded", "hedged",
                    "redispatched", "cache_invalidated"):
            check_count(row[key], f"{label}.{key}")
        require(row["workers"] >= 1, f"{label}.workers = {row['workers']}")
        # The conservation contract: a committed record proving the runtime
        # dropped or double-answered queries must never land.
        require(row["lost"] == 0, f"{label} lost {row['lost']} queries")
        require(row["duplicated"] == 0,
                f"{label} duplicated {row['duplicated']} queries")
        require(row["completed"] + row["shed"] == row["num_queries"],
                f"{label}: completed {row['completed']} + shed {row['shed']} "
                f"!= offered {row['num_queries']}")
        check_fraction(row["cache_hit_rate"], f"{label}.cache_hit_rate")
        require(row["makespan_s"] > 0, f"{label}.makespan_s = {row['makespan_s']}")
        for j, t in enumerate(row["tenants"]):
            tlabel = f"{label}.tenants[{j}]"
            check_keys(t, RUNTIME_TENANT_KEYS, tlabel)
            check_count(t["completed"], f"{tlabel}.completed")
            check_count(t["shed"], f"{tlabel}.shed")
            check_fraction(t["slo_miss_fraction"], f"{tlabel}.slo_miss_fraction")
        if row["workload"] == "multi":
            require(len(row["tenants"]) >= 2,
                    f"{label} is a multi-tenant row with {len(row['tenants'])} tenants")
    workloads = {r["workload"] for r in rows}
    require(workloads == set(RUNTIME_WORKLOADS),
            f"expected {sorted(RUNTIME_WORKLOADS)} rows, got {sorted(workloads)}")
    worker_counts = {r["workers"] for r in rows}
    require(len(worker_counts) > 1,
            f"a one-worker-count sweep ({sorted(worker_counts)}) cannot show scaling")


CHECKERS = {
    SERVING_SCHEMA: check_serving,
    RUNTIME_SCHEMA: check_runtime,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    failed = False
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
            schema = doc.get("schema")
            checker = CHECKERS.get(schema)
            if checker is None:
                raise SchemaError(
                    f"unknown schema tag {schema!r} (known: {sorted(CHECKERS)})")
            checker(doc)
            print(f"{path}: ok ({schema})")
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"{path}: FAIL: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
