//! Property proofs that every SIMD fast path is *bitwise* equivalent to its
//! scalar reference — the contract that keeps search answers (and therefore
//! the replay twin and every committed bench record) identical across
//! machines with and without AVX2.
//!
//! Each test exercises both `Backend::Scalar` and the runtime-detected
//! backend through the explicit `*_with` entry points, so on AVX2 hardware
//! the vector code is proven against the scalar code in one process, and on
//! non-AVX2 hardware the suite degenerates to scalar-vs-scalar (still
//! validating the blocked fallbacks against the naive references). CI
//! additionally re-runs the whole test suite under `UPANNS_FORCE_SCALAR=1`
//! so the dispatcher's fallback path is exercised end to end.

use annkit::lut::LookupTable;
use annkit::pq::ProductQuantizer;
use annkit::simd::{self, Backend};
use annkit::topk::TopK;
use annkit::vector::Dataset;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn backends() -> [Backend; 2] {
    [Backend::Scalar, simd::detect()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// l2/ip: every backend reproduces the scalar reduction bit for bit,
    /// across dims that cover empty, sub-lane, full-lane, and ragged tails.
    #[test]
    fn distances_bitwise_equal(
        dim in 0usize..70,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
        let l2_ref = simd::l2_squared_scalar(&a, &b);
        let ip_ref = simd::inner_product_scalar(&a, &b);
        for backend in backends() {
            prop_assert_eq!(simd::l2_squared_with(backend, &a, &b).to_bits(), l2_ref.to_bits());
            prop_assert_eq!(simd::inner_product_with(backend, &a, &b).to_bits(), ip_ref.to_bits());
        }
    }

    /// ADC scan: blocked and gathered paths reproduce the naive record-major
    /// scan bit for bit, including record counts that leave 1..7-lane tails.
    #[test]
    fn adc_scan_bitwise_equal(
        m in 1usize..24,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let table: Vec<f32> = (0..m * 256).map(|_| rng.gen_range(0.0f32..50.0)).collect();
        let packed: Vec<u8> = (0..m * n).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut reference = Vec::new();
        simd::adc_scan_reference(&table, m, &packed, &mut reference);
        for backend in backends() {
            let mut got = Vec::new();
            simd::adc_scan_with(backend, &table, m, &packed, &mut got);
            prop_assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                prop_assert_eq!(g.to_bits(), r.to_bits());
            }
        }
    }

    /// push_batch: same final heap (ids and bitwise distances) and the same
    /// offered/accepted counters as sequential push, on every backend,
    /// with NaNs injected to stress the filter's ordering semantics.
    #[test]
    fn push_batch_equals_sequential_push(
        k in 1usize..20,
        distances in prop::collection::vec(-1000.0f32..1000.0, 0..120),
        nan_stride in 2usize..30,
        base_id in 0u64..1_000_000,
    ) {
        let mut distances = distances;
        for i in (0..distances.len()).step_by(nan_stride) {
            // Deterministically poison a subset with NaN.
            if i % (nan_stride * 3) == 0 {
                distances[i] = f32::NAN;
            }
        }
        let mut reference = TopK::new(k);
        for (j, &d) in distances.iter().enumerate() {
            reference.push(base_id + j as u64, d);
        }
        for backend in backends() {
            let mut batched = TopK::new(k);
            batched.push_batch_with(backend, base_id, &distances);
            prop_assert_eq!(batched.offered(), reference.offered());
            prop_assert_eq!(batched.accepted(), reference.accepted());
            let got = batched.into_sorted();
            let want = reference.sorted();
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.id, w.id);
                prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
            }
        }
    }
}

/// End-to-end: a LookupTable built from a real trained PQ scans identically
/// on every backend, and the dispatching `adc_scan` agrees with whichever
/// backend `active()` selected (honouring `UPANNS_FORCE_SCALAR` when CI
/// sets it).
#[test]
fn trained_lut_scan_dispatch_consistent() {
    let mut rng = SmallRng::seed_from_u64(77);
    let dim = 16;
    let mut ds = Dataset::new(dim);
    let mut v = vec![0.0f32; dim];
    for _ in 0..500 {
        for x in v.iter_mut() {
            *x = rng.gen_range(-1.0..1.0);
        }
        ds.push(&v);
    }
    let pq = ProductQuantizer::train(&ds, 8, 5);
    let lut = LookupTable::build(&pq, ds.vector(1));
    let codes: Vec<Vec<u8>> = (0..37).map(|i| pq.encode(ds.vector(i))).collect();
    let packed = annkit::pq::pack_codes(&codes, 8);

    let dispatched = lut.adc_scan(&packed);
    let mut via_active = Vec::new();
    lut.adc_scan_with(simd::active(), &packed, &mut via_active);
    assert_eq!(dispatched.len(), via_active.len());
    for (a, b) in dispatched.iter().zip(&via_active) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    if std::env::var_os("UPANNS_FORCE_SCALAR").is_some_and(|s| s != "0") {
        assert_eq!(
            simd::active(),
            Backend::Scalar,
            "UPANNS_FORCE_SCALAR must pin the dispatcher to the fallback"
        );
    }

    for backend in backends() {
        let mut out = Vec::new();
        lut.adc_scan_with(backend, &packed, &mut out);
        for (a, b) in dispatched.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "{backend:?}");
        }
    }
}
