//! Adaptive serving: reacting to query-pattern drift (§4.1.2).
//!
//! UpANNS places and replicates clusters using *historical* access
//! frequencies. In production (RAG serving, recommendation) the pattern
//! drifts: the paper's policy adjusts replica counts for minor, incremental
//! shifts and performs a full data relocation for major shifts. This example
//! walks through both tiers on a simulated three-"day" workload:
//!
//! * day 1 — the engine is built from day-1 traffic;
//! * day 2 — a few topics heat up (minor drift → replica adjustment);
//! * day 3 — the popularity ranking flips (major drift → full relocation).
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_serving
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use upanns::builder::frequencies_from_queries;
use upanns::prelude::*;

const NPROBE: usize = 12;
const K: usize = 10;
const DPUS: usize = 96;

fn build_engine(
    index: &IvfPqIndex,
    placement: Option<Placement>,
    history: &Dataset,
    scale: f64,
) -> UpAnnsEngine {
    let mut builder = UpAnnsBuilder::new(index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(PimConfig::with_dpus(DPUS))
        .with_history(history, NPROBE)
        .with_batch_capacity(BatchCapacity {
            batch_size: 512,
            nprobe: NPROBE,
            max_k: K,
        });
    if let Some(p) = placement {
        builder = builder.with_placement(p);
    }
    builder.build()
}

fn serve(engine: &mut UpAnnsEngine, batch: &Dataset, label: &str) -> f64 {
    let out = engine.search_batch(batch, NPROBE, K);
    println!(
        "  {label:<28} QPS {:8.1}   balance max/avg {:.2}",
        out.qps(),
        engine.last_balance_ratio()
    );
    out.qps()
}

fn main() {
    // ------------------------------------------------------------------
    // Dataset + index (reduced scale, projected timing — see DESIGN.md).
    // ------------------------------------------------------------------
    let n = 20_000;
    println!("Generating a SPACEV-like dataset with {n} vectors ...");
    let dataset = SyntheticSpec::spacev_like(n)
        .with_clusters(128)
        .with_seed(31)
        .generate_with_meta();
    let scale = 1e9 / n as f64;
    println!("Training IVFPQ (256 clusters) ...");
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(256, 20).with_train_size(8_000),
        3,
    );
    let sizes = index.list_sizes();
    let policy = AdaptationPolicy::default();

    // ------------------------------------------------------------------
    // Day 1: build from day-1 traffic and serve day-1 queries.
    // ------------------------------------------------------------------
    println!("\n=== Day 1: initial placement ===");
    let day1 = WorkloadSpec::new(2_000).with_seed(100).generate(&dataset);
    let day1_batch = WorkloadSpec::new(512)
        .with_seed(101)
        .with_popularity_seed(100)
        .generate(&dataset);
    let day1_freqs = frequencies_from_queries(&index, &day1.queries, NPROBE);
    let mut engine = build_engine(&index, None, &day1.queries, scale);
    serve(&mut engine, &day1_batch.queries, "day-1 traffic");

    // ------------------------------------------------------------------
    // Day 2: the popularity distribution shifts moderately (new hot topics).
    // ------------------------------------------------------------------
    println!("\n=== Day 2: minor drift ===");
    let day2 = WorkloadSpec::new(2_000)
        .with_seed(200)
        .with_popularity_seed(77)
        .generate(&dataset);
    let day2_batch = WorkloadSpec::new(512)
        .with_seed(201)
        .with_popularity_seed(77)
        .generate(&dataset);
    let day2_freqs = frequencies_from_queries(&index, &day2.queries, NPROBE);

    let drift = measure_drift(&day1_freqs, &day2_freqs, &policy);
    println!(
        "  drift: total variation {:.3}, hot-set overlap {:.2}, {} heated / {} cooled clusters",
        drift.total_variation, drift.hot_set_overlap, drift.heated_clusters, drift.cooled_clusters
    );

    // Serving day-2 traffic with the *stale* day-1 placement:
    let stale_qps = serve(&mut engine, &day2_batch.queries, "day-2 traffic, stale placement");

    // Adapt: minor drift should only adjust replica counts.
    let (adapted, decision) = adapt_placement(
        engine.placement(),
        &sizes,
        &day1_freqs,
        &day2_freqs,
        0,
        &policy,
    );
    match &decision {
        AdaptationDecision::NoChange(_) => println!("  decision: no change needed"),
        AdaptationDecision::AdjustReplicas(_, adj) => println!(
            "  decision: adjust replicas (+{} / -{} changes)",
            adj.add.iter().map(|(_, n)| n).sum::<usize>(),
            adj.remove.iter().map(|(_, n)| n).sum::<usize>()
        ),
        AdaptationDecision::FullRelocation(_) => println!("  decision: full relocation"),
    }
    let mut adapted_engine = build_engine(&index, Some(adapted), &day2.queries, scale);
    let adapted_qps = serve(
        &mut adapted_engine,
        &day2_batch.queries,
        "day-2 traffic, adapted",
    );
    println!(
        "  adaptation recovered {:.1}% throughput",
        (adapted_qps / stale_qps - 1.0) * 100.0
    );

    // ------------------------------------------------------------------
    // Day 3: the ranking flips entirely (major drift → full relocation).
    // ------------------------------------------------------------------
    println!("\n=== Day 3: major drift ===");
    let day3 = WorkloadSpec::new(2_000)
        .with_seed(300)
        .with_popularity_seed(9999)
        .with_skew(1.6)
        .generate(&dataset);
    let day3_freqs = frequencies_from_queries(&index, &day3.queries, NPROBE);
    let drift3 = measure_drift(&day2_freqs, &day3_freqs, &policy);
    println!(
        "  drift: total variation {:.3}, hot-set overlap {:.2}",
        drift3.total_variation, drift3.hot_set_overlap
    );
    let (relocated, decision3) = adapt_placement(
        adapted_engine.placement(),
        &sizes,
        &day2_freqs,
        &day3_freqs,
        0,
        &policy,
    );
    match decision3 {
        AdaptationDecision::FullRelocation(_) => println!("  decision: full relocation"),
        other => println!("  decision: {other:?}"),
    }
    let day3_batch = WorkloadSpec::new(512)
        .with_seed(301)
        .with_popularity_seed(9999)
        .with_skew(1.6)
        .generate(&dataset);
    let mut relocated_engine = build_engine(&index, Some(relocated), &day3.queries, scale);
    serve(
        &mut relocated_engine,
        &day3_batch.queries,
        "day-3 traffic, relocated",
    );

    // Accuracy is unaffected by any of this (placement only moves data).
    let exact = FlatIndex::new(&dataset.vectors).search_batch(&day3_batch.queries, K);
    let out = relocated_engine.search_batch(&day3_batch.queries, NPROBE, K);
    println!(
        "\nrecall@{K} after relocation: {:.3}",
        recall_at_k(&out.results, &exact, K)
    );
}
