//! The request-centric engine API: equivalence with the legacy positional
//! API, and per-query options honored end to end on every engine.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
use annkit::vector::Dataset;
use annkit::workload::WorkloadSpec;
use baselines::cpu::CpuFaissEngine;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest};
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use proptest::prelude::*;
use std::sync::OnceLock;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;
use upanns::multihost::{shard_ranges, InterconnectModel, MultiHostUpAnns};

struct Fixture {
    dataset: SyntheticDataset,
    index: IvfPqIndex,
    history: Dataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = SyntheticSpec::sift_like(1_600)
            .with_clusters(12)
            .with_seed(91)
            .generate_with_meta();
        let index = IvfPqIndex::train(
            &dataset.vectors,
            &IvfPqParams::new(16, 16).with_train_size(700),
            4,
        );
        let history = WorkloadSpec::new(160).with_seed(92).generate(&dataset).queries;
        Fixture {
            dataset,
            index,
            history,
        }
    })
}

fn pim_engine(config: UpAnnsConfig) -> UpAnnsEngine {
    let fix = fixture();
    UpAnnsBuilder::new(&fix.index)
        .with_config(config)
        .with_pim_config(PimConfig::with_dpus(8))
        .with_history(&fix.history, 4)
        .with_batch_capacity(BatchCapacity {
            batch_size: 32,
            nprobe: 4,
            max_k: 10,
        })
        .build()
}

fn queries(n: usize) -> Dataset {
    let fix = fixture();
    fix.dataset
        .vectors
        .gather(&(0..n).map(|i| (i * 97) % 1_600).collect::<Vec<_>>())
}

fn ids(results: &[Vec<annkit::topk::Neighbor>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect()
}

/// `execute` with uniform per-query options must return exactly what the
/// legacy positional `search_batch` returns — results *and* simulated time.
fn assert_uniform_equivalence<E: AnnEngine>(engine: &mut E, nprobe: usize, k: usize) {
    let qs = queries(12);
    let legacy = engine.search_batch(&qs, nprobe, k);
    let request =
        SearchRequest::new(qs.clone(), vec![QueryOptions::new(k, nprobe); qs.len()]).with_id(77);
    let response = engine.execute(&request);
    assert_eq!(response.request_id, 77);
    assert_eq!(ids(&legacy.results), ids(&response.results));
    assert!(
        (legacy.seconds - response.seconds).abs() <= legacy.seconds * 1e-9,
        "simulated time differs: {} vs {}",
        legacy.seconds,
        response.seconds
    );
}

/// `execute` with mixed options must answer each query exactly as a
/// same-options uniform batch would.
fn assert_mixed_matches_per_group<E: AnnEngine>(engine: &mut E) {
    let qs = queries(10);
    let a = QueryOptions::new(5, 3);
    let b = QueryOptions::new(9, 6);
    let options: Vec<QueryOptions> = (0..qs.len())
        .map(|i| if i % 2 == 0 { a } else { b })
        .collect();
    let response = engine.execute(&SearchRequest::new(qs.clone(), options));

    let a_members: Vec<usize> = (0..qs.len()).step_by(2).collect();
    let b_members: Vec<usize> = (1..qs.len()).step_by(2).collect();
    let a_expected = engine.search_batch(&qs.gather(&a_members), a.nprobe, a.k);
    let b_expected = engine.search_batch(&qs.gather(&b_members), b.nprobe, b.k);

    for (slot, expected) in a_members.iter().zip(ids(&a_expected.results)) {
        assert_eq!(
            response.results[*slot].iter().map(|n| n.id).collect::<Vec<_>>(),
            expected,
            "query {slot} (k=5, nprobe=3) diverges from its uniform batch"
        );
    }
    for (slot, expected) in b_members.iter().zip(ids(&b_expected.results)) {
        assert_eq!(
            response.results[*slot].iter().map(|n| n.id).collect::<Vec<_>>(),
            expected,
            "query {slot} (k=9, nprobe=6) diverges from its uniform batch"
        );
    }
}

#[test]
fn mixed_options_match_per_group_search_on_all_engines() {
    let fix = fixture();
    assert_mixed_matches_per_group(&mut CpuFaissEngine::new(&fix.index));
    assert_mixed_matches_per_group(&mut GpuFaissEngine::new(&fix.index));
    assert_mixed_matches_per_group(&mut pim_engine(UpAnnsConfig::pim_naive()));
    assert_mixed_matches_per_group(&mut pim_engine(UpAnnsConfig::upanns()));
}

#[test]
fn multihost_execute_honors_per_query_k() {
    let fix = fixture();
    let ranges = shard_ranges(fix.dataset.vectors.len(), 2);
    let mut shards = Vec::new();
    for r in &ranges {
        let rows: Vec<usize> = r.clone().collect();
        let shard_data = fix.dataset.vectors.gather(&rows);
        let params = IvfPqParams::new(12, 16).with_train_size(500);
        let mut index = IvfPqIndex::train_empty(&shard_data, &params, 3);
        index.add(&shard_data, r.start as u64);
        shards.push(index);
    }
    let hosts: Vec<UpAnnsEngine> = shards
        .iter()
        .map(|ix| {
            UpAnnsBuilder::new(ix)
                .with_config(UpAnnsConfig::upanns())
                .with_pim_config(PimConfig::with_dpus(8))
                .with_batch_capacity(BatchCapacity {
                    batch_size: 32,
                    nprobe: 6,
                    max_k: 20,
                })
                .build()
        })
        .collect();
    let mut multi = MultiHostUpAnns::new(hosts, InterconnectModel::default());

    let qs = queries(8);
    let options: Vec<QueryOptions> = (0..qs.len())
        .map(|i| {
            if i % 2 == 0 {
                QueryOptions::new(4, 4)
            } else {
                QueryOptions::new(15, 6)
            }
        })
        .collect();
    let response = multi.execute(&SearchRequest::new(qs.clone(), options.clone()));
    // The coordinator merge truncates to each query's own k.
    for (i, r) in response.results.iter().enumerate() {
        assert!(
            r.len() <= options[i].k,
            "query {i} returned {} > k={}",
            r.len(),
            options[i].k
        );
        assert!(!r.is_empty(), "query {i} returned nothing");
    }
    assert!(response.results[1].len() > response.results[0].len());

    // And the uniform shim still matches execute on the deployment.
    assert_uniform_equivalence(&mut multi, 6, 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// execute(uniform request) == search_batch on the CPU and GPU engines
    /// for arbitrary (nprobe, k).
    #[test]
    fn execute_equals_search_batch_on_baselines(nprobe in 1usize..10, k in 1usize..25) {
        let fix = fixture();
        assert_uniform_equivalence(&mut CpuFaissEngine::new(&fix.index), nprobe, k);
        assert_uniform_equivalence(&mut GpuFaissEngine::new(&fix.index), nprobe, k);
    }

    /// Same equivalence on the two PIM engines (UpANNS and PIM-naive).
    #[test]
    fn execute_equals_search_batch_on_pim_engines(nprobe in 1usize..8, k in 1usize..16) {
        assert_uniform_equivalence(&mut pim_engine(UpAnnsConfig::upanns()), nprobe, k);
        assert_uniform_equivalence(&mut pim_engine(UpAnnsConfig::pim_naive()), nprobe, k);
    }
}
