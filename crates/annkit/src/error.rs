//! Error type shared across the substrate.

use std::fmt;

/// Errors produced by the ANNS substrate.
///
/// The substrate is deliberately strict: dimension mismatches and invalid
/// parameters are programming errors in the layers above, so most APIs panic
/// on those, and `AnnError` is reserved for conditions that legitimately occur
/// at runtime (I/O failures, malformed dataset files, infeasible training
/// requests).
#[derive(Debug)]
pub enum AnnError {
    /// A dataset file could not be read or written.
    Io(std::io::Error),
    /// A dataset file exists but its contents are not a valid
    /// `fvecs`/`bvecs`/`ivecs` stream.
    MalformedFile {
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// Training was requested with fewer points than clusters/centroids.
    InsufficientTrainingData {
        /// Number of points supplied.
        points: usize,
        /// Number of centroids requested.
        requested: usize,
    },
    /// A parameter combination is invalid (e.g. dimension not divisible by M).
    InvalidParameter {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::Io(e) => write!(f, "I/O error: {e}"),
            AnnError::MalformedFile { reason } => write!(f, "malformed dataset file: {reason}"),
            AnnError::InsufficientTrainingData { points, requested } => write!(
                f,
                "insufficient training data: {points} points for {requested} centroids"
            ),
            AnnError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for AnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnnError::InsufficientTrainingData {
            points: 10,
            requested: 100,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("100"));

        let e = AnnError::InvalidParameter {
            reason: "dim % m != 0".into(),
        };
        assert!(e.to_string().contains("dim % m != 0"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: AnnError = io.into();
        assert!(matches!(e, AnnError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
