//! The serving front-end: admission → batching → cache → engine, replayed
//! against the simulated clock.
//!
//! [`SearchService`] wraps any [`AnnEngine`] and replays a timed
//! [`QueryStream`]: every arrival is admitted (or shed), checked against the
//! result cache, and batched with compatible queries; formed batches run on
//! the engine back-to-back (the engine is a single serial resource, so a
//! batch dispatched while the engine is busy waits for it). All times are
//! simulated seconds — the engines' own timing models drive the clock, so
//! sustained QPS and latency percentiles are comparable across the CPU, GPU
//! and PIM engines exactly like the batch benchmarks.

use crate::admission::AdmissionQueue;
use crate::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
use crate::cache::ResultCache;
use crate::controller::{BatchPolicy, FixedPolicy};
use annkit::topk::Neighbor;
use annkit::workload::QueryStream;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest, TenantId};

/// Nearest-rank percentile over an ascending-sorted latency list (0 when
/// empty) — shared by the aggregate and per-tenant report rows.
fn percentile_of(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64).round();
    sorted[rank as usize]
}

/// Shed-aware SLO miss fraction: completed queries over the target plus
/// every shed query, over the offered total (0 when nothing was offered).
fn miss_fraction_of(sorted: &[f64], completed: usize, shed: usize, slo: Option<f64>) -> f64 {
    let offered = completed + shed;
    if offered == 0 {
        return 0.0;
    }
    let late = match slo {
        Some(slo) => sorted.iter().filter(|&&l| l > slo).count(),
        None => 0,
    };
    (late + shed) as f64 / offered as f64
}

/// Configuration of a [`SearchService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum queries waiting for a batch before arrivals are shed.
    pub queue_capacity: usize,
    /// Close conditions of the dynamic batch former — the *initial*
    /// conditions when an adaptive [`BatchPolicy`] is installed via
    /// [`SearchService::with_policy`], the permanent ones otherwise.
    pub batcher: BatchFormerConfig,
    /// Result-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Simulated seconds to answer a query from the cache.
    pub cache_lookup_s: f64,
    /// Optional p99 latency SLO (seconds) used for attainment reporting.
    /// When unset, the replayed stream's own
    /// [`slo_p99_s`](QueryStream::slo_p99_s) annotation is used instead.
    pub slo_p99_s: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            batcher: BatchFormerConfig::default(),
            cache_capacity: 1024,
            cache_lookup_s: 2e-6,
            slo_p99_s: None,
        }
    }
}

/// One tenant's slice of a [`ServiceReport`]: its own latency distribution,
/// shed count, SLO attainment, and the batching window its traffic ended
/// under. Single-tenant replays produce exactly one row (the `default`
/// tenant), so the per-tenant view is always present.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant.
    pub id: TenantId,
    /// Report name (from the stream's [`TenantProfile`], or the id's
    /// display form for tenants the stream did not announce).
    ///
    /// [`TenantProfile`]: annkit::workload::TenantProfile
    pub name: String,
    /// The tenant's weighted-fair admission share.
    pub weight: u32,
    /// The SLO this tenant was measured against: its own profile SLO, or
    /// the explicit [`ServiceConfig::slo_p99_s`] override. A profiled
    /// tenant that declared no target keeps `None` (vacuous attainment) —
    /// it is *not* measured against another tenant's SLO, matching the
    /// [`ControllerBank`](crate::controller::ControllerBank), which gives
    /// such tenants no controller. Only tenants the stream never announced
    /// fall back to the replay's global target.
    pub slo_p99_s: Option<f64>,
    /// Queries of this tenant answered (engine or cache).
    pub completed: usize,
    /// Queries of this tenant rejected at admission.
    pub shed: usize,
    /// This tenant's end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// The close conditions this tenant's groups ended the replay under.
    pub final_batcher: BatchFormerConfig,
}

impl TenantReport {
    /// The `p`-th latency percentile in seconds (nearest rank).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Shed-aware SLO miss fraction for this tenant (see
    /// [`ServiceReport::slo_miss_fraction`]).
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether this tenant met its SLO, shed-aware: at most 1 % of its
    /// offered queries missed. Vacuously true without a target.
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }
}

/// What the replay measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The engine's display name.
    pub engine: String,
    /// The batch policy's display name ("fixed", "adaptive-slo", ...).
    pub policy: String,
    /// The p99 SLO the replay was measured against, if any.
    pub slo_p99_s: Option<f64>,
    /// How many times the policy adjusted the former's close conditions.
    pub controller_adjustments: usize,
    /// The close conditions the policy had settled on when the stream ended.
    pub final_batcher: BatchFormerConfig,
    /// Queries answered (engine or cache).
    pub completed: usize,
    /// Queries rejected at admission.
    pub shed: usize,
    /// Cache hits / misses.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Batches executed on the engine, split by close reason.
    pub size_closed_batches: usize,
    /// Batches closed by the waiting deadline.
    pub deadline_closed_batches: usize,
    /// Batches flushed at stream end.
    pub flushed_batches: usize,
    /// Simulated seconds the engine spent executing batches.
    pub engine_busy_s: f64,
    /// Time of the last completion (the replay's makespan).
    pub makespan_s: f64,
    /// Per-query end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// Per-query results in stream order (empty vector for shed queries).
    pub results: Vec<Vec<Neighbor>>,
    /// Per-tenant breakdown, in the stream's tenant-profile order (one
    /// `default` row for single-tenant replays).
    pub tenants: Vec<TenantReport>,
}

impl ServiceReport {
    /// Completed queries per second of makespan (sustained throughput).
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// The `p`-th latency percentile in seconds (nearest-rank on the sorted
    /// latencies; 0 when nothing completed).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.latencies_s, p)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Mean latency in seconds (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Fraction of *offered* queries that missed the SLO: completed queries
    /// whose end-to-end latency exceeded the target, **plus every shed
    /// query** — a query turned away at the door received no answer at all,
    /// which is the worst possible latency, so it always counts as a miss
    /// (even when no explicit SLO was configured). 0 when nothing was
    /// offered. A 100 %-shed replay therefore reports exactly 1.0.
    pub fn slo_miss_fraction(&self) -> f64 {
        miss_fraction_of(&self.latencies_s, self.completed, self.shed, self.slo_p99_s)
    }

    /// Whether the replay met its p99 SLO, shed-aware: at most 1 % of the
    /// *offered* queries (shed queries included, via
    /// [`slo_miss_fraction`](Self::slo_miss_fraction)) missed the target.
    /// Vacuously true when no SLO was set.
    pub fn meets_slo(&self) -> bool {
        self.slo_p99_s.is_none() || self.slo_miss_fraction() <= 0.01
    }

    /// Whether **every** tenant met its own SLO (the multi-tenant success
    /// criterion — the aggregate [`meets_slo`](Self::meets_slo) can look
    /// healthy while one tenant takes all the misses).
    pub fn all_tenants_meet_slo(&self) -> bool {
        self.tenants.iter().all(TenantReport::meets_slo)
    }

    /// The per-tenant row of `tenant`, if the replay saw it.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == tenant)
    }

    /// Cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total batches the engine executed.
    pub fn batches(&self) -> usize {
        self.size_closed_batches + self.deadline_closed_batches + self.flushed_batches
    }

    /// Mean queries per executed batch (0 without batches).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        let engine_answered = self.completed as u64 - self.cache_hits;
        if batches == 0 {
            0.0
        } else {
            engine_answered as f64 / batches as f64
        }
    }
}

/// A serving front-end over one engine.
pub struct SearchService<E: AnnEngine> {
    engine: E,
    config: ServiceConfig,
    policy: Box<dyn BatchPolicy>,
    next_request_id: u64,
}

impl<E: AnnEngine> SearchService<E> {
    /// Wraps `engine` with the given front-end configuration and the static
    /// batch policy implied by `config.batcher`.
    pub fn new(engine: E, config: ServiceConfig) -> Self {
        Self {
            engine,
            policy: Box::new(FixedPolicy(config.batcher)),
            config,
            next_request_id: 0,
        }
    }

    /// Replaces the batch policy (e.g. with an
    /// [`SloController`](crate::controller::SloController)). The policy's own
    /// initial conditions take over from `config.batcher`.
    pub fn with_policy(mut self, policy: Box<dyn BatchPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The front-end configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The batch policy currently steering the former.
    pub fn policy(&self) -> &dyn BatchPolicy {
        self.policy.as_ref()
    }

    /// Unwraps the service, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Replays a timed stream, assigning `options_of(stream_index)` to each
    /// query, and reports sustained QPS, latency percentiles, SLO attainment
    /// and front-end counters. The replay is deterministic.
    ///
    /// The batch policy is consulted for the former's close conditions before
    /// every arrival and observes completion latencies on the simulated
    /// clock **causally**: a completion that finishes at simulated time `t`
    /// is delivered to the policy only once the arrival clock has passed
    /// `t`, exactly as an online controller would see it — feedback from a
    /// batch still executing in the simulated future never steers earlier
    /// arrivals.
    pub fn replay(
        &mut self,
        stream: &QueryStream,
        mut options_of: impl FnMut(usize) -> QueryOptions,
    ) -> ServiceReport {
        let engine = &mut self.engine;
        let policy = &mut self.policy;
        let next_request_id = &mut self.next_request_id;
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        for p in &stream.tenant_profiles {
            queue.register(p.id, p.weight);
        }
        let mut former = BatchFormer::new(policy.current());
        // Tenants whose windows the policy steers: the announced profiles
        // plus any tenant the options closure invents mid-stream.
        let mut tenants_seen: Vec<TenantId> =
            stream.tenant_profiles.iter().map(|p| p.id).collect();
        for &t in &tenants_seen {
            former.set_tenant_config(t, policy.current_for(t));
        }
        let mut cache = ResultCache::new(self.config.cache_capacity);
        let slo_p99_s = self.config.slo_p99_s.or(stream.slo_p99_s);

        // Admitted queries occupy the waiting room until their batch
        // *finishes* on the engine, so an engine backlog exerts backpressure
        // on admission (per tenant — batches are tenant-pure). Completions
        // are released lazily as the clock passes them:
        // (finish_time, tenant, queries) triples.
        let mut completions: Vec<(f64, TenantId, usize)> = Vec::new();

        // Policy feedback queued until the arrival clock catches up with the
        // completion it describes (the causality guarantee above). Each
        // observation carries its tenant so a per-tenant policy bank can
        // route it to the owning controller.
        #[derive(Clone, Copy)]
        enum Feedback {
            Query {
                at: f64,
                tenant: TenantId,
                latency_s: f64,
            },
            Batch {
                at: f64,
                tenant: TenantId,
                len: usize,
                wait_s: f64,
            },
        }
        impl Feedback {
            fn at(&self) -> f64 {
                match *self {
                    Feedback::Query { at, .. } | Feedback::Batch { at, .. } => at,
                }
            }
        }
        let mut pending_feedback: Vec<Feedback> = Vec::new();
        let deliver_feedback =
            |pending: &mut Vec<Feedback>, policy: &mut Box<dyn BatchPolicy>, now: f64| {
                let mut due = Vec::new();
                pending.retain(|obs| {
                    if obs.at() <= now {
                        due.push(*obs);
                        false
                    } else {
                        true
                    }
                });
                // Engine finishes are non-decreasing but cache-hit times can
                // interleave with them.
                due.sort_by(|a, b| {
                    a.at().partial_cmp(&b.at()).unwrap_or(std::cmp::Ordering::Equal)
                });
                for obs in due {
                    match obs {
                        Feedback::Query {
                            at,
                            tenant,
                            latency_s,
                        } => policy.observe_for(tenant, at, latency_s),
                        Feedback::Batch {
                            at,
                            tenant,
                            len,
                            wait_s,
                        } => policy.observe_batch_for(tenant, at, len, wait_s),
                    }
                }
            };

        let mut engine_free_at = 0.0f64;
        let mut engine_busy_s = 0.0f64;
        let mut makespan_s = 0.0f64;
        let mut latencies: Vec<f64> = Vec::with_capacity(stream.len());
        // Tenant-tagged copy of every completion latency, for the per-tenant
        // report rows.
        let mut tenant_latencies: Vec<(TenantId, f64)> = Vec::with_capacity(stream.len());
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); stream.len()];
        let mut size_closed = 0usize;
        let mut deadline_closed = 0usize;
        let mut flushed = 0usize;
        let cache_lookup_s = self.config.cache_lookup_s;

        let mut run_batch = |batch: FormedBatch,
                             completions: &mut Vec<(f64, TenantId, usize)>,
                             cache: &mut ResultCache,
                             pending_feedback: &mut Vec<Feedback>,
                             engine_free_at: &mut f64,
                             engine_busy_s: &mut f64,
                             makespan_s: &mut f64,
                             latencies: &mut Vec<f64>,
                             tenant_latencies: &mut Vec<(TenantId, f64)>,
                             results: &mut Vec<Vec<Neighbor>>| {
            match batch.reason {
                CloseReason::Size => size_closed += 1,
                CloseReason::Deadline => deadline_closed += 1,
                CloseReason::Flush => flushed += 1,
            }
            // Batches are tenant-pure (the former never mixes tenants), so
            // the batch's options name the one tenant all feedback and the
            // admission release belong to.
            let tenant = batch.options.tenant;
            let indices: Vec<usize> = batch.members.iter().map(|m| m.stream_index).collect();
            let options: Vec<QueryOptions> = batch.members.iter().map(|m| m.options).collect();
            let queries = stream.batch.queries.gather(&indices);
            *next_request_id += 1;
            let request = SearchRequest::new(queries, options).with_id(*next_request_id);

            let start = batch.closed_at.max(*engine_free_at);
            let response = engine.execute(&request);
            let finish = start + response.seconds;
            *engine_free_at = finish;
            *engine_busy_s += response.seconds;
            *makespan_s = makespan_s.max(finish);
            completions.push((finish, tenant, batch.len()));
            // The time the closed batch sat behind a busy engine — the
            // saturation signal an adaptive policy steers by.
            pending_feedback.push(Feedback::Batch {
                at: finish,
                tenant,
                len: batch.len(),
                wait_s: start - batch.closed_at,
            });

            for (member, neighbors) in batch.members.iter().zip(response.results) {
                let latency = finish - member.arrival_s;
                latencies.push(latency);
                tenant_latencies.push((tenant, latency));
                pending_feedback.push(Feedback::Query {
                    at: finish,
                    tenant,
                    latency_s: latency,
                });
                cache.insert(
                    stream.batch.queries.vector(member.stream_index),
                    &member.options,
                    neighbors.clone(),
                    finish,
                );
                results[member.stream_index] = neighbors;
            }
        };

        let mut released_upto = 0usize;
        for (arrival, index) in stream.iter() {
            // Deliver every completion the clock has caught up with, let the
            // policy re-steer the close conditions (the default window plus
            // every known tenant's own), then close every batching deadline
            // that fires before this arrival.
            deliver_feedback(&mut pending_feedback, policy, arrival);
            former.set_config(policy.current());
            for &t in &tenants_seen {
                former.set_tenant_config(t, policy.current_for(t));
            }
            while let Some(deadline) = former.next_deadline() {
                if deadline > arrival {
                    break;
                }
                for batch in former.due(deadline) {
                    run_batch(
                        batch,
                        &mut completions,
                        &mut cache,
                        &mut pending_feedback,
                        &mut engine_free_at,
                        &mut engine_busy_s,
                        &mut makespan_s,
                        &mut latencies,
                        &mut tenant_latencies,
                        &mut results,
                    );
                }
            }

            // Free the waiting room of every batch finished by now (the
            // engine is serial, so finish times are non-decreasing).
            while released_upto < completions.len() && completions[released_upto].0 <= arrival {
                let (_, tenant, n) = completions[released_upto];
                queue.release(tenant, n);
                released_upto += 1;
            }

            let options = options_of(index);
            let tenant = options.tenant;
            if !tenants_seen.contains(&tenant) {
                tenants_seen.push(tenant);
                former.set_tenant_config(tenant, policy.current_for(tenant));
            }
            if let Some((cached, ready_at)) =
                cache.lookup(stream.batch.queries.vector(index), &options)
            {
                // A repeat arriving before the original answer is ready waits
                // for it; afterwards the hit costs only the lookup.
                let finish = arrival.max(ready_at) + cache_lookup_s;
                latencies.push(finish - arrival);
                tenant_latencies.push((tenant, finish - arrival));
                pending_feedback.push(Feedback::Query {
                    at: finish,
                    tenant,
                    latency_s: finish - arrival,
                });
                makespan_s = makespan_s.max(finish);
                results[index] = cached;
                continue;
            }
            if !queue.try_admit(tenant) {
                continue; // shed at the door, charged to this tenant
            }
            let pending = PendingQuery {
                arrival_s: arrival,
                stream_index: index,
                options,
            };
            if let Some(batch) = former.push(pending, arrival) {
                run_batch(
                    batch,
                    &mut completions,
                    &mut cache,
                    &mut pending_feedback,
                    &mut engine_free_at,
                    &mut engine_busy_s,
                    &mut makespan_s,
                    &mut latencies,
                    &mut tenant_latencies,
                    &mut results,
                );
            }
        }

        // Stream over: no more arrivals can join any open group, so flush
        // everything immediately instead of waiting out the deadlines.
        for batch in former.flush(stream.duration()) {
            run_batch(
                batch,
                &mut completions,
                &mut cache,
                &mut pending_feedback,
                &mut engine_free_at,
                &mut engine_busy_s,
                &mut makespan_s,
                &mut latencies,
                &mut tenant_latencies,
                &mut results,
            );
        }

        // Stream over: drain the remaining feedback (in completion order) so
        // the reported final controller state reflects every observation.
        deliver_feedback(&mut pending_feedback, policy, f64::INFINITY);

        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        // Per-tenant rows, in profile order (tenants the options closure
        // invented follow, in first-seen order).
        let tenants = tenants_seen
            .iter()
            .map(|&t| {
                let profile = stream.profile(t);
                let mut lats: Vec<f64> = tenant_latencies
                    .iter()
                    .filter(|(id, _)| *id == t)
                    .map(|(_, l)| *l)
                    .collect();
                lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                TenantReport {
                    id: t,
                    name: profile.map_or_else(|| t.to_string(), |p| p.name.clone()),
                    weight: profile.map_or(1, |p| p.weight),
                    // A profiled tenant is measured against its own SLO (or
                    // the explicit config override) — never against another
                    // tenant's target; see the field docs.
                    slo_p99_s: match profile {
                        Some(p) => p.slo_p99_s.or(self.config.slo_p99_s),
                        None => slo_p99_s,
                    },
                    completed: lats.len(),
                    shed: queue.shed_of(t) as usize,
                    latencies_s: lats,
                    final_batcher: self.policy.current_for(t),
                }
            })
            .collect();

        ServiceReport {
            engine: self.engine.name().to_string(),
            policy: self.policy.name().to_string(),
            slo_p99_s,
            controller_adjustments: self.policy.adjustments(),
            final_batcher: self.policy.current(),
            completed: latencies.len(),
            shed: queue.shed() as usize,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            size_closed_batches: size_closed,
            deadline_closed_batches: deadline_closed,
            flushed_batches: flushed,
            engine_busy_s,
            makespan_s,
            latencies_s: latencies,
            results,
            tenants,
        }
    }

    /// [`replay`](Self::replay) with one shared [`QueryOptions`] for the
    /// whole stream.
    pub fn replay_uniform(&mut self, stream: &QueryStream, options: QueryOptions) -> ServiceReport {
        self.replay(stream, |_| options)
    }

    /// [`replay`](Self::replay) driven entirely by the stream's own
    /// annotations: each query runs under its tenant's `(k, nprobe)` plan
    /// ([`option_plan`](QueryStream::option_plan)) tagged with its tenant
    /// ([`tenant_of`](QueryStream::tenant_of)) — the natural entry point for
    /// a [`MultiTenantSpec`](annkit::workload::MultiTenantSpec) stream.
    /// Queries without a plan entry fall back to the default options.
    pub fn replay_planned(&mut self, stream: &QueryStream) -> ServiceReport {
        self.replay(stream, |i| {
            let (k, nprobe) = stream
                .option_plan
                .get(i)
                .copied()
                .unwrap_or_else(|| (QueryOptions::default().k, QueryOptions::default().nprobe));
            QueryOptions::new(k, nprobe).with_tenant(stream.tenant(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
    use annkit::workload::StreamSpec;
    use baselines::cpu::CpuFaissEngine;
    use std::sync::OnceLock;

    fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
        static FIX: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
        FIX.get_or_init(|| {
            let dataset = SyntheticSpec::sift_like(1500)
                .with_clusters(12)
                .with_seed(31)
                .generate_with_meta();
            let index = IvfPqIndex::train(
                &dataset.vectors,
                &IvfPqParams::new(12, 16).with_train_size(600),
                3,
            );
            (dataset, index)
        })
    }

    fn stream(n: usize, qps: f64, repeats: f64) -> QueryStream {
        let (dataset, _) = fixture();
        StreamSpec::new(n, qps)
            .with_repeat_fraction(repeats)
            .generate(dataset)
    }

    #[test]
    fn replay_answers_every_query_or_sheds_it() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(200, 50_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report.latencies_s.len(), report.completed);
        assert!(report.batches() > 0);
        assert!(report.sustained_qps() > 0.0);
        assert!(report.makespan_s >= stream.duration() * 0.5);
        assert!(report.engine_busy_s > 0.0);
        // Latencies are sorted, so the percentiles are monotone.
        assert!(report.p50() <= report.p99());
        assert!(report.percentile(0.0) <= report.p50());
    }

    #[test]
    fn replay_results_match_direct_execution() {
        let (_, index) = fixture();
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                queue_capacity: 10_000,
                ..ServiceConfig::default()
            },
        );
        let stream = stream(60, 20_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(5, 6));
        assert_eq!(report.shed, 0);
        let mut engine = CpuFaissEngine::new(index);
        let direct = engine.search_batch(&stream.batch.queries, 6, 5);
        for (served, expected) in report.results.iter().zip(&direct.results) {
            assert_eq!(
                served.iter().map(|n| n.id).collect::<Vec<_>>(),
                expected.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(300, 50_000.0, 0.4);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.cache_hits > 0, "repeats must hit the cache");
        assert!(report.cache_hit_rate() > 0.05);
        // A cached answer equals the originally computed answer.
        assert_eq!(report.completed + report.shed, 300);
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        let (_, index) = fixture();
        let config = ServiceConfig {
            queue_capacity: 4,
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: 10.0, // deadlines never fire mid-stream
            },
            cache_capacity: 0,
            cache_lookup_s: 0.0,
            slo_p99_s: None,
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        let stream = stream(100, 1.0e9, 0.0); // everything arrives at once
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.shed > 0, "overload must shed");
        assert!(report.completed >= 4, "admitted queries still complete");
    }

    #[test]
    fn fully_shed_run_reports_total_slo_miss() {
        // The shed-accounting regression: a replay that sheds everything must
        // report a 100 % SLO miss fraction — shed queries received no answer,
        // which is the worst possible latency, not a free pass.
        let report = ServiceReport {
            engine: "test".to_string(),
            policy: "fixed".to_string(),
            slo_p99_s: Some(1.0),
            controller_adjustments: 0,
            final_batcher: BatchFormerConfig::default(),
            completed: 0,
            shed: 50,
            cache_hits: 0,
            cache_misses: 0,
            size_closed_batches: 0,
            deadline_closed_batches: 0,
            flushed_batches: 0,
            engine_busy_s: 0.0,
            makespan_s: 0.0,
            latencies_s: Vec::new(),
            results: Vec::new(),
            tenants: Vec::new(),
        };
        assert_eq!(report.slo_miss_fraction(), 1.0);
        assert!(!report.meets_slo());
        // Sheds count even without an explicit SLO target...
        let unslod = ServiceReport {
            slo_p99_s: None,
            ..report.clone()
        };
        assert_eq!(unslod.slo_miss_fraction(), 1.0);
        // ...though SLO attainment stays vacuous without a target.
        assert!(unslod.meets_slo());
    }

    #[test]
    fn shed_queries_count_as_slo_misses_in_a_replay() {
        let (dataset, index) = fixture();
        let config = ServiceConfig {
            queue_capacity: 4,
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: 10.0, // deadlines never fire mid-stream
            },
            cache_capacity: 0,
            cache_lookup_s: 0.0,
            slo_p99_s: None,
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        // Everything arrives at once with a generous SLO: admitted queries
        // complete comfortably, yet the report must still charge every shed.
        let stream = StreamSpec::new(100, 1.0e9)
            .with_slo_p99(1e9)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.shed > 0, "overload must shed");
        let expected = report.shed as f64 / (report.completed + report.shed) as f64;
        assert!((report.slo_miss_fraction() - expected).abs() < 1e-12);
        assert!(
            !report.meets_slo(),
            "shedding {} of {} queries cannot meet the SLO",
            report.shed,
            report.completed + report.shed
        );
    }

    #[test]
    fn slo_attainment_is_reported_from_the_stream_annotation() {
        let (dataset, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        // An impossibly tight SLO: everything misses.
        let tight = StreamSpec::new(150, 30_000.0)
            .with_slo_p99(1e-12)
            .generate(dataset);
        let report = service.replay_uniform(&tight, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, Some(1e-12));
        assert_eq!(report.policy, "fixed");
        assert!(!report.meets_slo());
        assert!(report.slo_miss_fraction() > 0.99);
        // An impossibly loose SLO: everything fits.
        let loose = StreamSpec::new(150, 30_000.0)
            .with_slo_p99(1e9)
            .generate(dataset);
        let report = service.replay_uniform(&loose, QueryOptions::new(10, 4));
        assert!(report.meets_slo());
        assert_eq!(report.slo_miss_fraction(), 0.0);
        // No SLO anywhere: attainment is vacuous.
        let plain = StreamSpec::new(150, 30_000.0).generate(dataset);
        let report = service.replay_uniform(&plain, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, None);
        assert!(report.meets_slo());
        assert_eq!(report.slo_miss_fraction(), 0.0);
    }

    #[test]
    fn service_config_slo_overrides_the_stream_annotation() {
        let (dataset, index) = fixture();
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                slo_p99_s: Some(2.0),
                ..ServiceConfig::default()
            },
        );
        let stream = StreamSpec::new(60, 30_000.0)
            .with_slo_p99(1e-12)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.slo_p99_s, Some(2.0));
    }

    #[test]
    fn adaptive_policy_steers_the_former_and_is_reported() {
        use crate::controller::SloController;
        let (dataset, index) = fixture();
        let slo = 5e-3;
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_policy(Box::new(SloController::for_slo(slo)));
        let initial = service.policy().current();
        let stream = StreamSpec::new(400, 20_000.0)
            .with_slo_p99(slo)
            .generate(dataset);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.policy, "adaptive-slo");
        assert_eq!(report.completed + report.shed, 400);
        assert!(
            report.controller_adjustments > 0,
            "the controller never moved"
        );
        assert!(
            report.final_batcher.max_delay_s != initial.max_delay_s
                || report.final_batcher.max_batch != initial.max_batch,
            "final close conditions should differ from the initial ones"
        );
        // The controller's answers equal the fixed policy's: batching shape
        // changes latency, never correctness.
        let mut fixed =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let fixed_report = fixed.replay_uniform(&stream, QueryOptions::new(10, 4));
        for (a, b) in report.results.iter().zip(&fixed_report.results) {
            if a.is_empty() || b.is_empty() {
                continue; // shed under one policy but not the other
            }
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_tenant_replay_reports_per_tenant_rows() {
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(TenantId(1), StreamSpec::new(60, 20_000.0).with_slo_p99(0.05))
                    .with_name("tight")
                    .with_weight(2)
                    .with_option_mix(vec![(10, 4)]),
            )
            .with_tenant(
                TenantSpec::new(TenantId(2), StreamSpec::new(140, 50_000.0).with_slo_p99(5.0))
                    .with_name("batchy")
                    .with_option_mix(vec![(10, 8), (20, 8)]),
            );
        let stream = spec.generate(dataset);
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let report = service.replay_planned(&stream);
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report.tenants.len(), 2);
        let t1 = report.tenant(TenantId(1)).expect("tight row");
        let t2 = report.tenant(TenantId(2)).expect("batchy row");
        assert_eq!((t1.name.as_str(), t1.weight), ("tight", 2));
        assert_eq!(t1.slo_p99_s, Some(0.05));
        assert_eq!(t2.slo_p99_s, Some(5.0));
        // Per-tenant conservation, and the rows add up to the aggregate.
        assert_eq!(t1.completed + t1.shed, 60);
        assert_eq!(t2.completed + t2.shed, 140);
        assert_eq!(t1.completed + t2.completed, report.completed);
        assert_eq!(t1.shed + t2.shed, report.shed);
        assert_eq!(t1.latencies_s.len(), t1.completed);
        // The aggregate SLO is the tightest tenant's.
        assert_eq!(report.slo_p99_s, Some(0.05));
        // Answer shape follows each tenant's own option plan.
        let mut seen = vec![0usize; stream.len()];
        for (i, r) in report.results.iter().enumerate() {
            seen[i] = r.len();
            if r.is_empty() {
                continue; // shed
            }
            let expected_k = stream.option_plan[i].0;
            assert_eq!(r.len(), expected_k);
        }
    }

    #[test]
    fn controller_bank_steers_tenant_windows_independently() {
        use crate::controller::ControllerBank;
        use annkit::workload::{MultiTenantSpec, TenantId, TenantSpec};
        let (dataset, index) = fixture();
        let tight_slo = 2e-3;
        let loose_slo = 10.0;
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(
                    TenantId(1),
                    StreamSpec::new(150, 30_000.0).with_slo_p99(tight_slo),
                )
                .with_option_mix(vec![(10, 4)]),
            )
            .with_tenant(
                TenantSpec::new(
                    TenantId(2),
                    StreamSpec::new(150, 30_000.0).with_slo_p99(loose_slo),
                )
                .with_option_mix(vec![(10, 8)]),
            );
        let stream = spec.generate(dataset);
        let bank = ControllerBank::for_profiles(
            &stream.tenant_profiles,
            BatchFormerConfig::default(),
        );
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default())
                .with_policy(Box::new(bank));
        let report = service.replay_planned(&stream);
        assert_eq!(report.policy, "adaptive-tenant");
        let t1 = report.tenant(TenantId(1)).expect("tight row");
        let t2 = report.tenant(TenantId(2)).expect("loose row");
        // Each tenant ends under a window derived from its own SLO: the
        // SLO-derived bounds alone separate them by orders of magnitude.
        assert!(
            t1.final_batcher.max_delay_s <= tight_slo / 2.0 + 1e-12,
            "tight tenant's window {} exceeds its SLO-derived cap",
            t1.final_batcher.max_delay_s
        );
        assert!(
            t2.final_batcher.max_delay_s >= loose_slo / 100.0,
            "loose tenant's window {} fell below its SLO-derived floor",
            t2.final_batcher.max_delay_s
        );
        assert!(t2.final_batcher.max_delay_s > t1.final_batcher.max_delay_s);
    }

    #[test]
    fn mixed_options_are_batched_separately_but_all_answered() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(120, 30_000.0, 0.0);
        let report = service.replay(&stream, |i| {
            if i % 2 == 0 {
                QueryOptions::new(5, 4)
            } else {
                QueryOptions::new(20, 8)
            }
        });
        assert_eq!(report.completed + report.shed, 120);
        for (i, r) in report.results.iter().enumerate() {
            if r.is_empty() {
                continue; // shed
            }
            assert_eq!(r.len(), if i % 2 == 0 { 5 } else { 20 });
        }
    }
}
