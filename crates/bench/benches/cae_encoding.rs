//! Criterion microbenchmark of Opt3's offline cost: ECG mining and the
//! co-occurrence-aware re-encoding of a cluster.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use upanns::cooccurrence::{mine_cluster_combos, MiningParams};
use upanns::encoding::CaeList;

fn bench_mining_and_encoding(c: &mut Criterion) {
    let data = SyntheticSpec::sift_like(6_000)
        .with_clusters(4)
        .with_cooccurrence(0.4)
        .with_seed(5)
        .generate();
    let index = IvfPqIndex::train(&data, &IvfPqParams::new(4, 16).with_train_size(2_000), 1);
    // The largest cluster's packed codes.
    let cluster = (0..index.nlist())
        .max_by_key(|&c| index.list(c).len())
        .unwrap();
    let packed = index.list(cluster).packed_codes().to_vec();
    let n_vectors = index.list(cluster).len() as u64;
    let params = MiningParams::default();

    let mut group = c.benchmark_group("cae_offline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_vectors));
    group.bench_with_input(
        BenchmarkId::new("mine_combos", n_vectors),
        &packed,
        |b, packed| {
            b.iter(|| std::hint::black_box(mine_cluster_combos(packed, 16, &params)));
        },
    );

    let combos = mine_cluster_combos(&packed, 16, &params);
    group.bench_with_input(
        BenchmarkId::new("encode_cluster", n_vectors),
        &packed,
        |b, packed| {
            b.iter(|| std::hint::black_box(CaeList::encode(packed, 16, &combos)));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_mining_and_encoding);
criterion_main!(benches);
