//! The DPU search kernel: LUT construction, combination sums, distance
//! calculation and pruned top-k, executed per (query, cluster) assignment.
//!
//! This is the code that would be the C "DPU program" on real UPMEM hardware.
//! Here it is ordinary Rust executed against [`pim_sim`]'s kernel context, so
//! it is both *functional* (it reads the actual encoded points resident in
//! MRAM and produces exact ADC results) and *costed* (every MRAM transfer,
//! WRAM access, add and multiply is charged to the cycle model, in parallel
//! regions that follow the Figure 6 barrier structure).

use crate::config::UpAnnsConfig;
use crate::cooccurrence::ComboTable;
use crate::encoding::CaeList;
use crate::scheduling::Assignment;
use crate::topk_prune::{merge_thread_local, MergeStats};
use crate::wram_layout::{WramPlan, WramPlanInput};
use annkit::lut::LookupTable;
use annkit::pq::ProductQuantizer;
use annkit::topk::{Neighbor, TopK};
use pim_sim::mram::MramAddr;
use pim_sim::tasklet::DpuKernelCtx;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// How a cluster replica's payload is laid out in MRAM.
#[derive(Debug, Clone)]
pub enum ListEncoding {
    /// Plain packed `u8` PQ codes, `m` bytes per vector (PIM-naive and
    /// CAE-disabled UpANNS).
    PlainU8,
    /// Co-occurrence aware `u16` direct-address stream. The host-side
    /// [`CaeList`] mirror is kept for record-boundary metadata and functional
    /// decoding; the byte stream itself is resident in MRAM.
    CaeU16(CaeList),
}

/// One cluster replica resident in a DPU's MRAM.
#[derive(Debug, Clone)]
pub struct ClusterReplica {
    /// Cluster id.
    pub cluster: usize,
    /// Number of vectors stored.
    pub num_vectors: usize,
    /// MRAM address of the id array (`num_vectors × u64` little-endian).
    pub ids_addr: MramAddr,
    /// MRAM address of the code payload.
    pub codes_addr: MramAddr,
    /// Bytes of the code payload.
    pub codes_bytes: usize,
    /// Payload encoding.
    pub encoding: ListEncoding,
}

/// Everything a DPU holds after the offline phase.
#[derive(Debug, Clone, Default)]
pub struct DpuStore {
    /// MRAM address of the (quantized) codebook staged for LUT construction.
    pub codebook_addr: MramAddr,
    /// Bytes of the staged codebook (`dim × 256` at 1 B per component).
    pub codebook_bytes: usize,
    /// Cluster replicas hosted by this DPU, keyed by cluster id.
    pub replicas: HashMap<usize, ClusterReplica>,
    /// MRAM address of the query/residual staging buffer.
    pub query_buffer_addr: MramAddr,
    /// Capacity in bytes of the query staging buffer.
    pub query_buffer_bytes: usize,
    /// MRAM address of the result mailbox.
    pub mailbox_addr: MramAddr,
    /// Capacity in bytes of the result mailbox.
    pub mailbox_bytes: usize,
}

/// Host-side state shared by all DPU kernel instances for one batch.
pub struct KernelShared<'a> {
    /// The trained product quantizer (for functional LUT construction).
    pub pq: &'a ProductQuantizer,
    /// Mined combination tables per cluster (empty map when CAE is off).
    pub combos: &'a HashMap<usize, ComboTable>,
    /// Engine configuration.
    pub config: &'a UpAnnsConfig,
    /// Requested top-k size.
    pub k: usize,
    /// SIMD backend for the functional ADC scan and top-k pre-filter.
    /// Answers are bitwise-identical across backends (annkit's equivalence
    /// contract), so this only affects host-side wall-clock speed — never
    /// the modeled DPU cost or the results. Engines pass
    /// [`annkit::simd::active()`]; benches pin one explicitly.
    pub scan_backend: annkit::simd::Backend,
}

/// The work of one DPU for one batch.
#[derive(Debug, Clone, Default)]
pub struct DpuBatchPlan {
    /// (query, cluster) assignments, in execution order.
    pub assignments: Vec<Assignment>,
    /// Residual (`q − centroid`) per assignment.
    pub residuals: Vec<Vec<f32>>,
    /// Distinct query indices handled by this DPU, in mailbox order.
    pub queries: Vec<usize>,
}

impl DpuBatchPlan {
    /// Whether this DPU has nothing to do this batch.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

/// Result of running the kernel on one DPU.
#[derive(Debug, Clone, Default)]
pub struct KernelOutput {
    /// Per-query partial top-k (local to this DPU), keyed by query index.
    pub partials: Vec<(usize, Vec<Neighbor>)>,
    /// Aggregated top-k merge statistics.
    pub merge_stats: MergeStats,
    /// Bytes written to the result mailbox.
    pub mailbox_bytes_written: usize,
    /// Candidate vectors scanned (at actual, unscaled, dataset scale).
    pub candidates_scanned: u64,
    /// LUT/partial-sum lookups performed (actual scale).
    pub lut_lookups: u64,
    /// MRAM code bytes streamed (actual scale).
    pub code_bytes_read: u64,
}

/// Size in bytes of one query's slot in the result mailbox.
pub fn mailbox_slot_bytes(k: usize) -> usize {
    4 + k * 12 // u32 query id + k × (u64 id, f32 distance)
}

/// Runs the UpANNS batch kernel on one DPU.
///
/// Follows the stage/barrier structure of Figure 6 for every assignment:
/// `lut_construction` → (barrier) → `combo_sum` → (barrier) →
/// `distance_calc` → (barrier) → `topk`, then a single `result_write` at the
/// end of the batch.
pub fn run_batch_kernel(
    ctx: &mut DpuKernelCtx<'_>,
    store: &DpuStore,
    plan: &DpuBatchPlan,
    shared: &KernelShared<'_>,
) -> KernelOutput {
    let mut output = KernelOutput::default();
    if plan.is_empty() {
        return output;
    }
    let config = shared.config;
    let m = shared.pq.m();
    let dsub = shared.pq.dsub();
    let dim = shared.pq.dim();
    let k = shared.k;
    let tasklets = config.tasklets;

    // Verify the WRAM reuse plan fits before doing anything (the layout of
    // Figure 6). The allocator peak is recorded in the DPU stats.
    let max_combos = plan
        .assignments
        .iter()
        .filter_map(|a| shared.combos.get(&a.cluster).map(|t| t.len()))
        .max()
        .unwrap_or(0);
    let read_bytes = kernel_read_bytes(config, m);
    let plan_input = WramPlanInput::new(dim, m, k, max_combos, tasklets, read_bytes);
    let wplan = WramPlan::plan(&plan_input)
        .unwrap_or_else(|e| panic!("DPU {}: WRAM layout does not fit: {e}", ctx.dpu_id()));

    // Per-query partial heaps, local to this DPU (held in the WRAM heap
    // region; co-located clusters of the same query merge here without any
    // host round-trip — insight 3 of §4.1.1).
    let mut query_heaps: BTreeMap<usize, TopK> = BTreeMap::new();

    for (a_idx, assignment) in plan.assignments.iter().enumerate() {
        let replica = store
            .replicas
            .get(&assignment.cluster)
            .unwrap_or_else(|| {
                panic!(
                    "DPU {} was assigned cluster {} it does not host",
                    ctx.dpu_id(),
                    assignment.cluster
                )
            });
        let residual = &plan.residuals[a_idx];
        let combos = shared.combos.get(&assignment.cluster);

        // ---- Stage 1: LUT construction (Barrier 0/1) --------------------
        ctx.wram().alloc("codebook", wplan.codebook_bytes).expect("planned");
        ctx.wram().alloc("lut", wplan.lut_bytes).expect("planned");
        let lut = LookupTable::build(shared.pq, residual);
        let codebook_addr = store.codebook_addr;
        let codebook_bytes = store.codebook_bytes;
        let query_buffer_addr = store.query_buffer_addr;
        ctx.parallel("lut_construction", tasklets, |t| {
            // Read this assignment's residual (q − c) from the staging buffer
            // (tasklet 0 only) and a slice of the codebook, then compute the
            // corresponding LUT entries.
            if t.tasklet_id == 0 {
                t.charge_dma((dim * 4).min(store.query_buffer_bytes.max(8)));
                let _ = query_buffer_addr; // staged by the host transfer
            }
            let share = codebook_bytes.div_ceil(tasklets);
            let offset = t.tasklet_id * share;
            if offset < codebook_bytes {
                let len = share.min(codebook_bytes - offset);
                let _ = t.mram_read(codebook_addr + offset, len);
            }
            let entries = (m * 256).div_ceil(tasklets) as u64;
            t.charge_arith(entries * dsub as u64 * 3, 0);
            t.charge_wram(entries);
        });
        ctx.wram().free("codebook").expect("allocated above");

        // ---- Stage 2: combination partial sums (Barrier 1/2) ------------
        let combo_sums: Vec<f32> = match combos {
            Some(table) if !table.is_empty() => {
                ctx.wram().alloc("combo_sums", wplan.combo_bytes.max(2)).expect("planned");
                let sums = table.partial_sums(&lut);
                let per_tasklet = table.len().div_ceil(tasklets) as u64;
                let avg_len = 3u64;
                ctx.parallel("combo_sum", tasklets, |t| {
                    t.charge_wram(per_tasklet * (avg_len + 1));
                    t.charge_arith(per_tasklet * avg_len, 0);
                });
                sums
            }
            _ => Vec::new(),
        };

        // ---- Stage 3: distance calculation (Barrier 2/3) ----------------
        //
        // The functional scan runs at the stored (reduced) scale so results
        // are exact, while the *charged* cost models the cluster at the
        // modeled scale (`num_vectors × work_scale`): the scaled vector
        // stream is split evenly across the tasklets and read from MRAM in
        // full `read_bytes` chunks, which is exactly what this loop does when
        // the cluster really is that large. Charging the reduced-scale loop
        // and multiplying it would instead project reduced-scale artifacts
        // (per-vector DMA setup latency, idle tasklets on ten-vector
        // clusters) onto the modeled system; see DESIGN.md's projection notes.
        for t in 0..tasklets {
            ctx.wram()
                .alloc(&format!("readbuf{t}"), read_bytes)
                .expect("planned");
            ctx.wram()
                .alloc(&format!("heap{t}"), wplan.heap_bytes)
                .expect("planned");
        }
        let n = replica.num_vectors;
        let per_tasklet_vectors = n.div_ceil(tasklets);
        let scaled_vectors = (n as f64 * config.work_scale).round().max(n as f64) as u64;
        // Even split of the modeled cluster across tasklets.
        let modeled_share = |tasklet_id: usize, total: u64| -> u64 {
            total / tasklets as u64 + u64::from((tasklet_id as u64) < total % tasklets as u64)
        };
        let locals: Vec<(TopK, u64, u64, u64)> =
            ctx.parallel("distance_calc", tasklets, |t| {
                let start = (t.tasklet_id * per_tasklet_vectors).min(n);
                let end = ((t.tasklet_id + 1) * per_tasklet_vectors).min(n);
                let mut heap = TopK::new(k);
                let mut lookups = 0u64;
                let mut bytes_read = 0u64;
                match &replica.encoding {
                    ListEncoding::PlainU8 => {
                        // Functional scan: fixed-size records, read
                        // `read_bytes` worth of codes at a time, then the
                        // vectorized ADC scan + batch top-k insert (bitwise
                        // equal to the per-record scalar sum on every
                        // backend). `read_bytes >= m` is guaranteed by
                        // `kernel_read_bytes`, so every chunk holds at least
                        // one whole record.
                        let mut dist_buf = Vec::new();
                        let mut v = start;
                        while v < end {
                            let chunk_vectors =
                                (((end - v) * m).min(read_bytes) / m).min(end - v);
                            let len = chunk_vectors * m;
                            let data = t
                                .mram_read_uncharged(replica.codes_addr + v * m, len)
                                .to_vec();
                            bytes_read += len as u64;
                            lut.adc_scan_with(shared.scan_backend, &data, &mut dist_buf);
                            heap.push_batch_with(shared.scan_backend, v as u64, &dist_buf);
                            lookups += len as u64;
                            v += chunk_vectors;
                        }
                        // Charged cost of this tasklet's modeled share:
                        // full-width DMA chunks; per element one WRAM load of
                        // the code byte, one add to form the LUT address
                        // (`pos·256 + code` — the position base lives in a
                        // register), one WRAM LUT load and one accumulate add;
                        // plus one heap threshold compare per record.
                        let share = modeled_share(t.tasklet_id, scaled_vectors);
                        let share_bytes = share * m as u64;
                        let full_chunks = share_bytes / read_bytes as u64;
                        let tail = (share_bytes % read_bytes as u64) as usize;
                        t.charge_dma_repeated(read_bytes, full_chunks);
                        t.charge_dma(tail);
                        t.charge_wram(share * m as u64 * 2);
                        t.charge_arith(share * (2 * m as u64 + 1), 0);
                    }
                    ListEncoding::CaeU16(cae) => {
                        // Functional scan: variable-length records decoded
                        // against LUT + combo sums.
                        let mut entries_actual = 0u64;
                        if start < end {
                            let (first_b, _) = cae.record_byte_range(start);
                            let (_, last_b) = cae.record_byte_range(end - 1);
                            let _ = t.mram_read_uncharged(
                                replica.codes_addr + first_b,
                                (last_b - first_b).max(2),
                            );
                            bytes_read += (last_b - first_b) as u64;
                            for v in start..end {
                                let sum = cae.adc_distance(v, &lut, &combo_sums);
                                let len = cae.record(v).len() as u64;
                                entries_actual += len;
                                heap.push(v as u64, sum);
                            }
                            lookups += entries_actual;
                        }
                        // Charged cost of this tasklet's modeled share of the
                        // co-occurrence-encoded stream: full-width DMA chunks
                        // over the scaled byte volume; per entry one WRAM load
                        // of the *direct address* (no address arithmetic —
                        // that is precisely what §4.3's re-encoding buys), one
                        // WRAM load of the unified LUT/combo-sum region and
                        // one accumulate add; plus one heap compare per record.
                        let scaled_bytes =
                            (cae.bytes() as f64 * config.work_scale).round().max(cae.bytes() as f64)
                                as u64;
                        let scaled_entries = (cae.total_entries() as f64 * config.work_scale)
                            .round()
                            .max(cae.total_entries() as f64)
                            as u64;
                        let share_records = modeled_share(t.tasklet_id, scaled_vectors);
                        let share_bytes = modeled_share(t.tasklet_id, scaled_bytes);
                        let share_entries = modeled_share(t.tasklet_id, scaled_entries);
                        let full_chunks = share_bytes / read_bytes as u64;
                        let tail = (share_bytes % read_bytes as u64) as usize;
                        t.charge_dma_repeated(read_bytes, full_chunks);
                        t.charge_dma(tail);
                        t.charge_wram(share_entries * 2);
                        t.charge_arith(share_entries + share_records, 0);
                    }
                }
                (heap, lookups, bytes_read, (end - start) as u64)
            });
        for t in 0..tasklets {
            ctx.wram().free(&format!("readbuf{t}")).expect("allocated");
            ctx.wram().free(&format!("heap{t}")).expect("allocated");
        }
        if !combo_sums.is_empty() {
            ctx.wram().free("combo_sums").expect("allocated");
        }
        ctx.wram().free("lut").expect("allocated");

        // ---- Stage 4: pruned top-k merge (Barrier 3) ---------------------
        let heaps: Vec<TopK> = locals.iter().map(|(h, _, _, _)| h.clone()).collect();
        for (_, lookups, bytes, scanned) in &locals {
            output.lut_lookups += lookups;
            output.code_bytes_read += bytes;
            output.candidates_scanned += scanned;
        }
        let (merged_local, stats) = merge_thread_local(&heaps, k, config.topk_pruning);
        ctx.sequential("topk", |t| {
            for _ in 0..stats.semaphore_ops {
                t.charge_semaphore();
            }
            t.charge_arith(stats.comparisons * 2, 0);
            let sift = (usize::BITS - k.leading_zeros()) as u64 + 1;
            t.charge_wram(stats.insertions * sift);
        });
        output.merge_stats.comparisons += stats.comparisons;
        output.merge_stats.insertions += stats.insertions;
        output.merge_stats.pruned += stats.pruned;
        output.merge_stats.semaphore_ops += stats.semaphore_ops;

        // Translate local vector indices into global ids (k MRAM reads of the
        // id array) and fold into the per-query heap.
        let ids_addr = replica.ids_addr;
        let resolved: Vec<Neighbor> = ctx.sequential("topk", |t| {
            merged_local
                .sorted()
                .iter()
                .map(|n| {
                    let raw = t.mram_read(ids_addr + (n.id as usize) * 8, 8);
                    let id = u64::from_le_bytes(raw.try_into().expect("8-byte id"));
                    Neighbor::new(id, n.distance)
                })
                .collect()
        });
        let entry = query_heaps
            .entry(assignment.query)
            .or_insert_with(|| TopK::new(k));
        for n in &resolved {
            entry.push(n.id, n.distance);
        }
    }

    // ---- Result write-back ------------------------------------------------
    let slot = mailbox_slot_bytes(k);
    let mut mailbox = Vec::with_capacity(plan.queries.len() * slot);
    for &q in &plan.queries {
        mailbox.extend_from_slice(&(q as u32).to_le_bytes());
        let sorted = query_heaps
            .get(&q)
            .map(|h| h.sorted())
            .unwrap_or_default();
        for i in 0..k {
            if let Some(n) = sorted.get(i) {
                mailbox.extend_from_slice(&n.id.to_le_bytes());
                mailbox.extend_from_slice(&n.distance.to_le_bytes());
            } else {
                mailbox.extend_from_slice(&u64::MAX.to_le_bytes());
                mailbox.extend_from_slice(&f32::INFINITY.to_le_bytes());
            }
        }
    }
    assert!(
        mailbox.len() <= store.mailbox_bytes,
        "DPU {} mailbox overflow: {} > {}",
        ctx.dpu_id(),
        mailbox.len(),
        store.mailbox_bytes
    );
    ctx.mram_write("result_write", store.mailbox_addr, &mailbox)
        .expect("mailbox region allocated by the builder");
    output.mailbox_bytes_written = mailbox.len();

    output.partials = query_heaps
        .into_iter()
        .map(|(q, h)| (q, h.into_sorted()))
        .collect();
    output
}

/// Parses a result mailbox produced by [`run_batch_kernel`].
pub fn parse_mailbox(bytes: &[u8], queries: usize, k: usize) -> Vec<(usize, Vec<Neighbor>)> {
    let slot = mailbox_slot_bytes(k);
    let mut out = Vec::with_capacity(queries);
    for qi in 0..queries {
        let base = qi * slot;
        if base + slot > bytes.len() {
            break;
        }
        let q = u32::from_le_bytes(bytes[base..base + 4].try_into().expect("4 bytes")) as usize;
        let mut neighbors = Vec::with_capacity(k);
        for i in 0..k {
            let off = base + 4 + i * 12;
            let id = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            let dist = f32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4 bytes"));
            if id != u64::MAX {
                neighbors.push(Neighbor::new(id, dist));
            }
        }
        out.push((q, neighbors));
    }
    out
}

/// MRAM read-buffer size (bytes per transfer) implied by the configuration
/// for codes of `m` bytes (plain) — CAE streams use the same buffer size.
///
/// Clamped to at least one whole record: if the configured buffer were
/// smaller than `m`, the scan's chunk computation would floor to zero
/// records and the loop would then issue an `m`-byte read that exceeds the
/// WRAM buffer it charges DMA for, silently under-charging every transfer.
/// Sizing the buffer (and its WRAM allocation and DMA charge) to `m`
/// instead keeps the functional read and the charged model consistent.
pub fn kernel_read_bytes(config: &UpAnnsConfig, m: usize) -> usize {
    config.mram_read_bytes(m).max(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooccurrence::{mine_cluster_combos, MiningParams};
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::SyntheticSpec;
    use annkit::vector::residual;
    use pim_sim::config::PimConfig;
    use pim_sim::prelude::PimSystem;
    use std::sync::OnceLock;

    struct Fixture {
        index: IvfPqIndex,
        data: annkit::vector::Dataset,
    }

    fn fixture() -> &'static Fixture {
        static FIX: OnceLock<Fixture> = OnceLock::new();
        FIX.get_or_init(|| {
            let data = SyntheticSpec::sift_like(1500)
                .with_clusters(8)
                .with_seed(33)
                .generate();
            let index =
                IvfPqIndex::train(&data, &IvfPqParams::new(8, 16).with_train_size(700), 3);
            Fixture { index, data }
        })
    }

    /// Builds a single-DPU store holding every cluster of the fixture index.
    fn build_store(
        sys: &mut PimSystem,
        index: &IvfPqIndex,
        cae: bool,
        k: usize,
        max_queries: usize,
    ) -> (DpuStore, HashMap<usize, ComboTable>) {
        let m = index.m();
        let mut store = DpuStore::default();
        let codebook = vec![1u8; index.dim() * 256];
        store.codebook_addr = sys.mram_alloc(0, codebook.len()).unwrap();
        store.codebook_bytes = codebook.len();
        sys.dpu_mut(0).mram_mut().write(store.codebook_addr, &codebook).unwrap();

        let mut combos = HashMap::new();
        for c in 0..index.nlist() {
            let list = index.list(c);
            if list.is_empty() {
                continue;
            }
            let mut ids_bytes = Vec::with_capacity(list.len() * 8);
            for &id in list.ids() {
                ids_bytes.extend_from_slice(&id.to_le_bytes());
            }
            let ids_addr = sys.mram_alloc(0, ids_bytes.len()).unwrap();
            sys.dpu_mut(0).mram_mut().write(ids_addr, &ids_bytes).unwrap();

            let (codes_bytes_vec, encoding) = if cae {
                let table = mine_cluster_combos(list.packed_codes(), m, &MiningParams::default());
                let cae_list = CaeList::encode(list.packed_codes(), m, &table);
                let bytes = cae_list.to_bytes();
                combos.insert(c, table);
                (bytes, ListEncoding::CaeU16(cae_list))
            } else {
                (list.packed_codes().to_vec(), ListEncoding::PlainU8)
            };
            let codes_addr = sys.mram_alloc(0, codes_bytes_vec.len()).unwrap();
            sys.dpu_mut(0)
                .mram_mut()
                .write(codes_addr, &codes_bytes_vec)
                .unwrap();
            store.replicas.insert(
                c,
                ClusterReplica {
                    cluster: c,
                    num_vectors: list.len(),
                    ids_addr,
                    codes_addr,
                    codes_bytes: codes_bytes_vec.len(),
                    encoding,
                },
            );
        }
        store.query_buffer_bytes = 4096;
        store.query_buffer_addr = sys.mram_alloc(0, store.query_buffer_bytes).unwrap();
        store.mailbox_bytes = max_queries * mailbox_slot_bytes(k);
        store.mailbox_addr = sys.mram_alloc(0, store.mailbox_bytes).unwrap();
        (store, combos)
    }

    fn plan_for_queries(
        index: &IvfPqIndex,
        data: &annkit::vector::Dataset,
        query_ids: &[usize],
        nprobe: usize,
    ) -> DpuBatchPlan {
        let mut plan = DpuBatchPlan::default();
        for (qi, &row) in query_ids.iter().enumerate() {
            let q = data.vector(row);
            for (c, _) in index.filter_clusters(q, nprobe) {
                plan.assignments.push(Assignment {
                    query: qi,
                    cluster: c,
                });
                plan.residuals
                    .push(residual(q, index.coarse().centroid(c)));
            }
            plan.queries.push(qi);
        }
        plan
    }

    fn run(
        cae: bool,
        config: UpAnnsConfig,
        nprobe: usize,
        k: usize,
    ) -> (Vec<(usize, Vec<Neighbor>)>, KernelOutput, f64) {
        let fix = fixture();
        let mut sys = PimSystem::new(PimConfig::with_dpus(1));
        let (store, combos) = build_store(&mut sys, &fix.index, cae, k, 4);
        let plan = plan_for_queries(&fix.index, &fix.data, &[5, 300, 900], nprobe);
        let shared = KernelShared {
            pq: fix.index.pq(),
            combos: &combos,
            config: &config,
            k,
            scan_backend: annkit::simd::active(),
        };
        let mut output = KernelOutput::default();
        let report = sys.execute("search", |ctx| {
            output = run_batch_kernel(ctx, &store, &plan, &shared);
        });
        (output.partials.clone(), output, report.max_dpu_seconds)
    }

    #[test]
    fn kernel_matches_reference_adc_search_plain() {
        let fix = fixture();
        let (partials, output, _) = run(false, UpAnnsConfig::pim_naive(), 8, 10);
        assert_eq!(partials.len(), 3);
        for (qi, row) in [5usize, 300, 900].iter().enumerate() {
            let reference = fix.index.search(fix.data.vector(*row), 8, 10);
            let got = &partials.iter().find(|(q, _)| *q == qi).unwrap().1;
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                reference.iter().map(|n| n.id).collect::<Vec<_>>(),
                "query {qi} mismatch"
            );
        }
        assert!(output.candidates_scanned > 0);
        assert!(output.code_bytes_read > 0);
        assert_eq!(output.lut_lookups, output.candidates_scanned * 16);
    }

    #[test]
    fn kernel_matches_reference_adc_search_with_cae() {
        let fix = fixture();
        let (partials, output, _) = run(true, UpAnnsConfig::upanns(), 8, 10);
        for (qi, row) in [5usize, 300, 900].iter().enumerate() {
            let reference = fix.index.search(fix.data.vector(*row), 8, 10);
            let got = &partials.iter().find(|(q, _)| *q == qi).unwrap().1;
            let ref_ids: Vec<u64> = reference.iter().map(|n| n.id).collect();
            let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
            // Distances are identical up to float rounding of the combo sums,
            // so the id sets must coincide.
            let overlap = got_ids.iter().filter(|id| ref_ids.contains(id)).count();
            assert!(overlap >= 9, "query {qi}: overlap {overlap}/10");
        }
        // CAE reduces LUT lookups below m per candidate.
        assert!(output.lut_lookups < output.candidates_scanned * 16);
        assert!(output.merge_stats.pruned > 0, "pruning should trigger");
    }

    #[test]
    fn mailbox_roundtrip_matches_partials() {
        let fix = fixture();
        let mut sys = PimSystem::new(PimConfig::with_dpus(1));
        let (store, combos) = build_store(&mut sys, &fix.index, false, 5, 4);
        let plan = plan_for_queries(&fix.index, &fix.data, &[10, 20], 4);
        let config = UpAnnsConfig::pim_naive();
        let shared = KernelShared {
            pq: fix.index.pq(),
            combos: &combos,
            config: &config,
            k: 5,
            scan_backend: annkit::simd::active(),
        };
        let mut output = KernelOutput::default();
        sys.execute("search", |ctx| {
            output = run_batch_kernel(ctx, &store, &plan, &shared);
        });
        let mailbox = sys
            .dpu(0)
            .mram()
            .read(store.mailbox_addr, output.mailbox_bytes_written)
            .unwrap();
        let parsed = parse_mailbox(mailbox, plan.queries.len(), 5);
        assert_eq!(parsed.len(), output.partials.len());
        for ((pq, pn), (oq, on)) in parsed.iter().zip(&output.partials) {
            assert_eq!(pq, oq);
            assert_eq!(
                pn.iter().map(|n| n.id).collect::<Vec<_>>(),
                on.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn more_tasklets_speed_up_the_kernel_until_11() {
        let mut times = Vec::new();
        for tasklets in [1usize, 4, 11, 16] {
            let config = UpAnnsConfig::pim_naive().with_tasklets(tasklets);
            let (_, _, seconds) = run(false, config, 4, 10);
            times.push(seconds);
        }
        assert!(times[0] > times[1], "1 tasklet should be slower than 4");
        assert!(times[1] > times[2], "4 tasklets should be slower than 11");
        // Beyond 11 the pipeline is saturated.
        let rel = (times[3] - times[2]).abs() / times[2];
        assert!(rel < 0.25, "11 vs 16 tasklets differ by {rel}");
    }

    #[test]
    fn work_scale_increases_simulated_time_not_results() {
        let base_cfg = UpAnnsConfig::pim_naive();
        let scaled_cfg = UpAnnsConfig::pim_naive().with_work_scale(200.0);
        let (res_a, _, t_a) = run(false, base_cfg, 4, 10);
        let (res_b, _, t_b) = run(false, scaled_cfg, 4, 10);
        assert!(t_b > 3.0 * t_a, "scaled {t_b} vs base {t_a}");
        for ((qa, na), (qb, nb)) in res_a.iter().zip(&res_b) {
            assert_eq!(qa, qb);
            assert_eq!(
                na.iter().map(|n| n.id).collect::<Vec<_>>(),
                nb.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn read_buffer_never_smaller_than_one_record() {
        // Regression: for m > the configured DMA ceiling, mram_read_bytes
        // returns a buffer smaller than one code; the scan's old `.max(1)`
        // fallback then read m bytes while charging DMA for read_bytes,
        // under-charging every transfer. kernel_read_bytes must clamp up to
        // a whole record so the functional read, the WRAM allocation, and
        // the DMA charge all agree.
        let config = UpAnnsConfig::pim_naive();
        for m in [8usize, 16, 100, 2048, 3000, 4096] {
            let rb = kernel_read_bytes(&config, m);
            assert!(rb >= m, "read buffer {rb} smaller than one {m}-byte code");
            // For record sizes within the DMA ceiling, the clamp is a no-op.
            if m <= 2048 {
                assert_eq!(rb, config.mram_read_bytes(m));
            }
        }
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let fix = fixture();
        let mut sys = PimSystem::new(PimConfig::with_dpus(1));
        let (store, combos) = build_store(&mut sys, &fix.index, false, 5, 2);
        let config = UpAnnsConfig::pim_naive();
        let shared = KernelShared {
            pq: fix.index.pq(),
            combos: &combos,
            config: &config,
            k: 5,
            scan_backend: annkit::simd::active(),
        };
        let mut output = KernelOutput::default();
        sys.execute("search", |ctx| {
            output = run_batch_kernel(ctx, &store, &DpuBatchPlan::default(), &shared);
        });
        assert!(output.partials.is_empty());
        assert_eq!(output.candidates_scanned, 0);
        assert_eq!(output.mailbox_bytes_written, 0);
    }
}
