//! The DPU cycle cost model.
//!
//! Calibration sources: the UPMEM user manual and the PrIM characterization
//! (Gómez-Luna et al., IEEE Access 2022), which the paper itself cites for
//! its bandwidth and latency numbers.

use crate::config::{DMA_ALIGN_BYTES, DMA_MAX_BYTES, DMA_MIN_BYTES};

/// Pipeline revisit interval: an instruction of a given tasklet can enter the
/// 14-stage pipeline at most once every this many cycles, because only the
/// last three stages overlap with the first two of the next instruction of
/// the *same* thread. With ≥ 11 active tasklets the pipeline is fully busy —
/// which is exactly why the paper finds QPS saturating at 11 tasklets
/// (Figure 13, §5.3.2).
pub const REVISIT_INTERVAL: u64 = 11;

/// Cycle costs of the operations kernels can charge.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of a simple ALU instruction (add/sub/compare/branch) in cycles.
    pub alu_cycles: u64,
    /// Cost of an integer multiplication. The DPU has no 32-bit hardware
    /// multiplier; a `mul` compiles to a shift/add loop of roughly this many
    /// cycles, which is why UpANNS's PIM-friendly encoding replaces
    /// `idx * 256 + code` with precomputed direct addresses (§4.3).
    pub mul_cycles: u64,
    /// Cost of a WRAM load or store (single-cycle scratchpad).
    pub wram_access_cycles: u64,
    /// Fixed setup latency of an MRAM↔WRAM DMA transfer in cycles.
    pub dma_base_cycles: u64,
    /// Additional DMA cycles per byte once the transfer is in the linear
    /// regime.
    pub dma_cycles_per_byte: f64,
    /// Transfer size (bytes) below which DMA latency is dominated by the
    /// fixed cost — the "flat" region of Figure 7.
    pub dma_flat_bytes: usize,
    /// Cycles charged per tasklet for a barrier crossing.
    pub barrier_cycles_per_tasklet: u64,
    /// Cycles charged for a semaphore take/give pair.
    pub semaphore_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alu_cycles: 1,
            mul_cycles: 32,
            wram_access_cycles: 1,
            dma_base_cycles: 77,
            dma_cycles_per_byte: 0.5,
            dma_flat_bytes: 256,
            barrier_cycles_per_tasklet: 32,
            semaphore_cycles: 16,
        }
    }
}

impl CostModel {
    /// Latency in cycles of a single MRAM↔WRAM DMA transfer of `bytes`
    /// (after alignment). Reproduces the shape of the paper's Figure 7: the
    /// latency "increases slowly as data size grows from 8 B to 256 B and
    /// increases almost linearly beyond 256 B".
    pub fn mram_transfer_cycles(&self, bytes: usize) -> u64 {
        let bytes = align_dma(bytes);
        if bytes <= self.dma_flat_bytes {
            // Sub-linear growth in the flat region: the fixed cost dominates
            // and per-byte cost is ~1/4 of the linear regime.
            self.dma_base_cycles + (bytes as f64 * self.dma_cycles_per_byte * 0.25).ceil() as u64
        } else {
            let flat = self.dma_flat_bytes as f64 * self.dma_cycles_per_byte * 0.25;
            let linear = (bytes - self.dma_flat_bytes) as f64 * self.dma_cycles_per_byte;
            self.dma_base_cycles + (flat + linear).ceil() as u64
        }
    }

    /// Effective MRAM bandwidth (bytes per cycle) achieved by back-to-back
    /// transfers of `bytes` each — a convenience for roofline sanity checks.
    pub fn mram_bandwidth_bytes_per_cycle(&self, bytes: usize) -> f64 {
        let bytes = align_dma(bytes);
        bytes as f64 / self.mram_transfer_cycles(bytes) as f64
    }

    /// Per-DPU region time in cycles given the per-tasklet issued instruction
    /// cycles of one parallel region.
    ///
    /// The fine-grained multithreading model: the DPU issues at most one
    /// instruction per cycle overall, and each tasklet can issue at most once
    /// per [`REVISIT_INTERVAL`] cycles. Hence
    /// `time ≈ max(Σᵢ cᵢ, REVISIT_INTERVAL · maxᵢ cᵢ)`: balanced work across
    /// ≥ 11 tasklets keeps the pipeline full, fewer (or imbalanced) tasklets
    /// leave bubbles.
    pub fn region_compute_cycles(&self, per_tasklet_cycles: &[u64]) -> u64 {
        let total: u64 = per_tasklet_cycles.iter().sum();
        let max = per_tasklet_cycles.iter().copied().max().unwrap_or(0);
        total.max(max.saturating_mul(REVISIT_INTERVAL))
    }
}

/// Rounds a DMA transfer size up to the hardware granularity and clamps it to
/// the legal `[8, 2048]` byte range.
pub fn align_dma(bytes: usize) -> usize {
    let aligned = bytes.max(DMA_MIN_BYTES).div_ceil(DMA_ALIGN_BYTES) * DMA_ALIGN_BYTES;
    aligned.min(DMA_MAX_BYTES)
}

/// Splits a logical transfer of `bytes` into the sequence of hardware DMA
/// transfers needed (each ≤ 2048 B), returning their sizes.
pub fn split_dma(bytes: usize) -> Vec<usize> {
    if bytes == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut remaining = bytes;
    while remaining > 0 {
        let chunk = remaining.min(DMA_MAX_BYTES);
        out.push(align_dma(chunk));
        remaining -= chunk;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_curve_is_flat_then_linear() {
        let cm = CostModel::default();
        let l8 = cm.mram_transfer_cycles(8);
        let l64 = cm.mram_transfer_cycles(64);
        let l256 = cm.mram_transfer_cycles(256);
        let l1024 = cm.mram_transfer_cycles(1024);
        let l2048 = cm.mram_transfer_cycles(2048);

        // Monotonic non-decreasing.
        assert!(l8 <= l64 && l64 <= l256 && l256 <= l1024 && l1024 <= l2048);
        // Flat region: 8 B -> 256 B grows by less than 2x.
        assert!((l256 as f64) < 2.0 * l8 as f64, "flat region too steep: {l8} -> {l256}");
        // Linear region: 256 B -> 2048 B grows much faster (at least 4x).
        assert!((l2048 as f64) > 4.0 * (l256 as f64), "linear region too flat: {l256} -> {l2048}");
    }

    #[test]
    fn bandwidth_improves_with_larger_transfers() {
        let cm = CostModel::default();
        assert!(
            cm.mram_bandwidth_bytes_per_cycle(1024) > 3.0 * cm.mram_bandwidth_bytes_per_cycle(16)
        );
    }

    #[test]
    fn region_model_saturates_at_revisit_interval() {
        let cm = CostModel::default();
        // 1000 total cycles of work split evenly across T tasklets.
        let total = 1_000u64;
        let time =
            |t: usize| cm.region_compute_cycles(&vec![total / t as u64; t]);
        // Speedup is linear-ish up to 11 tasklets...
        let t1 = time(1);
        let t4 = time(4);
        let t11 = time(11);
        let t16 = time(16);
        let t24 = time(24);
        assert!(t1 as f64 / t4 as f64 > 3.5);
        assert!(t1 as f64 / t11 as f64 > 9.0);
        // ...and saturates beyond 11.
        assert!((t16 as f64 - t11 as f64).abs() / (t11 as f64) < 0.15);
        assert!((t24 as f64 - t11 as f64).abs() / (t11 as f64) < 0.15);
    }

    #[test]
    fn imbalanced_regions_are_bounded_by_slowest_tasklet() {
        let cm = CostModel::default();
        let balanced = cm.region_compute_cycles(&[100, 100, 100, 100]);
        let imbalanced = cm.region_compute_cycles(&[370, 10, 10, 10]);
        assert!(imbalanced > balanced);
        assert_eq!(imbalanced, 370 * REVISIT_INTERVAL);
    }

    #[test]
    fn dma_alignment_and_splitting() {
        assert_eq!(align_dma(1), 8);
        assert_eq!(align_dma(8), 8);
        assert_eq!(align_dma(9), 16);
        assert_eq!(align_dma(5000), 2048);
        assert_eq!(split_dma(0), Vec::<usize>::new());
        assert_eq!(split_dma(100), vec![104]);
        assert_eq!(split_dma(5000), vec![2048, 2048, 904]);
    }

    #[test]
    fn empty_region_is_free() {
        let cm = CostModel::default();
        assert_eq!(cm.region_compute_cycles(&[]), 0);
    }
}
