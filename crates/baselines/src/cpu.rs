//! The Faiss-CPU-like baseline: functional IVFPQ with a dual-Xeon roofline
//! timing model.
//!
//! The paper's CPU platform is two Intel Xeon Silver 4110 (8 cores each,
//! 2.1 GHz, AVX-512-less Skylake-SP) with 85.3 GB/s of DRAM bandwidth
//! (Table 1). At billion scale the ADC distance-calculation stage streams
//! compressed codes from DRAM with an essentially random access pattern into
//! the per-cluster LUTs, so its throughput is a fraction of peak bandwidth —
//! this is the "CPUs become memory bandwidth-limited" observation the whole
//! paper is built on (Figure 1a / Figure 19: distance calculation is ~99.5 %
//! of CPU time).
//!
//! The model always applies the *billion-scale regime* (working set ≫ LLC).
//! A dedicated cache-aware variant used by the Figure 1 scale sweep exposes
//! the effective-bandwidth curve explicitly via
//! [`CpuSpec::effective_scan_bandwidth`].

use crate::engine::{execute_by_entry, execute_grouped, AnnEngine, SearchRequest, SearchResponse};
use crate::exec::run_ivfpq;
use crate::hardware::HardwareSpec;
use annkit::ivf::IvfPqIndex;
use annkit::mutation::{IndexSnapshot, SnapshotTimeline};
use annkit::vector::Dataset;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

/// Performance characteristics of the CPU platform.
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// Total physical cores (2 × 8 on the paper's platform).
    pub cores: usize,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Sustained f32 FLOPs per cycle per core for the dense kernels
    /// (cluster filtering / LUT construction are SIMD-friendly).
    pub flops_per_cycle: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// Fraction of peak bandwidth achieved by the ADC code scan at billion
    /// scale (random LUT accesses + short sequential code reads).
    pub scan_efficiency: f64,
    /// Multi-thread scaling efficiency of the compute-bound stages.
    pub parallel_efficiency: f64,
    /// Cycles per LUT lookup + accumulate in the scan inner loop.
    pub cycles_per_lookup: f64,
    /// Cycles per candidate offered to the top-k heap.
    pub cycles_per_topk_candidate: f64,
    /// Last-level cache size in bytes (2 × 11 MB); only used by the
    /// cache-aware effective-bandwidth curve for the Figure 1 sweep.
    pub llc_bytes: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self {
            cores: 16,
            freq_hz: 2.1e9,
            flops_per_cycle: 16.0,
            dram_bandwidth: 85.3e9,
            scan_efficiency: 0.28,
            parallel_efficiency: 0.75,
            cycles_per_lookup: 1.0,
            cycles_per_topk_candidate: 1.5,
            llc_bytes: 22.0 * 1024.0 * 1024.0,
        }
    }
}

impl CpuSpec {
    /// Aggregate compute throughput in FLOPs/s for SIMD-friendly stages.
    pub fn compute_flops(&self) -> f64 {
        self.cores as f64 * self.freq_hz * self.flops_per_cycle * self.parallel_efficiency
    }

    /// Aggregate scalar-ish throughput in cycles/s for the scan and top-k
    /// inner loops.
    pub fn scalar_cycles_per_second(&self) -> f64 {
        self.cores as f64 * self.freq_hz * self.parallel_efficiency
    }

    /// Effective bandwidth of the ADC scan when the per-query working set is
    /// `working_set_bytes`: close to LLC bandwidth when everything fits in
    /// cache (million-scale), degrading to `scan_efficiency × DRAM` when it
    /// does not (billion-scale). Used by the Figure 1 scale sweep.
    pub fn effective_scan_bandwidth(&self, working_set_bytes: f64) -> f64 {
        let dram = self.dram_bandwidth * self.scan_efficiency;
        let llc = self.dram_bandwidth * 3.0; // cache-resident scans are ~3× faster
        if working_set_bytes <= self.llc_bytes {
            llc
        } else {
            // Smooth transition: the cached fraction of the working set is
            // served at LLC speed, the rest at DRAM speed.
            let cached_fraction = self.llc_bytes / working_set_bytes;
            1.0 / (cached_fraction / llc + (1.0 - cached_fraction) / dram)
        }
    }
}

/// The Faiss-CPU-like engine: exact IVFPQ results, dual-Xeon timing.
///
/// Holds a [`SnapshotTimeline`] rather than a borrowed index: a frozen
/// timeline for the classic frozen-index case, or a live-mutation timeline
/// installed via [`AnnEngine::install_timeline`] — each request searches the
/// snapshot active at its dispatch time.
pub struct CpuFaissEngine {
    timeline: SnapshotTimeline,
    spec: CpuSpec,
    /// When `true` (default) the distance-calculation stage is modeled in the
    /// billion-scale (DRAM-bound) regime regardless of the actual reduced
    /// dataset size; when `false` the cache-aware curve is used.
    billion_scale_regime: bool,
    /// Work-scale factor: the timing model treats every stored vector as
    /// representing this many vectors of the modeled (billion-scale) dataset.
    /// Functional results are always computed at actual scale; only the
    /// per-candidate work counts are multiplied. See DESIGN.md's substitution
    /// table and EXPERIMENTS.md for the factors used per experiment.
    work_scale: f64,
}

impl CpuFaissEngine {
    /// Creates an engine over a trained index with the paper's CPU spec.
    pub fn new(index: &IvfPqIndex) -> Self {
        Self {
            timeline: SnapshotTimeline::frozen(index),
            spec: CpuSpec::default(),
            billion_scale_regime: true,
            work_scale: 1.0,
        }
    }

    /// Overrides the CPU spec (for sensitivity studies).
    pub fn with_spec(mut self, spec: CpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the work-scale factor used to project reduced-scale runs to the
    /// modeled dataset size (1.0 = no projection).
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0 && scale.is_finite(), "work scale must be >= 1");
        self.work_scale = scale;
        self
    }

    /// Selects between the billion-scale (DRAM-bound) regime and the
    /// cache-aware model (used by the Figure 1 sweep).
    pub fn with_billion_scale_regime(mut self, enabled: bool) -> Self {
        self.billion_scale_regime = enabled;
        self
    }

    /// The spec in use.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The snapshot this engine searches for requests at time 0 (the base
    /// index view when no timeline was installed).
    pub fn snapshot(&self) -> &IndexSnapshot {
        &self.timeline.entries()[0].1
    }

    /// Computes the stage timing for a given functional run. Exposed so the
    /// Figure 1 / Figure 19 harness can report breakdowns directly.
    pub fn stage_seconds(
        &self,
        stats: &crate::workload_stats::WorkloadStats,
    ) -> StageBreakdown {
        let spec = &self.spec;
        let index = self.snapshot();
        let dim = index.dim() as f64;
        let dsub = (index.dim() / index.m()) as f64;
        let scale = self.work_scale;
        let mut b = StageBreakdown::new();

        // Stage (a): cluster filtering — dense distance to all centroids.
        let filter_flops = stats.centroid_comparisons as f64 * dim * 2.0;
        let filter_bytes = stats.queries as f64 * index.nlist() as f64 * dim * 4.0;
        let t_filter = (filter_flops / spec.compute_flops())
            .max(filter_bytes / spec.dram_bandwidth);
        b.add("cluster_filtering", t_filter);

        // Stage (b): LUT construction — nprobe × m × 256 sub-distances/query.
        let lut_flops = stats.lut_entries as f64 * dsub * 3.0;
        b.add("lut_construction", lut_flops / spec.compute_flops());

        // Stage (c): distance calculation — the memory-bound ADC scan.
        // Per-candidate quantities are projected by the work-scale factor.
        let scan_bw = if self.billion_scale_regime {
            spec.dram_bandwidth * spec.scan_efficiency
        } else {
            let per_query_ws = if stats.queries > 0 {
                stats.code_bytes_read as f64 * scale / stats.queries as f64
            } else {
                0.0
            };
            spec.effective_scan_bandwidth(per_query_ws)
        };
        let t_mem = stats.code_bytes_read as f64 * scale / scan_bw;
        let t_compute = stats.lut_lookups as f64 * scale * spec.cycles_per_lookup
            / spec.scalar_cycles_per_second();
        b.add("distance_calc", t_mem.max(t_compute));

        // Stage (d): top-k selection — cheap on the CPU (heap in L1).
        let t_topk = stats.topk_candidates as f64 * scale * spec.cycles_per_topk_candidate
            / spec.scalar_cycles_per_second();
        b.add("topk", t_topk);

        b
    }

    /// One uniform sub-batch: functional IVFPQ search plus the roofline
    /// timing of the dual-Xeon platform.
    fn run_uniform(
        &mut self,
        snapshot: &IndexSnapshot,
        queries: &Dataset,
        nprobe: usize,
        k: usize,
    ) -> SearchResponse {
        let run = run_ivfpq(snapshot, queries, nprobe, k);
        let breakdown = self.stage_seconds(&run.stats);
        SearchResponse {
            request_id: 0,
            results: run.results,
            seconds: breakdown.total(),
            breakdown,
            stats: run.stats,
        }
    }
}

impl AnnEngine for CpuFaissEngine {
    fn name(&self) -> &str {
        "Faiss-CPU"
    }

    fn execute(&mut self, request: &SearchRequest) -> SearchResponse {
        let timeline = self.timeline.clone();
        execute_by_entry(&timeline, request, |entry, sub| {
            let snapshot = &timeline.entries()[entry].1;
            execute_grouped(sub, |queries, nprobe, k| {
                self.run_uniform(snapshot, queries, nprobe, k)
            })
        })
    }

    fn energy_model(&self) -> EnergyModel {
        HardwareSpec::cpu().energy_model()
    }

    fn install_timeline(&mut self, timeline: SnapshotTimeline) -> bool {
        self.timeline = timeline;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::IvfPqParams;
    use annkit::synthetic::SyntheticSpec;

    /// Compile-time Send audit: the threaded runtime (`upanns-runtime`)
    /// moves each engine worker into its own thread, so every engine must be
    /// `Send`. The engine owns its snapshot timeline (`Arc`s over plain
    /// data) plus owned scalars, so the bound holds structurally — this test
    /// pins it against future non-`Send` fields (`Rc`, `RefCell`, raw
    /// pointers).
    #[test]
    fn cpu_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CpuFaissEngine>();
    }

    fn engine_fixture() -> (IvfPqIndex, Dataset) {
        let data = SyntheticSpec::sift_like(2000)
            .with_clusters(16)
            .with_seed(11)
            .generate();
        let index = IvfPqIndex::train(&data, &IvfPqParams::new(16, 16).with_train_size(800), 5);
        (index, data)
    }

    #[test]
    fn distance_stage_dominates_at_billion_regime() {
        let (index, data) = engine_fixture();
        // Project the 2k-vector fixture to billion-scale per-query candidate
        // volumes so the stage shape of Figure 19 is visible.
        let mut engine = CpuFaissEngine::new(&index).with_work_scale(1e4);
        let queries = data.gather(&(0..50).collect::<Vec<_>>());
        let out = engine.search_batch(&queries, 8, 10);
        assert_eq!(out.batch_size(), 50);
        assert!(out.qps() > 0.0);
        // Figure 19: distance calculation is by far the largest CPU stage.
        let frac = out.breakdown.fraction("distance_calc");
        assert!(frac > 0.7, "distance_calc fraction {frac}");
        // Top-k is negligible on the CPU.
        assert!(out.breakdown.fraction("topk") < 0.1);
    }

    #[test]
    fn results_match_reference_index_search() {
        let (index, data) = engine_fixture();
        let mut engine = CpuFaissEngine::new(&index);
        let queries = data.gather(&[3, 77, 1234]);
        let out = engine.search_batch(&queries, 4, 5);
        let reference = index.search_batch(&queries, 4, 5);
        for (a, b) in out.results.iter().zip(&reference) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
        assert_eq!(engine.name(), "Faiss-CPU");
        assert_eq!(engine.energy_model().peak_watts, 190.0);
    }

    #[test]
    fn more_probes_cost_more_time() {
        let (index, data) = engine_fixture();
        let mut engine = CpuFaissEngine::new(&index);
        let queries = data.gather(&(0..20).collect::<Vec<_>>());
        let narrow = engine.search_batch(&queries, 2, 10);
        let wide = engine.search_batch(&queries, 12, 10);
        assert!(wide.seconds > narrow.seconds);
        assert!(wide.qps() < narrow.qps());
        assert!(wide.stats.candidates_scanned > narrow.stats.candidates_scanned);
    }

    #[test]
    fn cache_aware_bandwidth_degrades_with_working_set() {
        let spec = CpuSpec::default();
        let small = spec.effective_scan_bandwidth(1.0 * 1024.0 * 1024.0);
        let large = spec.effective_scan_bandwidth(16.0 * 1024.0 * 1024.0 * 1024.0);
        assert!(small > 4.0 * large, "small {small} vs large {large}");
        // The billion-scale value approaches scan_efficiency × DRAM.
        assert!((large - spec.dram_bandwidth * spec.scan_efficiency).abs() / large < 0.2);
    }

    #[test]
    fn cache_aware_mode_is_faster_at_small_scale() {
        let (index, data) = engine_fixture();
        let queries = data.gather(&(0..10).collect::<Vec<_>>());
        let mut billion = CpuFaissEngine::new(&index);
        let mut cached = CpuFaissEngine::new(&index).with_billion_scale_regime(false);
        let t_billion = billion.search_batch(&queries, 8, 10).seconds;
        let t_cached = cached.search_batch(&queries, 8, 10).seconds;
        assert!(t_cached < t_billion);
    }
}
