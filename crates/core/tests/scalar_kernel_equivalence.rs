//! Kernel-level proof that `run_batch_kernel` answers are unchanged by the
//! SIMD routing: this test binary pins the process-wide dispatcher to the
//! scalar fallback (integration tests are separate processes, so the pin
//! cannot leak into other suites), runs the PIM kernel both through the
//! dispatcher and with each backend pinned explicitly, and requires
//! identical ids and bitwise-identical distances everywhere — including
//! against the host-side `IvfPqIndex::search` reference.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::simd::{self, Backend};
use annkit::synthetic::SyntheticSpec;
use annkit::topk::Neighbor;
use annkit::vector::residual;
use pim_sim::config::PimConfig;
use pim_sim::prelude::PimSystem;
use std::collections::HashMap;
use upanns::config::UpAnnsConfig;
use upanns::kernel::{
    mailbox_slot_bytes, run_batch_kernel, ClusterReplica, DpuBatchPlan, DpuStore, KernelShared,
    ListEncoding,
};
use upanns::scheduling::Assignment;

fn run_kernel(backend: Backend, k: usize) -> Vec<(usize, Vec<Neighbor>)> {
    let data = SyntheticSpec::sift_like(1200)
        .with_clusters(8)
        .with_seed(19)
        .generate();
    let index = IvfPqIndex::train(&data, &IvfPqParams::new(8, 16).with_train_size(600), 3);

    let mut sys = PimSystem::new(PimConfig::with_dpus(1));
    let mut store = DpuStore::default();
    let codebook = vec![1u8; index.dim() * 256];
    store.codebook_addr = sys.mram_alloc(0, codebook.len()).unwrap();
    store.codebook_bytes = codebook.len();
    sys.dpu_mut(0)
        .mram_mut()
        .write(store.codebook_addr, &codebook)
        .unwrap();
    for c in 0..index.nlist() {
        let list = index.list(c);
        if list.is_empty() {
            continue;
        }
        let mut ids_bytes = Vec::with_capacity(list.len() * 8);
        for &id in list.ids() {
            ids_bytes.extend_from_slice(&id.to_le_bytes());
        }
        let ids_addr = sys.mram_alloc(0, ids_bytes.len()).unwrap();
        sys.dpu_mut(0).mram_mut().write(ids_addr, &ids_bytes).unwrap();
        let codes = list.packed_codes().to_vec();
        let codes_addr = sys.mram_alloc(0, codes.len()).unwrap();
        sys.dpu_mut(0).mram_mut().write(codes_addr, &codes).unwrap();
        store.replicas.insert(
            c,
            ClusterReplica {
                cluster: c,
                num_vectors: list.len(),
                ids_addr,
                codes_addr,
                codes_bytes: codes.len(),
                encoding: ListEncoding::PlainU8,
            },
        );
    }
    store.query_buffer_bytes = 4096;
    store.query_buffer_addr = sys.mram_alloc(0, store.query_buffer_bytes).unwrap();
    store.mailbox_bytes = 4 * mailbox_slot_bytes(k);
    store.mailbox_addr = sys.mram_alloc(0, store.mailbox_bytes).unwrap();

    let mut plan = DpuBatchPlan::default();
    for (qi, &row) in [7usize, 250, 800].iter().enumerate() {
        let q = data.vector(row);
        for (c, _) in index.filter_clusters(q, 8) {
            plan.assignments.push(Assignment { query: qi, cluster: c });
            plan.residuals.push(residual(q, index.coarse().centroid(c)));
        }
        plan.queries.push(qi);
    }

    let config = UpAnnsConfig::pim_naive();
    let combos = HashMap::new();
    let shared = KernelShared {
        pq: index.pq(),
        combos: &combos,
        config: &config,
        k,
        scan_backend: backend,
    };
    let mut partials = Vec::new();
    sys.execute("search", |ctx| {
        partials = run_batch_kernel(ctx, &store, &plan, &shared).partials;
    });

    // The host-side reference must agree on ids for every query too (the
    // kernel scans exactly the probed clusters).
    for (qi, &row) in [7usize, 250, 800].iter().enumerate() {
        let reference = index.search(data.vector(row), 8, k);
        let got = &partials.iter().find(|(q, _)| *q == qi).unwrap().1;
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            reference.iter().map(|n| n.id).collect::<Vec<_>>(),
            "query {qi} disagrees with host reference on {backend:?}"
        );
    }
    partials
}

#[test]
fn kernel_answers_identical_across_backends_and_dispatch() {
    // Pin this process's dispatcher to the fallback before anything else
    // resolves it: the engines and the host reference index now run on the
    // scalar path even on AVX2 hardware.
    assert!(
        simd::force_backend(Backend::Scalar),
        "dispatch was resolved before the test could pin it"
    );
    assert_eq!(simd::active(), Backend::Scalar);

    let scalar = run_kernel(Backend::Scalar, 10);
    let vectorized = run_kernel(simd::detect(), 10);
    assert_eq!(scalar.len(), vectorized.len());
    for ((qa, na), (qb, nb)) in scalar.iter().zip(&vectorized) {
        assert_eq!(qa, qb);
        assert_eq!(na.len(), nb.len());
        for (a, b) in na.iter().zip(nb) {
            assert_eq!(a.id, b.id, "query {qa}: SIMD routing changed an id");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "query {qa}: SIMD routing changed a distance bit pattern"
            );
        }
    }
}
