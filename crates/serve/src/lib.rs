//! # upanns-serve — the online serving front-end
//!
//! The engines in this workspace answer one
//! [`SearchRequest`](baselines::engine::SearchRequest) at a time; a
//! production deployment faces a *stream* of heterogeneous single queries
//! instead (the paper's framing of the online phase: RAG and recommendation
//! traffic with per-query parameters and latency expectations). This crate
//! builds the layer between the two:
//!
//! ```text
//!   QueryStream ──► AdmissionQueue ──► BatchFormer ──► EngineScheduler ──► AnnEngine::execute
//!     (timed, tenant-  (bounded,          (tenant-pure     (size-capped        │
//!      tagged          weighted-fair       groups close     chunks, SLO-       ▼
//!      arrivals)       DRR shedding)       on size or       urgency order   ResultCache
//!                            ▲             per-tenant       or whole-batch (LRU over exact
//!                            │             deadline)        close order)    query + options)
//!                     BatchPolicy / SloController / ControllerBank
//!                     (per-arrival window + chunk-cap steering from causal feedback)
//! ```
//!
//! * [`admission::AdmissionQueue`] — a bounded waiting room; arrivals beyond
//!   capacity are shed instead of growing the tail latency without bound.
//!   Capacity is shared **weighted-fair** across tenants: freed room returns
//!   to backlogged tenants by deficit round robin, so a heavy tenant cannot
//!   push a light one out of the service entirely.
//! * [`batcher::BatchFormer`] — dynamic batching: queries with compatible
//!   [`QueryOptions`](baselines::engine::QueryOptions) accumulate in an open
//!   group that closes when it reaches `max_batch` **or** when the oldest
//!   member has waited `max_delay_s`. Groups are tenant-pure, and each
//!   tenant may run its own close conditions.
//! * [`controller::BatchPolicy`] — the source of the former's close
//!   conditions: the static [`controller::FixedPolicy`]; the closed-loop
//!   [`controller::SloController`] (AIMD on the replay clock) that widens the
//!   batching window while the observed p99 holds a latency SLO — recovering
//!   the large-batch throughput the PIM engines need without giving up the
//!   tail-latency target; or the [`controller::ControllerBank`] holding one
//!   `SloController` per tenant, so a tight-SLO tenant's narrow window and a
//!   batch-hungry tenant's wide one coexist on one engine.
//! * [`dispatch::EngineScheduler`] — the stage between the former and the
//!   serial engine: formed batches queue as (optionally size-capped) chunks
//!   and dispatch earliest-SLO-deadline-first, so a tight-SLO tenant's
//!   batch waits at most one chunk of a bulk co-tenant's work instead of
//!   the whole batch — engine-level head-of-line isolation that window-level
//!   (per-tenant close conditions) isolation cannot provide.
//! * [`cache::ResultCache`] — an LRU of exact (query, options) → neighbors
//!   entries; repeated questions (common in RAG streams) bypass the engine.
//! * [`service::SearchService`] — ties the pieces together and replays an
//!   [`annkit::workload::QueryStream`] against the simulated clock, reporting
//!   sustained QPS, latency percentiles and shed-aware SLO attainment per
//!   engine, per policy, and per tenant ([`service::TenantReport`]).
//!
//! The `serve` binary replays a fixed tiny-scale stream through five engines
//! (Faiss-CPU, Faiss-GPU, PIM-naive, UpANNS, and a sharded multi-host UpANNS
//! deployment) under both the fixed and the adaptive policy, runs the
//! committed two-tenant scenario (`--tenants` to replace it), and can emit
//! the committed `BENCH_serving.json` regression baseline.
//!
//! # Example: a two-tenant replay
//!
//! ```
//! use annkit::ivf::{IvfPqIndex, IvfPqParams};
//! use annkit::synthetic::SyntheticSpec;
//! use annkit::workload::{MultiTenantSpec, StreamSpec, TenantId, TenantSpec};
//! use baselines::cpu::CpuFaissEngine;
//! use upanns_serve::controller::ControllerBank;
//! use upanns_serve::batcher::BatchFormerConfig;
//! use upanns_serve::{SearchService, ServiceConfig};
//!
//! // A small corpus and index (tiny so the doctest stays fast).
//! let dataset = SyntheticSpec::sift_like(600)
//!     .with_clusters(8)
//!     .with_seed(3)
//!     .generate_with_meta();
//! let index = IvfPqIndex::train(
//!     &dataset.vectors,
//!     &IvfPqParams::new(8, 16).with_train_size(300),
//!     2,
//! );
//!
//! // Two tenants: interactive traffic with a tight SLO, bulk traffic
//! // with a loose one and twice the rate.
//! let stream = MultiTenantSpec::new()
//!     .with_tenant(
//!         TenantSpec::new(TenantId(1), StreamSpec::new(40, 2_000.0).with_slo_p99(0.05))
//!             .with_name("interactive")
//!             .with_weight(2)
//!             .with_option_mix(vec![(10, 4)]),
//!     )
//!     .with_tenant(
//!         TenantSpec::new(TenantId(2), StreamSpec::new(80, 4_000.0).with_slo_p99(5.0))
//!             .with_name("bulk")
//!             .with_option_mix(vec![(10, 8), (20, 8)]),
//!     )
//!     .generate(&dataset);
//!
//! // One SloController per tenant, each targeting that tenant's own SLO.
//! let bank = ControllerBank::for_profiles(&stream.tenant_profiles, BatchFormerConfig::default());
//! let mut service = SearchService::new(CpuFaissEngine::new(&index), ServiceConfig::default())
//!     .with_policy(Box::new(bank));
//!
//! let report = service.replay_planned(&stream);
//! assert_eq!(report.completed + report.shed, 120);
//! for tenant in &report.tenants {
//!     println!(
//!         "{}: p99 {:.2} ms, miss {:.1}%",
//!         tenant.name,
//!         tenant.p99() * 1e3,
//!         tenant.slo_miss_fraction() * 100.0,
//!     );
//! }
//! ```

#![forbid(unsafe_code)]

pub mod admission;
pub mod autoscale;
pub mod batcher;
pub mod cache;
pub mod controller;
pub mod dispatch;
pub mod envelope;
pub mod service;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::admission::AdmissionQueue;
    pub use crate::autoscale::{Autoscaler, CapacityModel};
    pub use crate::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
    pub use crate::envelope::RecoveryEnvelope;
    pub use crate::cache::ResultCache;
    pub use crate::controller::{
        BatchPolicy, ControllerBank, FixedPolicy, SloController, SloControllerConfig,
    };
    pub use crate::dispatch::{ChunkQueue, DispatchOrder, EngineScheduler, QueuedChunk};
    pub use crate::service::{SearchService, ServiceConfig, ServiceReport, TenantReport};
    pub use annkit::workload::{MultiTenantSpec, TenantId, TenantProfile, TenantSpec};
}

pub use autoscale::{Autoscaler, CapacityModel};
pub use controller::{BatchPolicy, ControllerBank, FixedPolicy, SloController, SloControllerConfig};
pub use envelope::RecoveryEnvelope;
pub use service::{SearchService, ServiceConfig, ServiceReport, SloTable, TenantReport};
