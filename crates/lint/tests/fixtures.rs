//! Fixture-driven end-to-end tests for `upanns-lint`.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace mirroring
//! the real layout (rules are path-scoped, so `crates/serve/src/...`
//! placement matters). The workspace walker skips directories named
//! `fixtures`, which is what keeps these deliberate violations out of the
//! real `--workspace` run.

use std::path::{Path, PathBuf};
use std::process::Command;

use upanns_lint::{lint_root, LintReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_root(&fixture(name)).expect("fixture tree lints without I/O errors")
}

fn rules_hit(report: &LintReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn wall_clock_bad_flagged_good_clean() {
    assert!(rules_hit(&lint("wall_clock/bad")).contains(&"no-wall-clock"));
    // The good tree includes an allowlisted vendored-criterion file that
    // reads the wall clock legitimately.
    assert!(lint("wall_clock/good").is_clean());
}

#[test]
fn wall_clock_scope_bad_flagged_good_clean() {
    // The good tree reads `Instant` from `crates/runtime/` (library and
    // binary), which the prefix-scoped allowlist admits wholesale; the bad
    // tree reads it from a lookalike `runtime.rs` under `crates/serve/`,
    // which stays banned.
    assert!(lint("wall_clock_scope/good").is_clean());
    assert!(rules_hit(&lint("wall_clock_scope/bad")).contains(&"no-wall-clock"));
}

#[test]
fn ambient_rng_bad_flagged_good_clean() {
    assert!(rules_hit(&lint("ambient_rng/bad")).contains(&"no-ambient-rng"));
    assert!(lint("ambient_rng/good").is_clean());
}

#[test]
fn unordered_iteration_bad_flagged_good_clean() {
    let report = lint("unordered_iter/bad");
    assert!(rules_hit(&report).contains(&"no-unordered-iteration"));
    // The rule's scope covers the serving layer AND the live-index mutation
    // module — both fixture files must be flagged.
    let files: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "no-unordered-iteration")
        .map(|v| v.file.as_str())
        .collect();
    assert!(files.iter().any(|f| f.contains("crates/serve/")), "{files:?}");
    assert!(
        files.iter().any(|f| f.contains("crates/annkit/src/mutation.rs")),
        "{files:?}"
    );
    assert!(lint("unordered_iter/good").is_clean());
}

#[test]
fn vendor_api_bad_flagged_good_clean() {
    let report = lint("vendor_api/bad");
    let vendor: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "vendor-api-surface")
        .collect();
    // Both the `use` import and the qualified expression path are caught.
    assert!(vendor.len() >= 2, "{vendor:?}");
    assert!(lint("vendor_api/good").is_clean());
}

#[test]
fn unwrap_hot_path_bad_flagged_good_clean() {
    assert!(rules_hit(&lint("unwrap_hot_path/bad")).contains(&"no-unwrap-in-hot-path"));
    assert!(lint("unwrap_hot_path/good").is_clean());
}

#[test]
fn unsafe_outside_simd_bad_flagged_good_clean() {
    // The bad tree hides `unsafe` in a serve-side "fast path"; the good
    // tree keeps it in the one sanctioned module path.
    assert!(rules_hit(&lint("unsafe_outside_simd/bad")).contains(&"no-unsafe-outside-simd"));
    assert!(lint("unsafe_outside_simd/good").is_clean());
}

#[test]
fn reasoned_directive_silences_the_violation() {
    let report = lint("directive_silenced");
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn unused_directive_is_reported() {
    let report = lint("directive_unused");
    assert_eq!(rules_hit(&report), vec!["directive"]);
    assert!(report.violations[0].message.contains("unused"));
}

#[test]
fn malformed_directive_is_reported() {
    let report = lint("directive_malformed");
    assert_eq!(rules_hit(&report), vec!["directive"]);
    assert!(report.violations[0].message.contains("malformed"));
}

#[test]
fn violations_are_sorted_and_located() {
    let report = lint("wall_clock/bad");
    let mut sorted = report.violations.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(report.violations, sorted);
    for v in &report.violations {
        assert!(v.line > 0);
        assert!(v.file.starts_with("crates/"), "{}", v.file);
    }
}

// ---------------------------------------------------------------------------
// Binary-level tests (exit codes and `--json` shape)
// ---------------------------------------------------------------------------

fn run_binary(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_upanns-lint"))
        .args(args)
        .output()
        .expect("binary runs");
    (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn seeded_violation_exits_nonzero() {
    for bad in [
        "wall_clock/bad",
        "wall_clock_scope/bad",
        "ambient_rng/bad",
        "unordered_iter/bad",
        "vendor_api/bad",
        "unwrap_hot_path/bad",
        "unsafe_outside_simd/bad",
    ] {
        let root = fixture(bad);
        let (code, _) = run_binary(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(code, Some(1), "expected exit 1 for {bad}");
    }
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture("wall_clock/good");
    let (code, stdout) = run_binary(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn usage_error_exits_two() {
    let (code, _) = run_binary(&["--no-such-flag"]);
    assert_eq!(code, Some(2));
}

#[test]
fn json_output_shape() {
    let root = fixture("unwrap_hot_path/bad");
    let (code, stdout) = run_binary(&["--root", root.to_str().expect("utf-8 path"), "--json"]);
    assert_eq!(code, Some(1));
    assert!(
        stdout.starts_with("{\"schema\":\"upanns-lint/v1\",\"files_checked\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"rule\":\"no-unwrap-in-hot-path\""), "{stdout}");
    assert!(stdout.contains("\"file\":\"crates/serve/src/dispatch.rs\""), "{stdout}");
    assert!(stdout.contains("\"line\":4"), "{stdout}");
    assert!(stdout.trim_end().ends_with("]}"), "{stdout}");
}

/// The real workspace must lint clean — the same check CI runs, enforced
/// here too so `cargo test` alone catches a regression.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_root(&root).expect("workspace lints");
    assert!(report.files_checked > 50, "walked {} files", report.files_checked);
    assert!(report.is_clean(), "{}", report.render_human());
}
