//! Property-based twin-equivalence tests: the threaded pipeline in
//! **logical-trace mode** must produce exactly the same answer map
//! (`query_id -> result ids`, in stream order) as the single-threaded
//! [`SearchService::replay`] — across engines, worker counts, tenant mixes,
//! repeat fractions, batch caps, and both dispatch disciplines.
//!
//! This is the twin contract the CI byte-diff enforces on one fixed
//! configuration, generalized by proptest over the configuration space. The
//! argument for why it *should* hold: every answer is a pure function of
//! (query vector, k, nprobe, index), so batching, chunking, worker count
//! and scheduling order can change *when* a query is answered but never
//! *what* the answer is — provided nothing is shed, which logical mode
//! guarantees by widening admission to the stream (and the replay side is
//! given the same widened queue here).

use std::sync::OnceLock;

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
use annkit::topk::Neighbor;
use annkit::workload::{
    MultiTenantSpec, MutationSpec, QueryStream, StreamSpec, TenantId, TenantSpec, WorkloadSpec,
};
use baselines::cpu::CpuFaissEngine;
use baselines::engine::{AnnEngine, QueryOptions};
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use proptest::prelude::*;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::compaction::{plan_live_index, CompactionPolicy};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;
use upanns::multihost::{shard_ranges, InterconnectModel};
use upanns::replica::{FaultEvent, FaultSchedule, ReplicatedMultiHost};
use upanns_runtime::{run_pipeline, RuntimeConfig};
use upanns_serve::service::ServiceConfig;
use upanns_serve::{FixedPolicy, SearchService};

/// One shared small fixture: index training dominates the test's cost, so
/// every proptest case reuses it (the *stream* varies per case, the corpus
/// does not need to).
fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
    static FIXTURE: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = SyntheticSpec::sift_like(800)
            .with_clusters(8)
            .with_seed(41)
            .generate_with_meta();
        let index = IvfPqIndex::train(&data.vectors, &IvfPqParams::new(24, 8), 3);
        (data, index)
    })
}

/// The same corpus split into three shards with globally unique ids, for
/// the replicated fault-injection twin property.
fn sharded_fixture() -> &'static Vec<IvfPqIndex> {
    static SHARDS: OnceLock<Vec<IvfPqIndex>> = OnceLock::new();
    SHARDS.get_or_init(|| {
        let (data, _) = fixture();
        shard_ranges(data.vectors.len(), 3)
            .iter()
            .map(|r| {
                let rows: Vec<usize> = r.clone().collect();
                let shard = data.vectors.gather(&rows);
                let mut index =
                    IvfPqIndex::train_empty(&shard, &IvfPqParams::new(8, 8).with_train_size(260), 2);
                index.add(&shard, r.start as u64);
                index
            })
            .collect()
    })
}

/// A small PIM-backed engine (the paper's); kept tiny so building one per
/// worker per case stays cheap.
fn build_upanns(index: &IvfPqIndex, data: &SyntheticDataset) -> UpAnnsEngine {
    UpAnnsBuilder::new(index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(500.0))
        .with_pim_config(PimConfig::with_dpus(64))
        .with_history(&data.vectors, 8)
        .with_batch_capacity(BatchCapacity {
            batch_size: 64,
            nprobe: 8,
            max_k: 20,
        })
        .build()
}

/// The per-query options both sides resolve identically: the stream's
/// planned (k, nprobe) tier when one exists, tagged with the query's tenant.
fn planned(stream: &QueryStream, i: usize) -> QueryOptions {
    let (k, nprobe) = stream
        .option_plan
        .get(i)
        .copied()
        .unwrap_or_else(|| (QueryOptions::default().k, QueryOptions::default().nprobe));
    QueryOptions::new(k, nprobe).with_tenant(stream.tenant(i))
}

/// Projects per-query results down to the id map the contract is stated
/// over (distances are a function of the ids, but ids are what callers act
/// on and what the CI byte-diff serializes).
fn answer_ids(results: &[Vec<Neighbor>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The generalized twin contract (see the module docs).
    #[test]
    fn logical_twin_matches_replay(
        engine_kind in 0usize..3,
        workers in 1usize..=3,
        n in 20usize..60,
        seed in 0u64..1_000,
        repeat_bit in 0u8..2,
        two_tenants_bit in 0u8..2,
        max_batch in 2usize..32,
        chunked_bit in 0u8..2,
    ) {
        let repeat = if repeat_bit == 1 { 0.3 } else { 0.0 };
        let two_tenants = two_tenants_bit == 1;
        let chunked = chunked_bit == 1;
        let (data, index) = fixture();
        let stream = if two_tenants {
            MultiTenantSpec::new()
                .with_tenant(
                    TenantSpec::new(
                        TenantId(1),
                        StreamSpec::new(n, 900.0)
                            .with_workload(WorkloadSpec::new(n).with_seed(seed))
                            .with_repeat_fraction(repeat)
                            .with_slo_p99(0.5),
                    )
                    .with_name("tight")
                    .with_weight(2)
                    .with_option_mix(vec![(10, 8)]),
                )
                .with_tenant(
                    TenantSpec::new(
                        TenantId(2),
                        StreamSpec::new(2 * n, 1_800.0)
                            .with_workload(WorkloadSpec::new(2 * n).with_seed(seed ^ 0x5bd1))
                            .with_repeat_fraction(repeat),
                    )
                    .with_name("bulk")
                    .with_option_mix(vec![(10, 4), (20, 8)]),
                )
                .generate(data)
        } else {
            StreamSpec::new(n, 1_200.0)
                .with_workload(WorkloadSpec::new(n).with_seed(seed))
                .with_repeat_fraction(repeat)
                .generate(data)
        };

        let mut config = ServiceConfig::default();
        // Neither side may shed: a total answer map is part of the contract.
        config.queue_capacity = config.queue_capacity.max(stream.len());
        config.batcher.max_batch = max_batch;
        if chunked {
            config.max_chunk = Some(4);
        }

        macro_rules! compare {
            ($build:expr) => {{
                let replay_results = {
                    let mut service = SearchService::new($build, config);
                    service.replay(&stream, |i| planned(&stream, i)).results
                };
                let engines: Vec<_> = (0..workers).map(|_| $build).collect();
                let report = run_pipeline(
                    engines,
                    &stream,
                    |i| planned(&stream, i),
                    Box::new(FixedPolicy(config.batcher)),
                    RuntimeConfig::logical(config),
                );
                prop_assert!(report.is_conserving(), "twin run lost or duplicated queries");
                prop_assert_eq!(report.shed, 0, "logical mode is shed-proof");
                (replay_results, report.results)
            }};
        }

        let (replay_results, twin_results) = match engine_kind {
            0 => compare!(CpuFaissEngine::new(index)),
            1 => compare!(GpuFaissEngine::new(index)),
            _ => compare!(build_upanns(index, data)),
        };

        prop_assert_eq!(replay_results.len(), stream.len());
        prop_assert_eq!(
            answer_ids(&replay_results),
            answer_ids(&twin_results),
            "threaded logical-trace answers diverged from the replay \
             (engine_kind={}, workers={}, chunked={})",
            engine_kind,
            workers,
            chunked
        );
    }

    /// The twin contract survives live index mutation: with a random
    /// upsert/delete schedule planned into a snapshot timeline (including
    /// skew-triggered compaction windows), the threaded logical pipeline
    /// answers identically to the replay and conserves every query. Both
    /// sides resolve the serving snapshot at the batch close time and stamp
    /// cache entries with that snapshot's epoch, so batching, chunking and
    /// worker count still cannot change *what* is answered — only *when*.
    #[test]
    fn mutating_stream_twin_matches_replay(
        engine_kind in 0usize..3,
        workers in 1usize..=3,
        n in 20usize..50,
        seed in 0u64..1_000,
        upsert_qps in 5.0f64..60.0,
        delete_qps in 0.0f64..30.0,
        max_batch in 2usize..16,
        chunked_bit in 0u8..2,
    ) {
        let (data, index) = fixture();
        let stream = StreamSpec::new(n, 600.0)
            .with_workload(WorkloadSpec::new(n).with_seed(seed))
            .with_repeat_fraction(0.3)
            .generate(data);
        // Mutations arrive throughout the query stream; the planner turns
        // them into the epoch-snapshot timeline both runtimes serve from.
        let mutations = MutationSpec::new(stream.duration())
            .with_tenant(TenantId(1), upsert_qps, delete_qps)
            .with_seed(seed ^ 0xA5A5)
            .generate(data, index.ntotal());
        let plan = plan_live_index(
            index,
            &mutations,
            (stream.duration() / 8.0).max(1e-6),
            &CompactionPolicy::default(),
        );

        let mut config = ServiceConfig::default();
        config.queue_capacity = config.queue_capacity.max(stream.len());
        config.batcher.max_batch = max_batch;
        if chunked_bit == 1 {
            config.max_chunk = Some(4);
        }

        macro_rules! compare_live {
            ($build:expr) => {{
                let replay = {
                    let (mut service, accepted) =
                        SearchService::new($build, config).with_live_index(&plan.timeline);
                    prop_assert!(accepted, "single-index engines accept timelines");
                    service.replay(&stream, |i| planned(&stream, i))
                };
                let engines: Vec<_> = (0..workers)
                    .map(|_| {
                        let mut engine = $build;
                        prop_assert!(engine.install_timeline(plan.timeline.clone()));
                        engine
                    })
                    .collect();
                let report = run_pipeline(
                    engines,
                    &stream,
                    |i| planned(&stream, i),
                    Box::new(FixedPolicy(config.batcher)),
                    RuntimeConfig::logical(config)
                        .with_epoch_schedule(plan.timeline.epoch_schedule()),
                );
                prop_assert!(report.is_conserving(), "mutating twin lost or duplicated queries");
                prop_assert_eq!(report.shed, 0, "logical mode is shed-proof under mutation");
                prop_assert_eq!(report.completed, stream.len());
                (replay, report)
            }};
        }

        let (replay, report) = match engine_kind {
            0 => compare_live!(CpuFaissEngine::new(index)),
            1 => compare_live!(GpuFaissEngine::new(index)),
            _ => compare_live!(build_upanns(index, data)),
        };

        prop_assert_eq!(replay.results.len(), stream.len());
        prop_assert_eq!(
            answer_ids(&replay.results),
            answer_ids(&report.results),
            "mutating stream diverged between replay and twin \
             (engine_kind={}, workers={}, epochs={})",
            engine_kind,
            workers,
            plan.final_epoch
        );
        // Hit/miss/invalidation *counts* are deliberately not compared:
        // the pipeline drains cache inserts asynchronously, so whether a
        // repeat hits is thread-timing dependent — which is exactly why
        // answers are made hit-independent (per-arrival snapshot
        // resolution + exact-epoch cache stamping) instead.
    }

    /// The twin contract survives fault injection: a replicated deployment
    /// under a random outage schedule answers identically in the replay and
    /// the threaded logical pipeline — fault membership is a pure function
    /// of the batch close time, which both runtimes stamp on the request —
    /// and the pipeline conserves every query (nothing lost, duplicated, or
    /// shed) while hosts die and return mid-stream.
    #[test]
    fn faulted_replicated_twin_conserves_and_matches(
        workers in 1usize..=3,
        n in 30usize..80,
        seed in 0u64..1_000,
        replicas in 1usize..=3,
        down_host in 0usize..3,
        down_at in 0.0f64..0.2,
        outage_s in 0.01f64..0.3,
        hedge_bit in 0u8..2,
        max_batch in 2usize..16,
    ) {
        let (data, _) = fixture();
        let shards = sharded_fixture();
        let faults = FaultSchedule::new(vec![FaultEvent {
            host: down_host,
            down_at,
            up_at: down_at + outage_s,
        }]);
        let build = || {
            let engines: Vec<UpAnnsEngine> = shards.iter().map(|ix| {
                UpAnnsBuilder::new(ix)
                    .with_config(UpAnnsConfig::upanns().with_work_scale(500.0))
                    .with_pim_config(PimConfig::with_dpus(48))
                    .with_batch_capacity(BatchCapacity {
                        batch_size: 32,
                        nprobe: 8,
                        max_k: 20,
                    })
                    .build()
            }).collect();
            let engine = ReplicatedMultiHost::new(engines, 3, replicas, InterconnectModel::default())
                .expect("3 hosts cover any replica factor up to 3")
                .with_faults(faults.clone());
            if hedge_bit == 1 {
                engine.with_hedge_budget(0.05)
            } else {
                engine
            }
        };
        // ~200 qps keeps the stream long enough (0.15-0.4 s) that the drawn
        // outage windows actually overlap the arrivals.
        let stream = StreamSpec::new(n, 200.0)
            .with_workload(WorkloadSpec::new(n).with_seed(seed))
            .generate(data);

        let mut config = ServiceConfig::default();
        config.queue_capacity = config.queue_capacity.max(stream.len());
        config.batcher.max_batch = max_batch;

        let replay_results = {
            let mut service = SearchService::new(build(), config);
            service.replay(&stream, |i| planned(&stream, i)).results
        };
        let report = run_pipeline(
            (0..workers).map(|_| build()).collect(),
            &stream,
            |i| planned(&stream, i),
            Box::new(FixedPolicy(config.batcher)),
            RuntimeConfig::logical(config),
        );
        prop_assert!(report.is_conserving(), "faulted twin lost or duplicated queries");
        prop_assert_eq!(report.shed, 0, "logical mode is shed-proof under faults");
        prop_assert_eq!(report.completed, stream.len());
        prop_assert_eq!(
            answer_ids(&replay_results),
            answer_ids(&report.results),
            "fault injection diverged between replay and twin \
             (workers={}, replicas={}, outage {}..{})",
            workers,
            replicas,
            down_at,
            down_at + outage_s
        );
    }
}
