//! Brute-force exact nearest-neighbor search.
//!
//! Used to compute ground truth for recall measurements (the paper evaluates
//! against the datasets' published ground truth; at our synthetic scale the
//! exact answer is cheap to compute directly).

use crate::distance::Metric;
use crate::topk::{Neighbor, TopK};
use crate::vector::Dataset;

/// An exact (flat) index that scans every vector for every query.
#[derive(Debug, Clone)]
pub struct FlatIndex<'a> {
    data: &'a Dataset,
    metric: Metric,
}

impl<'a> FlatIndex<'a> {
    /// Creates an exact L2 index over `data` (no copies are made).
    pub fn new(data: &'a Dataset) -> Self {
        Self {
            data,
            metric: Metric::L2,
        }
    }

    /// Creates an exact index with an explicit metric.
    pub fn with_metric(data: &'a Dataset, metric: Metric) -> Self {
        Self { data, metric }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the exact `k` nearest neighbors of `query`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut topk = TopK::new(k);
        for (i, v) in self.data.iter().enumerate() {
            topk.push(i as u64, self.metric.distance(query, v));
        }
        topk.into_sorted()
    }

    /// Exact search for a batch of queries.
    pub fn search_batch(&self, queries: &Dataset, k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }

    /// Returns only the ids of the exact top-k (the usual ground-truth
    /// format).
    pub fn ground_truth(&self, queries: &Dataset, k: usize) -> Vec<Vec<u64>> {
        self.search_batch(queries, k)
            .into_iter()
            .map(|r| r.into_iter().map(|n| n.id).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Dataset::from_rows(&(0..10).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>())
    }

    #[test]
    fn finds_exact_neighbors_in_order() {
        let ds = grid();
        let idx = FlatIndex::new(&ds);
        let res = idx.search(&[3.2, 0.0], 3);
        let ids: Vec<u64> = res.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 4, 2]);
        assert!(res[0].distance < res[1].distance);
    }

    #[test]
    fn batch_and_ground_truth_agree() {
        let ds = grid();
        let idx = FlatIndex::new(&ds);
        let queries = Dataset::from_rows(&[vec![0.0, 0.0], vec![9.0, 0.0]]);
        let batch = idx.search_batch(&queries, 2);
        let gt = idx.ground_truth(&queries, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(gt[0], vec![0, 1]);
        assert_eq!(gt[1], vec![9, 8]);
        assert_eq!(idx.len(), 10);
        assert!(!idx.is_empty());
    }

    #[test]
    fn inner_product_metric_prefers_aligned_vectors() {
        let ds = Dataset::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 0.0]]);
        let idx = FlatIndex::with_metric(&ds, Metric::InnerProduct);
        let res = idx.search(&[1.0, 0.0], 1);
        assert_eq!(res[0].id, 2); // largest inner product
    }
}
