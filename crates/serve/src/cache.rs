//! The result cache: an LRU over exact (query, options) pairs.
//!
//! RAG and recommendation streams re-ask popular questions, so a small
//! serving-side cache short-circuits the engine entirely for repeats. The
//! key is the query's exact float bits plus the options that shaped the
//! answer (`k`, `nprobe`): a repeat with a different `k` must miss, because
//! its neighbor list would differ.
//!
//! Under live index mutation, entries also carry the **epoch** of the
//! snapshot that computed them. A lookup passes the epoch current at the
//! query's arrival; an entry computed under an older epoch is removed and
//! counted as **invalidated** — neither a hit (the answer may be stale) nor
//! a plain miss (the cache did its job; the index moved underneath it).
//! Frozen-index callers use the epoch-0 wrappers and behave bit-identically
//! to the pre-mutation cache.

use annkit::topk::Neighbor;
use baselines::engine::QueryOptions;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    query_bits: Vec<u32>,
    k: usize,
    nprobe: usize,
}

impl CacheKey {
    fn new(query: &[f32], options: &QueryOptions) -> Self {
        Self {
            query_bits: query.iter().map(|x| x.to_bits()).collect(),
            k: options.k,
            nprobe: options.nprobe,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    neighbors: Vec<Neighbor>,
    /// Simulated time the answer became available (a repeat arriving earlier
    /// must wait for it — no time-travel hits).
    ready_at: f64,
    /// Index epoch the answer was computed under (0 for a frozen index).
    epoch: u64,
    last_used: u64,
}

/// A least-recently-used cache of query results with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Looks up a query's cached neighbors against a frozen (epoch-0) index.
    /// Equivalent to [`lookup_at_epoch`](Self::lookup_at_epoch) with epoch 0.
    pub fn lookup(&mut self, query: &[f32], options: &QueryOptions) -> Option<(Vec<Neighbor>, f64)> {
        self.lookup_at_epoch(query, options, 0)
    }

    /// Looks up a query's cached neighbors, counting a hit or a miss and
    /// refreshing the entry's recency on a hit. A hit returns the neighbors
    /// together with the simulated time the answer became available.
    ///
    /// `current_epoch` is the index epoch active at the query's arrival: an
    /// entry computed under an older epoch is removed and counted as
    /// **invalidated** — neither a hit nor a plain miss — and the caller
    /// recomputes against the fresh snapshot.
    pub fn lookup_at_epoch(
        &mut self,
        query: &[f32],
        options: &QueryOptions,
        current_epoch: u64,
    ) -> Option<(Vec<Neighbor>, f64)> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.clock += 1;
        let key = CacheKey::new(query, options);
        match self.entries.get_mut(&key) {
            Some(entry) if entry.epoch < current_epoch => {
                self.entries.remove(&key);
                self.invalidated += 1;
                None
            }
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some((entry.neighbors.clone(), entry.ready_at))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a frozen-index (epoch-0) answer. Equivalent to
    /// [`insert_at_epoch`](Self::insert_at_epoch) with epoch 0.
    pub fn insert(
        &mut self,
        query: &[f32],
        options: &QueryOptions,
        neighbors: Vec<Neighbor>,
        ready_at: f64,
    ) {
        self.insert_at_epoch(query, options, neighbors, ready_at, 0);
    }

    /// Stores a query's neighbors (available from simulated time `ready_at`,
    /// computed under index epoch `epoch`), evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert_at_epoch(
        &mut self,
        query: &[f32],
        options: &QueryOptions,
        neighbors: Vec<Neighbor>,
        ready_at: f64,
        epoch: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let key = CacheKey::new(query, options);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Scanning the map in hash order is safe here: `last_used` ticks
            // are unique per entry, so the minimum is unique and the scan
            // order cannot affect which key wins.
            // lint: allow(unordered-iter, reason = "min over unique last_used ticks is order-independent")
            let lru = self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            if let Some(lru) = lru {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                neighbors,
                ready_at,
                epoch,
                last_used: self.clock,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups that found an entry computed under an older epoch than the
    /// query's arrival epoch — the entry was dropped and the answer
    /// recomputed. Neither hits nor misses; always 0 on a frozen index.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// The epoch active at time `t` under an `(activation, epoch)` schedule
    /// (see [`SnapshotTimeline::epoch_schedule`]): the entry with the largest
    /// activation `<= t`, or 0 for an empty (frozen-index) schedule. Shared
    /// by the replay front-end and the threaded runtime's admission stage so
    /// both stamp and invalidate identically.
    ///
    /// [`SnapshotTimeline::epoch_schedule`]: annkit::mutation::SnapshotTimeline::epoch_schedule
    pub fn epoch_at(schedule: &[(f64, u64)], t: f64) -> u64 {
        let idx = schedule.partition_point(|(when, _)| *when <= t);
        idx.checked_sub(1).map_or(0, |i| schedule[i].1)
    }

    /// Hits / lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(k: usize, nprobe: usize) -> QueryOptions {
        QueryOptions::new(k, nprobe)
    }

    fn hit(id: u64) -> Vec<Neighbor> {
        vec![Neighbor::new(id, 0.5)]
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32, 2.0];
        assert!(cache.lookup(&q, &opts(10, 8)).is_none());
        cache.insert(&q, &opts(10, 8), hit(7), 0.5);
        let (found, ready_at) = cache.lookup(&q, &opts(10, 8)).expect("cached");
        assert_eq!(found[0].id, 7);
        assert_eq!(ready_at, 0.5);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_options_are_different_entries() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32, 2.0];
        cache.insert(&q, &opts(10, 8), hit(1), 0.0);
        assert!(cache.lookup(&q, &opts(20, 8)).is_none(), "k differs");
        assert!(cache.lookup(&q, &opts(10, 4)).is_none(), "nprobe differs");
        assert!(cache.lookup(&q, &opts(10, 8)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        let (a, b, c) = ([1.0f32], [2.0f32], [3.0f32]);
        cache.insert(&a, &opts(10, 8), hit(1), 0.0);
        cache.insert(&b, &opts(10, 8), hit(2), 0.0);
        // Touch `a`, making `b` the LRU entry.
        assert!(cache.lookup(&a, &opts(10, 8)).is_some());
        cache.insert(&c, &opts(10, 8), hit(3), 0.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a, &opts(10, 8)).is_some(), "a survived");
        assert!(cache.lookup(&b, &opts(10, 8)).is_none(), "b was evicted");
        assert!(cache.lookup(&c, &opts(10, 8)).is_some(), "c is resident");
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        let (a, b) = ([1.0f32], [2.0f32]);
        cache.insert(&a, &opts(10, 8), hit(1), 0.0);
        cache.insert(&b, &opts(10, 8), hit(2), 0.0);
        cache.insert(&a, &opts(10, 8), hit(9), 1.0); // refresh, not eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&a, &opts(10, 8)).unwrap().0[0].id, 9);
        assert!(cache.lookup(&b, &opts(10, 8)).is_some());
    }

    #[test]
    fn stale_epoch_entries_are_invalidated_not_missed() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32, 2.0];
        cache.insert_at_epoch(&q, &opts(10, 8), hit(7), 0.5, 3);
        // Same-epoch and older-epoch arrivals hit.
        assert!(cache.lookup_at_epoch(&q, &opts(10, 8), 3).is_some());
        // A newer-epoch arrival invalidates: the entry is removed and the
        // rejection is counted separately from hits and misses.
        assert!(cache.lookup_at_epoch(&q, &opts(10, 8), 4).is_none());
        assert_eq!(cache.invalidated(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        assert!(cache.is_empty(), "the stale entry was dropped");
        // The next lookup of the same key is a plain miss.
        assert!(cache.lookup_at_epoch(&q, &opts(10, 8), 4).is_none());
        assert_eq!((cache.hits(), cache.misses(), cache.invalidated()), (1, 1, 1));
        // A re-inserted fresh answer hits again.
        cache.insert_at_epoch(&q, &opts(10, 8), hit(9), 1.0, 4);
        assert_eq!(cache.lookup_at_epoch(&q, &opts(10, 8), 4).unwrap().0[0].id, 9);
    }

    #[test]
    fn epoch_schedule_resolution() {
        // Empty schedule = frozen index: epoch 0 forever.
        assert_eq!(ResultCache::epoch_at(&[], 5.0), 0);
        let schedule = [(f64::NEG_INFINITY, 0), (2.0, 3), (4.0, 7)];
        assert_eq!(ResultCache::epoch_at(&schedule, 0.0), 0);
        assert_eq!(ResultCache::epoch_at(&schedule, 2.0), 3);
        assert_eq!(ResultCache::epoch_at(&schedule, 3.9), 3);
        assert_eq!(ResultCache::epoch_at(&schedule, 100.0), 7);
    }

    #[test]
    fn epoch_zero_wrappers_never_invalidate() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32];
        cache.insert(&q, &opts(10, 8), hit(1), 0.0);
        assert!(cache.lookup(&q, &opts(10, 8)).is_some());
        assert_eq!(cache.invalidated(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        let q = [1.0f32];
        cache.insert(&q, &opts(10, 8), hit(1), 0.0);
        assert!(cache.lookup(&q, &opts(10, 8)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }
}
