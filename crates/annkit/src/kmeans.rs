//! Lloyd's k-means with k-means++ initialization.
//!
//! Both the IVF coarse quantizer (|C| clusters over raw vectors) and each PQ
//! sub-quantizer (256 centroids over sub-vectors) are trained with this
//! implementation, mirroring Faiss's `Clustering` object.

use crate::distance::{l2_squared, nearest_centroid};
use crate::vector::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters controlling k-means training.
#[derive(Debug, Clone)]
pub struct KMeansParams {
    /// Number of centroids to produce.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Relative improvement in mean squared error below which training stops
    /// early.
    pub tolerance: f32,
    /// Optional cap on the number of training points (points are sampled
    /// uniformly when the dataset is larger), matching Faiss's
    /// `max_points_per_centroid` behaviour for billion-scale training.
    pub max_training_points: Option<usize>,
}

impl KMeansParams {
    /// Reasonable defaults for `k` centroids: 25 iterations, 1e-4 tolerance,
    /// at most 256 training points per centroid.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 25,
            tolerance: 1e-4,
            max_training_points: Some(k.saturating_mul(256)),
        }
    }

    /// Overrides the iteration cap.
    pub fn with_max_iterations(mut self, it: usize) -> Self {
        self.max_iterations = it;
        self
    }

    /// Overrides the training-point cap (`None` disables sampling).
    pub fn with_max_training_points(mut self, cap: Option<usize>) -> Self {
        self.max_training_points = cap;
        self
    }
}

/// A trained k-means model: `k` centroids of dimension `dim`, stored flat.
#[derive(Debug, Clone)]
pub struct KMeans {
    dim: usize,
    k: usize,
    centroids: Vec<f32>,
    /// Mean squared distance of training points to their centroid at the end
    /// of training (a quality indicator surfaced for diagnostics).
    pub final_mse: f32,
    /// Number of Lloyd iterations actually executed.
    pub iterations_run: usize,
}

impl KMeans {
    /// Trains k-means on `data` with the given parameters and RNG seed.
    ///
    /// # Panics
    /// Panics if `data` holds fewer points than `params.k` or `k == 0`.
    pub fn train(data: &Dataset, params: &KMeansParams, seed: u64) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(
            data.len() >= params.k,
            "need at least k={} training points, got {}",
            params.k,
            data.len()
        );
        let mut rng = SmallRng::seed_from_u64(seed);

        // Optional subsampling of the training set.
        let sampled;
        let train: &Dataset = match params.max_training_points {
            Some(cap) if data.len() > cap && cap >= params.k => {
                let idx = sample_indices(data.len(), cap, &mut rng);
                sampled = data.gather(&idx);
                &sampled
            }
            _ => data,
        };

        let dim = train.dim();
        let mut centroids = kmeanspp_init(train, params.k, &mut rng);
        let mut assignments = vec![0usize; train.len()];
        let mut prev_mse = f32::INFINITY;
        let mut mse = f32::INFINITY;
        let mut iterations_run = 0;

        for _iter in 0..params.max_iterations {
            iterations_run += 1;
            // Assignment step.
            let mut total = 0.0f64;
            for (i, v) in train.iter().enumerate() {
                let (c, d) = nearest_centroid(v, &centroids, dim);
                assignments[i] = c;
                total += d as f64;
            }
            mse = (total / train.len() as f64) as f32;

            // Update step.
            let mut sums = vec![0.0f64; params.k * dim];
            let mut counts = vec![0usize; params.k];
            for (i, v) in train.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(v) {
                    *s += *x as f64;
                }
            }
            for c in 0..params.k {
                if counts[c] == 0 {
                    // Re-seed an empty centroid with a random training point
                    // (the standard fix for dead centroids).
                    let r = rng.gen_range(0..train.len());
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(train.vector(r));
                } else {
                    for (j, s) in sums[c * dim..(c + 1) * dim].iter().enumerate() {
                        centroids[c * dim + j] = (*s / counts[c] as f64) as f32;
                    }
                }
            }

            if prev_mse.is_finite() && (prev_mse - mse).abs() <= params.tolerance * prev_mse.abs() {
                break;
            }
            prev_mse = mse;
        }

        Self {
            dim,
            k: params.k,
            centroids,
            final_mse: mse,
            iterations_run,
        }
    }

    /// Number of centroids.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Centroid dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid `c` as a slice.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// The flat row-major centroid buffer (`k * dim` floats).
    #[inline]
    pub fn centroids_flat(&self) -> &[f32] {
        &self.centroids
    }

    /// Assigns a single vector to its nearest centroid, returning
    /// `(centroid index, squared distance)`.
    #[inline]
    pub fn assign(&self, v: &[f32]) -> (usize, f32) {
        nearest_centroid(v, &self.centroids, self.dim)
    }

    /// Assigns every vector of `data` to its nearest centroid.
    pub fn assign_all(&self, data: &Dataset) -> Vec<usize> {
        data.iter().map(|v| self.assign(v).0).collect()
    }

    /// Builds a model directly from existing centroids (used by tests and by
    /// synthetic dataset generation, where ground-truth centroids are known).
    pub fn from_centroids(dim: usize, centroids: Vec<f32>) -> Self {
        assert!(centroids.len().is_multiple_of(dim) && !centroids.is_empty());
        let k = centroids.len() / dim;
        Self {
            dim,
            k,
            centroids,
            final_mse: 0.0,
            iterations_run: 0,
        }
    }
}

/// k-means++ seeding: the first centroid is uniform, each subsequent centroid
/// is sampled proportionally to its squared distance from the closest
/// already-chosen centroid.
fn kmeanspp_init(data: &Dataset, k: usize, rng: &mut SmallRng) -> Vec<f32> {
    let dim = data.dim();
    let n = data.len();
    let mut centroids = Vec::with_capacity(k * dim);

    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(data.vector(first));

    let mut min_dist: Vec<f32> = data
        .iter()
        .map(|v| l2_squared(v, data.vector(first)))
        .collect();

    for _ in 1..k {
        let total: f64 = min_dist.iter().map(|&d| d as f64).sum();
        let chosen = if total <= f64::EPSILON {
            // All points coincide with existing centroids; fall back to uniform.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut picked = n - 1;
            for (i, &d) in min_dist.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    picked = i;
                    break;
                }
            }
            picked
        };
        let start = centroids.len();
        centroids.extend_from_slice(data.vector(chosen));
        let new_c = &centroids[start..start + dim];
        for (i, v) in data.iter().enumerate() {
            let d = l2_squared(v, new_c);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    centroids
}

/// Samples `count` distinct indices from `0..n` (Floyd's algorithm would be
/// overkill; a partial Fisher-Yates over an index vector is fine at the
/// scales used for training subsets).
fn sample_indices(n: usize, count: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..count.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(count.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_dataset(seed: u64) -> Dataset {
        // Three well-separated 2-D blobs of 50 points each.
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut ds = Dataset::new(2);
        for c in &centers {
            for _ in 0..50 {
                ds.push(&[
                    c[0] + rng.gen_range(-1.0f32..1.0),
                    c[1] + rng.gen_range(-1.0f32..1.0),
                ]);
            }
        }
        ds
    }

    #[test]
    fn recovers_separated_blobs() {
        let ds = blob_dataset(3);
        let km = KMeans::train(&ds, &KMeansParams::new(3), 42);
        assert_eq!(km.k(), 3);
        assert_eq!(km.dim(), 2);
        // Every learned centroid should be within 2 units of a true center.
        let truth = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        for c in 0..3 {
            let cent = km.centroid(c);
            let best = truth
                .iter()
                .map(|t| l2_squared(cent, t))
                .fold(f32::INFINITY, f32::min);
            assert!(best < 4.0, "centroid {cent:?} too far from any true center");
        }
        assert!(km.final_mse < 2.0);
    }

    #[test]
    fn assignment_is_consistent_with_centroids() {
        let ds = blob_dataset(5);
        let km = KMeans::train(&ds, &KMeansParams::new(3), 1);
        let assignments = km.assign_all(&ds);
        assert_eq!(assignments.len(), ds.len());
        for (i, v) in ds.iter().enumerate() {
            let (c, _) = nearest_centroid(v, km.centroids_flat(), 2);
            assert_eq!(assignments[i], c);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = blob_dataset(7);
        let a = KMeans::train(&ds, &KMeansParams::new(4), 99);
        let b = KMeans::train(&ds, &KMeansParams::new(4), 99);
        assert_eq!(a.centroids_flat(), b.centroids_flat());
    }

    #[test]
    fn subsampling_caps_training_points() {
        let ds = blob_dataset(11);
        let params = KMeansParams::new(3).with_max_training_points(Some(30));
        let km = KMeans::train(&ds, &params, 0);
        assert_eq!(km.k(), 3);
        // Still produces sensible clusters despite sampling.
        assert!(km.final_mse < 50.0);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn rejects_too_few_points() {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let _ = KMeans::train(&ds, &KMeansParams::new(5), 0);
    }

    #[test]
    fn from_centroids_roundtrip() {
        let km = KMeans::from_centroids(2, vec![0.0, 0.0, 5.0, 5.0]);
        assert_eq!(km.k(), 2);
        assert_eq!(km.assign(&[4.9, 5.2]).0, 1);
    }

    #[test]
    fn handles_duplicate_points() {
        // All identical points: k-means++ falls back to uniform choice and
        // training must not panic or divide by zero.
        let rows: Vec<Vec<f32>> = (0..20).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let ds = Dataset::from_rows(&rows);
        let km = KMeans::train(&ds, &KMeansParams::new(2), 0);
        assert_eq!(km.k(), 2);
        assert!(km.final_mse.abs() < 1e-6);
    }
}
