//! Distance kernels used throughout the substrate.
//!
//! IVFPQ (and the UpANNS paper) use L2 distance; inner-product is provided
//! because DEEP1B-style embedding workloads are usually maximum-inner-product
//! searches that Faiss maps onto the same machinery.
//!
//! [`l2_squared`] and [`inner_product`] dispatch to the best runtime-detected
//! backend in [`crate::simd`]; every backend is bitwise-identical to the
//! scalar reference, so callers (kmeans, `IvfPqIndex::search`, the replay
//! twin) see the same answers on every machine.

use crate::simd;
use crate::topk::Neighbor;

/// The similarity metric of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance (smaller is closer).
    L2,
    /// Negative inner product (smaller is closer), so that all metrics can be
    /// minimized uniformly.
    InnerProduct,
}

impl Metric {
    /// Computes the metric between two vectors (smaller = closer for both).
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_squared(a, b),
            Metric::InnerProduct => -inner_product(a, b),
        }
    }
}

/// Squared L2 distance between two equal-length vectors, on the best
/// runtime-detected backend (bitwise-equal to the scalar reference — see
/// [`crate::simd`]).
///
/// # Panics
/// Panics (in debug builds) if the lengths differ.
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    simd::l2_squared_with(simd::active(), a, b)
}

/// Plain inner product of two equal-length vectors, on the best
/// runtime-detected backend (bitwise-equal to the scalar reference).
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    simd::inner_product_with(simd::active(), a, b)
}

/// Squared L2 norm of a vector.
#[inline]
pub fn norm_squared(a: &[f32]) -> f32 {
    inner_product(a, a)
}

/// Finds the index of the closest centroid to `v` among `centroids` (a flat
/// row-major buffer of `k` rows of length `dim`), returning
/// `(index, distance)`.
///
/// # Panics
/// Panics if `centroids` is empty or not a multiple of `dim`.
pub fn nearest_centroid(v: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    assert!(!centroids.is_empty(), "no centroids");
    assert!(centroids.len().is_multiple_of(dim), "centroid buffer not a multiple of dim");
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.chunks_exact(dim).enumerate() {
        let d = l2_squared(v, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Finds the indices of the `n` closest centroids to `v`, ordered from
/// closest to furthest. Used for cluster filtering (selecting `nprobe`
/// clusters per query).
pub fn nearest_centroids(v: &[f32], centroids: &[f32], dim: usize, n: usize) -> Vec<(usize, f32)> {
    assert!(centroids.len().is_multiple_of(dim), "centroid buffer not a multiple of dim");
    let k = centroids.len() / dim;
    let mut all: Vec<(usize, f32)> = centroids
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, c)| (i, l2_squared(v, c)))
        .collect();
    let n = n.min(k);
    // Total order via Neighbor::cmp: a NaN distance (e.g. a poisoned
    // centroid) sorts last instead of comparing Equal-to-everything, so it
    // can never displace a finite centroid from the probe set.
    all.sort_by(|a, b| Neighbor::new(a.0 as u64, a.1).cmp(&Neighbor::new(b.0 as u64, b.1)));
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (i as f32) * -0.25 + 1.0).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let fast = l2_squared(&a, &b);
        assert!((naive - fast).abs() < 1e-3, "{naive} vs {fast}");
    }

    #[test]
    fn inner_product_matches_naive() {
        let a: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..9).map(|i| (i as f32) * 2.0).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((inner_product(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn metric_orders_consistently() {
        let q = vec![1.0, 0.0];
        let close = vec![1.0, 0.1];
        let far = vec![-1.0, 0.0];
        assert!(Metric::L2.distance(&q, &close) < Metric::L2.distance(&q, &far));
        assert!(
            Metric::InnerProduct.distance(&q, &close) < Metric::InnerProduct.distance(&q, &far)
        );
    }

    #[test]
    fn norm_is_self_inner_product() {
        let v = vec![3.0, 4.0];
        assert_eq!(norm_squared(&v), 25.0);
    }

    #[test]
    fn nearest_centroid_picks_minimum() {
        let centroids = vec![0.0, 0.0, /* c0 */ 10.0, 10.0, /* c1 */ 2.0, 2.0 /* c2 */];
        let (idx, d) = nearest_centroid(&[1.9, 2.1], &centroids, 2);
        assert_eq!(idx, 2);
        assert!(d < 0.1);
    }

    #[test]
    fn nearest_centroids_sorted_and_truncated() {
        let centroids = vec![0.0, 0.0, 10.0, 10.0, 2.0, 2.0, 5.0, 5.0];
        let top = nearest_centroids(&[0.1, 0.1], &centroids, 2, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 3);
        assert!(top[0].1 <= top[1].1 && top[1].1 <= top[2].1);

        // n larger than the number of centroids is clamped.
        let all = nearest_centroids(&[0.0, 0.0], &centroids, 2, 100);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn nan_centroid_never_enters_probe_set() {
        // Regression: the old comparator used partial_cmp(..).unwrap_or(Equal),
        // under which a NaN distance compares Equal to everything and can keep
        // its position ahead of finite centroids. With Neighbor::cmp the
        // poisoned centroid sorts strictly last.
        let centroids = vec![5.0, 5.0, f32::NAN, 0.0, 1.0, 1.0, 3.0, 3.0];
        let top = nearest_centroids(&[0.0, 0.0], &centroids, 2, 3);
        assert_eq!(top.iter().map(|t| t.0).collect::<Vec<_>>(), vec![2, 3, 0]);
        assert!(top.iter().all(|t| !t.1.is_nan()));
        // Asking for all of them places the NaN centroid last.
        let all = nearest_centroids(&[0.0, 0.0], &centroids, 2, 4);
        assert_eq!(all[3].0, 1);
        assert!(all[3].1.is_nan());
    }

    #[test]
    fn dispatched_l2_matches_scalar_reference_bitwise() {
        use crate::simd;
        for n in [1usize, 4, 7, 8, 16, 37, 96, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.83).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).cos()).collect();
            assert_eq!(
                l2_squared(&a, &b).to_bits(),
                simd::l2_squared_scalar(&a, &b).to_bits()
            );
            assert_eq!(
                inner_product(&a, &b).to_bits(),
                simd::inner_product_scalar(&a, &b).to_bits()
            );
        }
    }
}
