//! Fixture: time flows only through an explicit replay-clock parameter.

pub fn elapsed_ns(clock_ns: u128, started_ns: u128) -> u128 {
    clock_ns - started_ns
}
