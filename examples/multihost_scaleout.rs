//! Multi-host scale-out (§5.5): shard the corpus across several PIM hosts and
//! measure how throughput scales when only query distribution and result
//! aggregation cross the network.
//!
//! Run with:
//! ```text
//! cargo run --release --example multihost_scaleout
//! ```

use annkit::prelude::*;
use baselines::engine::AnnEngine;
use pim_sim::config::PimConfig;
use upanns::prelude::*;

const NPROBE: usize = 12;
const K: usize = 10;
const DPUS_PER_HOST: usize = 128;

/// Builds one single-host engine over a shard of the corpus, with globally
/// unique vector ids.
fn build_shard_engine(
    index: &IvfPqIndex,
    history: &Dataset,
    scale: f64,
) -> UpAnnsEngine {
    UpAnnsBuilder::new(index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(PimConfig::with_dpus(DPUS_PER_HOST))
        .with_history(history, NPROBE)
        .with_batch_capacity(BatchCapacity {
            batch_size: 512,
            nprobe: NPROBE,
            max_k: K,
        })
        .build()
}

fn main() {
    let n = 24_000;
    println!("Generating a SIFT-like corpus with {n} vectors ...");
    let dataset = SyntheticSpec::sift_like(n)
        .with_clusters(128)
        .with_seed(17)
        .generate_with_meta();
    // Each stored vector stands for `scale` vectors of the modeled corpus.
    let scale = 1e9 / n as f64;
    let history = WorkloadSpec::new(2_000).with_seed(5).generate(&dataset).queries;
    let batch = WorkloadSpec::new(512).with_seed(6).generate(&dataset).queries;
    let exact = FlatIndex::new(&dataset.vectors).search_batch(&batch, K);

    println!(
        "{:>6} | {:>10} | {:>10} | {:>10} | {:>8} | {:>9}",
        "hosts", "QPS", "speedup", "net+merge", "recall", "peak W"
    );
    let mut baseline_qps = 0.0f64;
    for hosts in [1usize, 2, 4] {
        // Shard the corpus, train one IVFPQ index per shard (codebooks per
        // shard, ids global), and build one UpANNS engine per host.
        let ranges = shard_ranges(dataset.vectors.len(), hosts);
        let shard_indexes: Vec<IvfPqIndex> = ranges
            .iter()
            .map(|r| {
                let rows: Vec<usize> = r.clone().collect();
                let shard = dataset.vectors.gather(&rows);
                let nlist = (128 / hosts).max(16);
                let mut index = IvfPqIndex::train_empty(
                    &shard,
                    &IvfPqParams::new(nlist, 16).with_train_size(6_000),
                    9,
                );
                index.add(&shard, r.start as u64);
                index
            })
            .collect();
        let engines: Vec<UpAnnsEngine> = shard_indexes
            .iter()
            .map(|ix| build_shard_engine(ix, &history, scale))
            .collect();
        let mut deployment = MultiHostUpAnns::new(engines, InterconnectModel::default());

        let out = deployment.search_batch(&batch, NPROBE, K);
        if hosts == 1 {
            baseline_qps = out.qps();
        }
        let net = out.breakdown.seconds("query_broadcast")
            + out.breakdown.seconds("result_gather")
            + out.breakdown.seconds("coordinator_merge");
        println!(
            "{:>6} | {:>10.1} | {:>9.2}x | {:>8.3}ms | {:>8.3} | {:>9.0}",
            hosts,
            out.qps(),
            out.qps() / baseline_qps,
            net * 1e3,
            recall_at_k(&out.results, &exact, K),
            deployment.energy_model().peak_watts
        );
    }

    println!(
        "\nEach host searches only its shard, so the search leg shrinks with the\n\
         host count while the network legs (query broadcast + top-k gather) stay\n\
         a few milliseconds — the near-linear scaling the paper's §5.5 argues for."
    );
}
