//! The engine abstraction shared by every search backend in the repository.

use crate::workload_stats::WorkloadStats;
use annkit::topk::Neighbor;
use annkit::vector::Dataset;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

/// The outcome of searching one query batch on some engine.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Per-query neighbor lists, closest first.
    pub results: Vec<Vec<Neighbor>>,
    /// Simulated end-to-end seconds for the whole batch.
    pub seconds: f64,
    /// Simulated time split by pipeline stage.
    pub breakdown: StageBreakdown,
    /// Work counters collected during the functional execution.
    pub stats: WorkloadStats,
}

impl SearchOutcome {
    /// Number of queries answered.
    pub fn batch_size(&self) -> usize {
        self.results.len()
    }

    /// Queries per second implied by the simulated batch time.
    pub fn qps(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.seconds
        }
    }

    /// Mean latency per query in seconds (batch time / batch size).
    pub fn mean_latency(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.seconds / self.results.len() as f64
        }
    }

    /// QPS per watt under `energy`'s peak-power approximation (Figure 12b).
    pub fn qps_per_watt(&self, energy: &EnergyModel) -> f64 {
        energy.qps_per_watt(self.qps())
    }

    /// QPS per dollar of hardware (§5.2's cost-efficiency comparison).
    pub fn qps_per_dollar(&self, energy: &EnergyModel) -> f64 {
        energy.qps_per_dollar(self.qps())
    }
}

/// A search engine that answers IVFPQ queries and reports simulated timing.
///
/// Implemented by [`CpuFaissEngine`](crate::cpu::CpuFaissEngine),
/// [`GpuFaissEngine`](crate::gpu::GpuFaissEngine), and the PIM engines in the
/// `upanns` crate, so the benchmark harness can sweep all of them uniformly.
pub trait AnnEngine {
    /// Short display name ("Faiss-CPU", "Faiss-GPU", "PIM-naive", "UpANNS").
    fn name(&self) -> &str;

    /// Searches a batch of queries, returning the `k` nearest neighbors of
    /// each, probing `nprobe` clusters per query.
    fn search_batch(&mut self, queries: &Dataset, nprobe: usize, k: usize) -> SearchOutcome;

    /// The peak-power / price model of the hardware this engine represents.
    fn energy_model(&self) -> EnergyModel;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(batch: usize, seconds: f64) -> SearchOutcome {
        SearchOutcome {
            results: vec![vec![Neighbor::new(0, 0.0)]; batch],
            seconds,
            breakdown: StageBreakdown::new(),
            stats: WorkloadStats::default(),
        }
    }

    #[test]
    fn qps_and_latency() {
        let o = outcome(1000, 0.5);
        assert_eq!(o.batch_size(), 1000);
        assert!((o.qps() - 2000.0).abs() < 1e-9);
        assert!((o.mean_latency() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn degenerate_outcomes() {
        let o = outcome(0, 0.0);
        assert_eq!(o.qps(), 0.0);
        assert_eq!(o.mean_latency(), 0.0);
    }

    #[test]
    fn efficiency_uses_energy_model() {
        let o = outcome(300, 1.0);
        let em = EnergyModel::new("x", 150.0, 3000.0);
        assert!((o.qps_per_watt(&em) - 2.0).abs() < 1e-9);
        assert!((o.qps_per_dollar(&em) - 0.1).abs() < 1e-9);
    }
}
