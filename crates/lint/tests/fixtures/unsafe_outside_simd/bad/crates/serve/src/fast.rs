//! Fixture: hand-rolled `unsafe` pointer arithmetic outside the sanctioned
//! SIMD module — exactly the shortcut the rule exists to reject.

pub fn sum_unchecked(values: &[f32]) -> f32 {
    let mut total = 0.0f32;
    let ptr = values.as_ptr();
    for i in 0..values.len() {
        total += unsafe { *ptr.add(i) };
    }
    total
}
