//! The engine abstraction shared by every search backend in the repository.
//!
//! The API is **request-centric**: callers describe a batch of queries as a
//! [`SearchRequest`] carrying one [`QueryOptions`] per query (its `k`,
//! `nprobe` and optional latency budget), and every engine answers it through
//! [`AnnEngine::execute`], returning a [`SearchResponse`] with per-query
//! neighbor lists plus the request's simulated timing, stage breakdown and
//! work counters. The historical positional entry point
//! [`AnnEngine::search_batch`] survives as a thin default-method shim that
//! wraps its arguments in a uniform request, so existing harness code keeps
//! working unchanged.
//!
//! Engines whose native execution path is a *uniform* batch (all queries
//! sharing one `nprobe`/`k` — the CPU/GPU baselines and the single-host PIM
//! engines) implement `execute` via [`execute_grouped`], which partitions the
//! request into compatible option groups, runs each group back-to-back, and
//! reassembles per-query results in request order.

use crate::workload_stats::WorkloadStats;
use annkit::topk::Neighbor;
use annkit::vector::Dataset;
pub use annkit::workload::TenantId;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

/// Per-query search parameters inside a [`SearchRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Number of nearest neighbors to return.
    pub k: usize,
    /// Number of IVF clusters to probe.
    pub nprobe: usize,
    /// Optional per-query latency budget in (simulated) seconds. Engines do
    /// not enforce it, and it never splits a batch; it exists for upstream
    /// parameter selection — `upanns::adaptive::NprobePolicy` translates it
    /// into a per-query `nprobe` when the caller wires the policy in.
    pub latency_budget_s: Option<f64>,
    /// The tenant (traffic class) this query belongs to. Like the latency
    /// budget, the tenant never changes what an engine answers and never
    /// splits an execution sub-batch; it is the accounting label the serving
    /// layer keys weighted-fair admission, per-tenant batching windows and
    /// per-tenant SLO reporting on.
    pub tenant: TenantId,
}

impl QueryOptions {
    /// Options with the given `k` and `nprobe`, no latency budget, and the
    /// default tenant.
    pub fn new(k: usize, nprobe: usize) -> Self {
        Self {
            k,
            nprobe,
            latency_budget_s: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Attaches a latency budget.
    pub fn with_latency_budget(mut self, seconds: f64) -> Self {
        self.latency_budget_s = Some(seconds);
        self
    }

    /// Tags the query with its tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The execution-compatibility key: two queries can run in the same
    /// uniform sub-batch iff their keys match (latency budgets and tenant
    /// labels never split a batch — budgets steer parameter selection
    /// upstream, tenants steer serving-layer admission and batching).
    pub fn compat_key(&self) -> (usize, usize) {
        (self.k, self.nprobe)
    }
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self::new(10, 8)
    }
}

/// A batch of queries submitted to an engine, with per-query options.
///
/// ```
/// use annkit::vector::Dataset;
/// use baselines::engine::{QueryOptions, SearchRequest, TenantId};
///
/// let mut queries = Dataset::with_capacity(4, 3);
/// for i in 0..3 {
///     queries.push(&[i as f32, 0.0, 0.0, 0.0]);
/// }
///
/// // Per-query options: two compatible queries and one needing more
/// // neighbors. Budgets and tenant labels never split a sub-batch.
/// let request = SearchRequest::new(
///     queries,
///     vec![
///         QueryOptions::new(10, 8),
///         QueryOptions::new(10, 8)
///             .with_latency_budget(5e-3)
///             .with_tenant(TenantId(7)),
///         QueryOptions::new(50, 16),
///     ],
/// )
/// .with_id(42);
///
/// assert_eq!(request.len(), 3);
/// assert_eq!(request.max_k(), 50);
/// assert!(request.uniform_options().is_none(), "mixed ks");
/// // Engines execute compatible groups as uniform sub-batches:
/// let groups = request.option_groups();
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].1, vec![0, 1]);
/// assert_eq!(groups[1].1, vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Caller-chosen request identifier, echoed in the response.
    pub id: u64,
    /// Simulated dispatch time of the request on the replay clock, in
    /// seconds. Engines that model host availability (the replicated
    /// multihost tier) evaluate their fault schedule at this instant, and
    /// live-mutation engines charge compaction-window stalls against it;
    /// plain engines ignore it. The serving layers set it to the batch's
    /// close time — the one timestamp that is identical between the
    /// discrete-event replay and its threaded twin. Defaults to 0.0 (the
    /// start of simulated time).
    pub at: f64,
    queries: Dataset,
    options: Vec<QueryOptions>,
    /// Per-query arrival times (see [`with_arrivals`](Self::with_arrivals));
    /// empty means "every query dispatched at [`at`](Self::at)".
    arrivals: Vec<f64>,
}

impl SearchRequest {
    /// A request where every query uses `options`.
    ///
    /// # Panics
    /// Panics if `queries` and `options` lengths differ.
    pub fn new(queries: Dataset, options: Vec<QueryOptions>) -> Self {
        assert_eq!(
            queries.len(),
            options.len(),
            "one QueryOptions per query required"
        );
        Self {
            id: 0,
            at: 0.0,
            queries,
            options,
            arrivals: Vec::new(),
        }
    }

    /// A request where every query shares one `nprobe`/`k` — the shape of the
    /// legacy `search_batch` call.
    pub fn uniform(queries: &Dataset, nprobe: usize, k: usize) -> Self {
        let options = vec![QueryOptions::new(k, nprobe); queries.len()];
        Self::new(queries.clone(), options)
    }

    /// Sets the request id.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Sets the simulated dispatch time (see the field docs on
    /// [`at`](Self::at)).
    pub fn with_at(mut self, at: f64) -> Self {
        self.at = at;
        self
    }

    /// Sets each query's own arrival time on the replay clock. Engines
    /// serving a live [`SnapshotTimeline`](annkit::mutation::SnapshotTimeline)
    /// resolve every query's snapshot
    /// at its *arrival* (see [`execute_by_entry`]), so the answer is a pure
    /// function of (query, arrival) — independent of how the serving layer
    /// happened to batch it. Without arrivals every query resolves at
    /// [`at`](Self::at), which on a frozen timeline is the same snapshot
    /// either way.
    ///
    /// # Panics
    /// Panics if `arrivals` is non-empty and its length differs from the
    /// query count.
    pub fn with_arrivals(mut self, arrivals: Vec<f64>) -> Self {
        assert!(
            arrivals.is_empty() || arrivals.len() == self.queries.len(),
            "one arrival per query required"
        );
        self.arrivals = arrivals;
        self
    }

    /// Query `i`'s dispatch time: its own arrival when one was recorded,
    /// the request's [`at`](Self::at) otherwise.
    pub fn arrival_of(&self, i: usize) -> f64 {
        self.arrivals.get(i).copied().unwrap_or(self.at)
    }

    /// The sub-request of the queries at `members`, preserving the id and
    /// batch dispatch time. Per-query arrivals are dropped: subsets are
    /// built by [`execute_by_entry`] to be snapshot-uniform already.
    fn subset(&self, members: &[usize]) -> SearchRequest {
        SearchRequest {
            id: self.id,
            at: self.at,
            queries: self.queries.gather(members),
            options: members.iter().map(|&i| self.options[i]).collect(),
            arrivals: Vec::new(),
        }
    }

    /// The query vectors.
    pub fn queries(&self) -> &Dataset {
        &self.queries
    }

    /// The per-query options (same length as [`queries`](Self::queries)).
    pub fn options(&self) -> &[QueryOptions] {
        &self.options
    }

    /// Mutable access to the per-query options, for policies that rewrite
    /// parameters in place (e.g. adaptive nprobe selection).
    pub fn options_mut(&mut self) -> &mut [QueryOptions] {
        &mut self.options
    }

    /// Number of queries in the request.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the request carries no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// When every query shares one compatibility key, the shared options
    /// (with the first query's budget); `None` for mixed requests.
    pub fn uniform_options(&self) -> Option<QueryOptions> {
        let first = *self.options.first()?;
        self.options
            .iter()
            .all(|o| o.compat_key() == first.compat_key())
            .then_some(first)
    }

    /// Partitions query indices into execution-compatible groups, preserving
    /// first-seen order of the keys and request order within each group.
    pub fn option_groups(&self) -> Vec<(QueryOptions, Vec<usize>)> {
        let mut groups: Vec<(QueryOptions, Vec<usize>)> = Vec::new();
        for (i, opt) in self.options.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(o, _)| o.compat_key() == opt.compat_key())
            {
                Some((_, members)) => members.push(i),
                None => groups.push((*opt, vec![i])),
            }
        }
        groups
    }

    /// The largest `k` in the request (0 when empty).
    pub fn max_k(&self) -> usize {
        self.options.iter().map(|o| o.k).max().unwrap_or(0)
    }
}

/// An engine's answer to a [`SearchRequest`].
///
/// This is also the single home of the repository's latency/QPS accounting:
/// every division guard lives here, and the legacy [`SearchOutcome`] name is
/// an alias of this type, so engines and harnesses share one implementation.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The id of the request this response answers.
    pub request_id: u64,
    /// Per-query neighbor lists, closest first, in request order.
    pub results: Vec<Vec<Neighbor>>,
    /// Simulated end-to-end seconds for the whole request.
    pub seconds: f64,
    /// Simulated time split by pipeline stage.
    pub breakdown: StageBreakdown,
    /// Work counters collected during the functional execution.
    pub stats: WorkloadStats,
}

/// Legacy name of [`SearchResponse`], kept so positional `search_batch` call
/// sites read naturally.
pub type SearchOutcome = SearchResponse;

impl SearchResponse {
    /// An empty response (no queries, zero time).
    pub fn empty(request_id: u64) -> Self {
        Self {
            request_id,
            results: Vec::new(),
            seconds: 0.0,
            breakdown: StageBreakdown::new(),
            stats: WorkloadStats::default(),
        }
    }

    /// Number of queries answered.
    pub fn batch_size(&self) -> usize {
        self.results.len()
    }

    /// Queries per second implied by the simulated batch time.
    pub fn qps(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.seconds
        }
    }

    /// Mean latency per query in seconds (batch time / batch size).
    pub fn mean_latency(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.seconds / self.results.len() as f64
        }
    }

    /// QPS per watt under `energy`'s peak-power approximation (Figure 12b).
    pub fn qps_per_watt(&self, energy: &EnergyModel) -> f64 {
        energy.qps_per_watt(self.qps())
    }

    /// QPS per dollar of hardware (§5.2's cost-efficiency comparison).
    pub fn qps_per_dollar(&self, energy: &EnergyModel) -> f64 {
        energy.qps_per_dollar(self.qps())
    }
}

/// Runs a mixed-options request on an engine whose native path is a uniform
/// batch. `run_uniform(queries, nprobe, k)` is invoked once per compatible
/// option group (in first-seen order); group times add up, breakdowns and
/// work counters merge, and per-query results are scattered back to request
/// order. Uniform requests skip the regrouping entirely.
pub fn execute_grouped<F>(request: &SearchRequest, mut run_uniform: F) -> SearchResponse
where
    F: FnMut(&Dataset, usize, usize) -> SearchResponse,
{
    if request.is_empty() {
        return SearchResponse::empty(request.id);
    }
    if let Some(opt) = request.uniform_options() {
        let mut response = run_uniform(request.queries(), opt.nprobe, opt.k);
        response.request_id = request.id;
        return response;
    }

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); request.len()];
    let mut seconds = 0.0;
    let mut breakdown = StageBreakdown::new();
    let mut stats = WorkloadStats::default();
    for (opt, members) in request.option_groups() {
        let sub = request.queries().gather(&members);
        let group = run_uniform(&sub, opt.nprobe, opt.k);
        for (slot, result) in members.iter().zip(group.results) {
            results[*slot] = result;
        }
        seconds += group.seconds;
        breakdown.merge(&group.breakdown);
        stats.merge(&group.stats);
    }
    SearchResponse {
        request_id: request.id,
        results,
        seconds,
        breakdown,
        stats,
    }
}

/// Runs `request` with every query served by the timeline entry active at
/// that query's own dispatch time ([`SearchRequest::arrival_of`]):
/// `run_entry(entry_index, sub_request)` answers one snapshot-uniform
/// sub-request, results are scattered back to request order, and times add
/// up like [`execute_grouped`]'s option groups. Because each answer depends
/// only on (query, arrival), batching, chunking and cache-hit timing cannot
/// change *what* is answered — the invariant the threaded twin's byte-diff
/// relies on under live mutation.
///
/// Requests without per-query arrivals — or whose arrivals all resolve to
/// one entry, which includes every frozen timeline — take a fast path that
/// is bitwise identical (answers *and* modeled seconds) to running the
/// whole request against one snapshot. The compaction-window stall is
/// charged once at the request's batch dispatch time: the *device* stalls,
/// regardless of which snapshots its queries read.
pub fn execute_by_entry<F>(
    timeline: &annkit::mutation::SnapshotTimeline,
    request: &SearchRequest,
    mut run_entry: F,
) -> SearchResponse
where
    F: FnMut(usize, &SearchRequest) -> SearchResponse,
{
    let entry_of = |i: usize| timeline.index_at(request.arrival_of(i));
    let mut response = if request.is_empty() || (1..request.len()).all(|i| entry_of(i) == entry_of(0))
    {
        let entry = if request.is_empty() {
            timeline.index_at(request.at)
        } else {
            entry_of(0)
        };
        run_entry(entry, request)
    } else {
        // First-seen entry order, like execute_grouped's option groups.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..request.len() {
            let entry = entry_of(i);
            match groups.iter_mut().find(|(g, _)| *g == entry) {
                Some((_, members)) => members.push(i),
                None => groups.push((entry, vec![i])),
            }
        }
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); request.len()];
        let mut seconds = 0.0;
        let mut breakdown = StageBreakdown::new();
        let mut stats = WorkloadStats::default();
        for (entry, members) in groups {
            let part = run_entry(entry, &request.subset(&members));
            for (slot, result) in members.iter().zip(part.results) {
                results[*slot] = result;
            }
            seconds += part.seconds;
            breakdown.merge(&part.breakdown);
            stats.merge(&part.stats);
        }
        SearchResponse {
            request_id: request.id,
            results,
            seconds,
            breakdown,
            stats,
        }
    };
    response.request_id = request.id;
    let stall = timeline.stall_after(request.at);
    if stall > 0.0 {
        response.seconds += stall;
        response.breakdown.add("compaction_stall", stall);
    }
    response
}

/// A search engine that answers IVFPQ queries and reports simulated timing.
///
/// Implemented by [`CpuFaissEngine`](crate::cpu::CpuFaissEngine),
/// [`GpuFaissEngine`](crate::gpu::GpuFaissEngine), and the PIM engines in the
/// `upanns` crate, so the benchmark harness and the serving front-end can
/// drive all of them uniformly. [`execute`](Self::execute) is the primary
/// entry point; [`search_batch`](Self::search_batch) is a compatibility shim.
pub trait AnnEngine {
    /// Short display name ("Faiss-CPU", "Faiss-GPU", "PIM-naive", "UpANNS").
    fn name(&self) -> &str;

    /// Answers a request, honoring each query's own `k` and `nprobe`.
    fn execute(&mut self, request: &SearchRequest) -> SearchResponse;

    /// Searches a batch of queries that all share one `nprobe` and `k`.
    ///
    /// Default shim over [`execute`](Self::execute); prefer building a
    /// [`SearchRequest`] directly when queries need distinct options. The
    /// shim clones `queries` into the owned request — one memcpy, dwarfed by
    /// the functional search it precedes.
    fn search_batch(&mut self, queries: &Dataset, nprobe: usize, k: usize) -> SearchOutcome {
        self.execute(&SearchRequest::uniform(queries, nprobe, k))
    }

    /// The peak-power / price model of the hardware this engine represents.
    fn energy_model(&self) -> EnergyModel;

    /// Installs a live-mutation [`SnapshotTimeline`](annkit::mutation::SnapshotTimeline):
    /// every subsequent query resolves the snapshot active at its own
    /// dispatch time ([`SearchRequest::arrival_of`], via
    /// [`execute_by_entry`]), and requests landing inside a compaction
    /// window are stalled to its end. Returns whether the engine
    /// supports live mutation; the default declines (engines without
    /// support keep serving their construction-time index — the multihost
    /// tiers, whose shard indexes are independent, are the documented
    /// residue).
    fn install_timeline(&mut self, timeline: annkit::mutation::SnapshotTimeline) -> bool {
        let _ = timeline;
        false
    }

    /// Asks the engine to resize itself to `hosts` serving hosts at simulated
    /// time `now`, returning the modeled migration seconds the resize costs,
    /// or `None` when the engine has no host-level elasticity (the default —
    /// single-host engines ignore the request). Engines that do support it
    /// (the replicated multihost tier) rebalance their shard→host map and
    /// charge the data movement through their interconnect model; hosts being
    /// migrated onto only start serving once the migration completes.
    fn scale_to(&mut self, hosts: usize, now: f64) -> Option<f64> {
        let _ = (hosts, now);
        None
    }

    /// The number of hosts currently provisioned, or `None` for engines
    /// without host-level elasticity.
    fn live_hosts(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(batch: usize, seconds: f64) -> SearchResponse {
        SearchResponse {
            request_id: 7,
            results: vec![vec![Neighbor::new(0, 0.0)]; batch],
            seconds,
            breakdown: StageBreakdown::new(),
            stats: WorkloadStats::default(),
        }
    }

    fn queries(n: usize) -> Dataset {
        let mut d = Dataset::with_capacity(4, n);
        for i in 0..n {
            d.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        d
    }

    #[test]
    fn qps_and_latency() {
        let o = response(1000, 0.5);
        assert_eq!(o.batch_size(), 1000);
        assert!((o.qps() - 2000.0).abs() < 1e-9);
        assert!((o.mean_latency() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn degenerate_outcomes() {
        let o = response(0, 0.0);
        assert_eq!(o.qps(), 0.0);
        assert_eq!(o.mean_latency(), 0.0);
        let empty = SearchResponse::empty(3);
        assert_eq!(empty.request_id, 3);
        assert_eq!(empty.batch_size(), 0);
    }

    #[test]
    fn efficiency_uses_energy_model() {
        let o = response(300, 1.0);
        let em = EnergyModel::new("x", 150.0, 3000.0);
        assert!((o.qps_per_watt(&em) - 2.0).abs() < 1e-9);
        assert!((o.qps_per_dollar(&em) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn uniform_request_shape() {
        let req = SearchRequest::uniform(&queries(5), 6, 3).with_id(42);
        assert_eq!(req.len(), 5);
        assert_eq!(req.id, 42);
        assert_eq!(req.max_k(), 3);
        let opt = req.uniform_options().expect("uniform");
        assert_eq!(opt.compat_key(), (3, 6));
        assert_eq!(req.option_groups().len(), 1);
    }

    #[test]
    fn mixed_request_groups_by_compat_key() {
        let opts = vec![
            QueryOptions::new(10, 8),
            QueryOptions::new(5, 4),
            QueryOptions::new(10, 8).with_latency_budget(1e-3),
            QueryOptions::new(5, 4),
        ];
        let req = SearchRequest::new(queries(4), opts);
        assert!(req.uniform_options().is_none());
        let groups = req.option_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec![0, 2]); // budgets don't split a group
        assert_eq!(groups[1].1, vec![1, 3]);
        assert_eq!(req.max_k(), 10);
    }

    #[test]
    fn tenant_labels_do_not_split_compat_groups() {
        let opts = vec![
            QueryOptions::new(10, 8).with_tenant(TenantId(1)),
            QueryOptions::new(10, 8).with_tenant(TenantId(2)),
            QueryOptions::new(5, 4).with_tenant(TenantId(1)),
        ];
        let req = SearchRequest::new(queries(3), opts);
        let groups = req.option_groups();
        assert_eq!(groups.len(), 2, "tenants share execution sub-batches");
        assert_eq!(groups[0].1, vec![0, 1]);
        assert_eq!(
            QueryOptions::new(10, 8).with_tenant(TenantId(3)).compat_key(),
            QueryOptions::new(10, 8).compat_key()
        );
        assert_eq!(QueryOptions::default().tenant, TenantId::DEFAULT);
    }

    #[test]
    #[should_panic(expected = "one QueryOptions per query")]
    fn mismatched_options_length_is_rejected() {
        let _ = SearchRequest::new(queries(3), vec![QueryOptions::default(); 2]);
    }

    #[test]
    fn execute_grouped_scatters_results_and_sums_time() {
        let opts = vec![
            QueryOptions::new(1, 2),
            QueryOptions::new(2, 3),
            QueryOptions::new(1, 2),
        ];
        let req = SearchRequest::new(queries(3), opts).with_id(9);
        let mut calls = Vec::new();
        let out = execute_grouped(&req, |qs, nprobe, k| {
            calls.push((qs.len(), nprobe, k));
            SearchResponse {
                request_id: 0,
                // Tag each result with its group's k so scattering is visible.
                results: (0..qs.len())
                    .map(|_| vec![Neighbor::new(k as u64, 0.0); k])
                    .collect(),
                seconds: 0.5,
                breakdown: StageBreakdown::new(),
                stats: WorkloadStats::default(),
            }
        });
        assert_eq!(calls, vec![(2, 2, 1), (1, 3, 2)]);
        assert_eq!(out.request_id, 9);
        assert_eq!(out.results[0].len(), 1);
        assert_eq!(out.results[1].len(), 2);
        assert_eq!(out.results[2].len(), 1);
        assert!((out.seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn execute_grouped_uniform_fast_path_keeps_single_call() {
        let req = SearchRequest::uniform(&queries(4), 5, 2);
        let mut calls = 0;
        let out = execute_grouped(&req, |qs, nprobe, k| {
            calls += 1;
            assert_eq!((qs.len(), nprobe, k), (4, 5, 2));
            response(qs.len(), 0.25)
        });
        assert_eq!(calls, 1);
        assert_eq!(out.batch_size(), 4);
    }

    #[test]
    fn empty_request_short_circuits() {
        let req = SearchRequest::new(Dataset::new(4), Vec::new()).with_id(1);
        let out = execute_grouped(&req, |_, _, _| unreachable!("no groups to run"));
        assert_eq!(out.request_id, 1);
        assert_eq!(out.batch_size(), 0);
        assert_eq!(out.seconds, 0.0);
    }
}
