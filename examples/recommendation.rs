//! Recommendation-serving scenario: candidate generation under different
//! batch sizes.
//!
//! Industrial recommenders (the paper cites ByteDance's vector retrieval)
//! batch incoming requests before hitting the ANN index. Larger batches
//! amortize host-side preprocessing and CPU↔DPU transfers but add queueing
//! delay. This example sweeps the batch size (as in Figure 16) on a
//! SPACEV-like catalogue and reports per-query latency and throughput for
//! UpANNS, the PIM-naive port and the Faiss-CPU baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example recommendation
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use upanns::prelude::*;

fn main() {
    // Item-embedding catalogue: SPACEV-like (100-d), 128 clusters, M = 20.
    let n = 40_000;
    println!("Building a SPACEV-like item catalogue ({n} items) ...");
    let catalogue = SyntheticSpec::spacev_like(n)
        .with_clusters(128)
        .with_seed(77)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &catalogue.vectors,
        &IvfPqParams::new(128, 20).with_train_size(10_000),
        5,
    );

    // User activity is bursty and skewed: popular item neighborhoods receive
    // most of the traffic. The placement uses last hour's log.
    let last_hour = WorkloadSpec::new(3_000).with_seed(8).generate(&catalogue);

    // Project timing to the billion-item catalogue this one stands for.
    let scale = 1e9 / n as f64;
    let pim = PimConfig::paper_seven_dimms();
    let mut upanns = UpAnnsBuilder::new(&index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(pim.clone())
        .with_history(&last_hour.queries, 16)
        .build();
    let mut naive = UpAnnsBuilder::new(&index)
        .with_config(UpAnnsConfig::pim_naive().with_work_scale(scale))
        .with_pim_config(pim)
        .build();
    let mut cpu = CpuFaissEngine::new(&index).with_work_scale(scale);

    let nprobe = 16;
    let k = 50; // candidate set handed to the ranking model

    println!("\nBatch-size sweep (nprobe = {nprobe}, k = {k}):");
    println!(
        "{:<8} {:<12} {:>10} {:>14} {:>16}",
        "batch", "engine", "QPS", "ms per query", "batch latency ms"
    );
    for &batch_size in &[10usize, 100, 1000] {
        let batch = WorkloadSpec::new(batch_size)
            .with_seed(9 + batch_size as u64)
            .generate(&catalogue);

        for (name, outcome) in [
            ("UpANNS", upanns.search_batch(&batch.queries, nprobe, k)),
            ("PIM-naive", naive.search_batch(&batch.queries, nprobe, k)),
            ("Faiss-CPU", cpu.search_batch(&batch.queries, nprobe, k)),
        ] {
            println!(
                "{:<8} {:<12} {:>10.0} {:>14.3} {:>16.3}",
                batch_size,
                name,
                outcome.qps(),
                outcome.mean_latency() * 1e3,
                outcome.seconds * 1e3
            );
        }
    }

    // Quality check on the largest batch.
    let batch = WorkloadSpec::new(1000).with_seed(1009).generate(&catalogue);
    let outcome = upanns.search_batch(&batch.queries, nprobe, k);
    let exact = FlatIndex::new(&catalogue.vectors).search_batch(&batch.queries, k);
    println!(
        "\nUpANNS recall@{k} on the 1000-request batch: {:.3}",
        recall_at_k(&outcome.results, &exact, k)
    );
    println!(
        "Candidate generation scanned {:.1} M item codes ({:.0} codes per request).",
        outcome.stats.candidates_scanned as f64 / 1e6,
        outcome.stats.candidates_per_query()
    );
    println!(
        "Top-k pruning rejected {:.1} % of heap candidates before insertion.",
        outcome.stats.topk_rejection_rate() * 100.0
    );
}
