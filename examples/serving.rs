//! Serving walkthrough: a stream of heterogeneous queries through the
//! `upanns-serve` front-end.
//!
//! The other examples answer *batches* where every query shares one
//! `nprobe`/`k`. Production traffic is a stream of single queries with
//! per-query parameters: an interactive RAG tier wants small `k` and a tight
//! latency budget, an offline re-ranking tier wants large `k` and tolerates
//! delay. This example
//!
//! * builds an UpANNS engine,
//! * uses [`NprobePolicy`] to turn per-query latency budgets into per-query
//!   `nprobe` choices,
//! * replays a timed [`QueryStream`] through [`SearchService`]
//!   (admission queue → dynamic batch former → LRU result cache → engine),
//! * and reports sustained QPS, latency percentiles, and cache efficiency.
//!
//! Run with:
//! ```text
//! cargo run --release --example serving
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use upanns::prelude::*;
use upanns_serve::batcher::BatchFormerConfig;
use upanns_serve::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Offline phase: dataset, index, engine (see examples/quickstart.rs).
    // ------------------------------------------------------------------
    let n = 8_000;
    println!("Building the fixture ({n} vectors) ...");
    let dataset = SyntheticSpec::sift_like(n)
        .with_clusters(64)
        .with_seed(3)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(512, 16).with_train_size(3_000),
        1,
    );
    let history = WorkloadSpec::new(1_500).with_seed(4).generate(&dataset).queries;
    // Modeled size chosen for per-cluster parity with the reference
    // billion-scale configuration (see the `serve` binary).
    let scale = 1.25e8 / n as f64;
    let engine = UpAnnsBuilder::new(&index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(PimConfig::with_dpus(896))
        .with_history(&history, 8)
        .with_batch_capacity(BatchCapacity {
            batch_size: 64,
            nprobe: 16,
            max_k: 50,
        })
        .build();

    // ------------------------------------------------------------------
    // 2. The traffic: a Poisson stream where 30 % of queries repeat earlier
    //    ones (RAG streams re-ask popular questions), with three traffic
    //    classes mixing per-query k and nprobe.
    // ------------------------------------------------------------------
    let stream = StreamSpec::new(600, 300.0)
        .with_repeat_fraction(0.3)
        .generate(&dataset);
    println!(
        "Replaying {} queries over {:.1} s of simulated time ({:.0} offered QPS) ...",
        stream.len(),
        stream.duration(),
        stream.offered_qps()
    );

    // Interactive queries carry a latency budget instead of an nprobe; the
    // adaptive policy translates budget -> nprobe (tighter budget, fewer
    // probes). Bulk queries pin their parameters explicitly.
    let nprobe_policy = NprobePolicy::new(2, 16, 2e-3);
    let options_of = |i: usize| -> QueryOptions {
        match i % 3 {
            // Interactive tier: k=10, 12 ms budget -> policy picks nprobe.
            0 => {
                let opt = QueryOptions::new(10, 16).with_latency_budget(12e-3);
                QueryOptions {
                    nprobe: nprobe_policy.select(opt.nprobe, opt.latency_budget_s),
                    ..opt
                }
            }
            // Standard tier: k=10, nprobe=8.
            1 => QueryOptions::new(10, 8),
            // Re-ranking tier: deep k=50 at full probe width.
            _ => QueryOptions::new(50, 16),
        }
    };

    // ------------------------------------------------------------------
    // 3. The service: bounded admission, dynamic batching, result cache.
    // ------------------------------------------------------------------
    let mut service = SearchService::new(
        engine,
        ServiceConfig {
            queue_capacity: 512,
            batcher: BatchFormerConfig {
                max_batch: 128,
                max_delay_s: 250e-3,
            },
            cache_capacity: 256,
            cache_lookup_s: 2e-6,
            slo_p99_s: None,
            max_chunk: None,
        },
    );
    let report = service.replay(&stream, options_of);

    println!();
    println!("Engine:          {}", report.engine);
    println!(
        "Completed:       {} of {} ({} shed at admission)",
        report.completed,
        stream.len(),
        report.shed
    );
    println!("Sustained QPS:   {:.1}", report.sustained_qps());
    println!(
        "Latency:         p50 {:.1} ms | p99 {:.1} ms | mean {:.1} ms",
        report.p50() * 1e3,
        report.p99() * 1e3,
        report.mean_latency() * 1e3
    );
    println!(
        "Batches:         {} total ({} size-closed, {} deadline-closed, {} flushed), {:.1} queries/batch",
        report.batches(),
        report.size_closed_batches,
        report.deadline_closed_batches,
        report.flushed_batches,
        report.mean_batch_size()
    );
    println!(
        "Result cache:    {:.1}% hit rate ({} hits / {} lookups)",
        report.cache_hit_rate() * 100.0,
        report.cache_hits,
        report.cache_hits + report.cache_misses
    );

    // Per-class answer sizes prove per-query k was honored end to end.
    let k_of = |i: usize| report.results[i].len();
    let interactive = (0..stream.len()).step_by(3).find(|&i| !report.results[i].is_empty());
    let deep = (2..stream.len()).step_by(3).find(|&i| !report.results[i].is_empty());
    if let (Some(a), Some(b)) = (interactive, deep) {
        println!(
            "Per-query k:     interactive query #{a} got {} neighbors, re-ranking query #{b} got {}",
            k_of(a),
            k_of(b)
        );
    }

    // ------------------------------------------------------------------
    // 4. The SLO controller: same engine and traffic, but the batching
    //    window is chosen by a closed loop targeting a p99 SLO instead of a
    //    hand-tuned constant (see the `serve` binary for the full
    //    fixed-vs-adaptive sweep across every engine, multihost included).
    // ------------------------------------------------------------------
    let slo_s = 4.0;
    let engine = service.into_engine();
    let mut adaptive = SearchService::new(
        engine,
        ServiceConfig {
            queue_capacity: 512,
            batcher: BatchFormerConfig {
                max_batch: 128,
                max_delay_s: 250e-3,
            },
            cache_capacity: 256,
            cache_lookup_s: 2e-6,
            slo_p99_s: Some(slo_s),
            max_chunk: None,
        },
    )
    .with_policy(Box::new(SloController::for_slo(slo_s)));
    let adaptive_report = adaptive.replay(&stream, options_of);
    println!();
    println!(
        "SLO controller:  policy '{}' targeting p99 <= {:.0} ms",
        adaptive_report.policy,
        slo_s * 1e3
    );
    println!(
        "Attainment:      p99 {:.1} ms | {:.1}% of queries missed the SLO | SLO {}",
        adaptive_report.p99() * 1e3,
        adaptive_report.slo_miss_fraction() * 100.0,
        if adaptive_report.meets_slo() { "met" } else { "MISSED" }
    );
    println!(
        "Controller:      {} adjustments, settled on max_batch={} / max_delay {:.1} ms",
        adaptive_report.controller_adjustments,
        adaptive_report.final_batcher.max_batch,
        adaptive_report.final_batcher.max_delay_s * 1e3
    );

    // ------------------------------------------------------------------
    // 5. Multi-tenant serving: two traffic classes with their own rates,
    //    option mixes, weights and SLOs share the engine. A ControllerBank
    //    gives each tenant its own SLO-steered batching window, and the
    //    report breaks attainment down per tenant (see the `serve` binary's
    //    --tenants flag for the committed two-tenant benchmark).
    // ------------------------------------------------------------------
    let tenant_stream = MultiTenantSpec::new()
        .with_tenant(
            TenantSpec::new(TenantId(1), StreamSpec::new(120, 6.0).with_slo_p99(2.0))
                .with_name("interactive")
                .with_weight(2)
                .with_option_mix(vec![(10, 4)]),
        )
        .with_tenant(
            TenantSpec::new(TenantId(2), StreamSpec::new(360, 18.0).with_slo_p99(20.0))
                .with_name("bulk")
                .with_option_mix(vec![(10, 8), (20, 8)]),
        )
        .generate(&dataset);
    let bank = ControllerBank::for_profiles(
        &tenant_stream.tenant_profiles,
        BatchFormerConfig::default(),
    );
    let mut tenant_service = SearchService::new(
        adaptive.into_engine(),
        ServiceConfig {
            queue_capacity: 512,
            batcher: BatchFormerConfig::default(),
            cache_capacity: 256,
            cache_lookup_s: 2e-6,
            slo_p99_s: None, // each tenant is measured against its own SLO
            // Priority-chunked dispatch: bulk batches hit the engine in
            // chunks of ≤ 32 queries, earliest SLO deadline first, so the
            // interactive tenant never waits out a whole bulk batch.
            max_chunk: Some(32),
        },
    )
    .with_policy(Box::new(bank));
    let tenant_report = tenant_service.replay_planned(&tenant_stream);
    println!();
    println!(
        "Multi-tenant:    policy '{}', {} tenants, {} queries ({} shed)",
        tenant_report.policy,
        tenant_report.tenants.len(),
        tenant_report.completed + tenant_report.shed,
        tenant_report.shed,
    );
    println!(
        "Dispatch:        {} batches hit the engine as {} chunks ({} bulk batches split) — \
         the interactive tenant never waits out a whole bulk batch",
        tenant_report.batches(),
        tenant_report.dispatched_chunks,
        tenant_report.split_batches,
    );
    for t in &tenant_report.tenants {
        println!(
            "  {:<12} weight {} | SLO {:>6.0} ms | p99 {:>8.1} ms | miss {:>5.1}% | window {:>7.1} ms | {}",
            t.name,
            t.weight,
            t.slo_p99_s.unwrap_or(f64::NAN) * 1e3,
            t.p99() * 1e3,
            t.slo_miss_fraction() * 100.0,
            t.final_batcher.max_delay_s * 1e3,
            if t.meets_slo() { "SLO met" } else { "SLO MISSED" },
        );
    }
}
