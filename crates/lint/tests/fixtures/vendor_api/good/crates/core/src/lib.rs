//! Fixture: every vendor path appears in the stub's API manifest.

use rand::Rng;

pub fn unit<R: Rng>(rng: &mut R) -> f64 {
    rng.gen()
}
