//! Cross-crate integration tests: the full offline + online pipeline on a
//! small synthetic dataset, comparing every engine in the repository.

use annkit::flat::FlatIndex;
use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::recall::recall_at_k;
use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
use annkit::vector::Dataset;
use annkit::workload::WorkloadSpec;
use baselines::cpu::CpuFaissEngine;
use baselines::engine::AnnEngine;
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use std::sync::OnceLock;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;

struct Fixture {
    dataset: SyntheticDataset,
    index: IvfPqIndex,
    history: Dataset,
    queries: Dataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = SyntheticSpec::sift_like(4_000)
            .with_clusters(24)
            .with_seed(123)
            .generate_with_meta();
        let index = IvfPqIndex::train(
            &dataset.vectors,
            &IvfPqParams::new(32, 16).with_train_size(1_500),
            9,
        );
        let history = WorkloadSpec::new(300).with_seed(1).generate(&dataset).queries;
        let queries = WorkloadSpec::new(24).with_seed(2).generate(&dataset).queries;
        Fixture {
            dataset,
            index,
            history,
            queries,
        }
    })
}

fn pim_engine(config: UpAnnsConfig) -> UpAnnsEngine {
    let fix = fixture();
    UpAnnsBuilder::new(&fix.index)
        .with_config(config)
        .with_pim_config(PimConfig::with_dpus(32))
        .with_history(&fix.history, 8)
        .with_batch_capacity(BatchCapacity {
            batch_size: 32,
            nprobe: 8,
            max_k: 20,
        })
        .build()
}

#[test]
fn all_engines_return_identical_neighbor_sets() {
    let fix = fixture();
    let nprobe = 6;
    let k = 10;
    let mut cpu = CpuFaissEngine::new(&fix.index);
    let mut gpu = GpuFaissEngine::new(&fix.index);
    let mut naive = pim_engine(UpAnnsConfig::pim_naive());
    let mut upanns = pim_engine(UpAnnsConfig::upanns());

    let reference = cpu.search_batch(&fix.queries, nprobe, k);
    for outcome in [
        gpu.search_batch(&fix.queries, nprobe, k),
        naive.search_batch(&fix.queries, nprobe, k),
        upanns.search_batch(&fix.queries, nprobe, k),
    ] {
        assert_eq!(outcome.results.len(), reference.results.len());
        for (a, b) in outcome.results.iter().zip(&reference.results) {
            let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
            // UpANNS with CAE sums floats in a different order, so allow the
            // rare tie-induced swap but require (near-)identical sets.
            let overlap = ids_a.iter().filter(|id| ids_b.contains(id)).count();
            assert!(
                overlap + 1 >= ids_b.len(),
                "neighbor sets diverge: {ids_a:?} vs {ids_b:?}"
            );
        }
    }
}

#[test]
fn optimizations_do_not_change_recall() {
    // §5.1: "The optimizations in UpANNS do not impact the accuracy."
    let fix = fixture();
    let k = 10;
    let exact = FlatIndex::new(&fix.dataset.vectors).search_batch(&fix.queries, k);
    let mut cpu = CpuFaissEngine::new(&fix.index);
    let mut upanns = pim_engine(UpAnnsConfig::upanns());
    let r_cpu = recall_at_k(&cpu.search_batch(&fix.queries, 8, k).results, &exact, k);
    let r_up = recall_at_k(&upanns.search_batch(&fix.queries, 8, k).results, &exact, k);
    assert!((r_cpu - r_up).abs() < 0.05, "recall {r_cpu} vs {r_up}");
    assert!(r_up > 0.4, "recall unexpectedly low: {r_up}");
}

#[test]
fn recall_tracks_cpu_reference_across_nprobe() {
    // §5.1: "The optimizations in UpANNS do not impact the accuracy."
    // The meaningful property at this fixture scale is that UpANNS recall
    // (a) never degrades as nprobe grows, (b) matches the Faiss-CPU reference
    // on the *same* index at every nprobe, and (c) sits above a floor set by
    // the IVFPQ-ADC quantization ceiling (no re-ranking), not by the engine.
    let fix = fixture();
    let k = 10;
    let exact = FlatIndex::new(&fix.dataset.vectors).search_batch(&fix.queries, k);
    let mut engine = pim_engine(UpAnnsConfig::upanns());
    let mut cpu = CpuFaissEngine::new(&fix.index);
    let mut previous = 0.0f64;
    for nprobe in [2usize, 8, 16] {
        let r_cpu = recall_at_k(&cpu.search_batch(&fix.queries, nprobe, k).results, &exact, k);
        let r_up = recall_at_k(&engine.search_batch(&fix.queries, nprobe, k).results, &exact, k);
        assert!(
            (r_cpu - r_up).abs() < 0.02,
            "UpANNS recall diverges from CPU reference at nprobe={nprobe}: {r_cpu} vs {r_up}"
        );
        assert!(
            r_up + 1e-9 >= previous,
            "recall degraded with more probes: {previous} -> {r_up} at nprobe={nprobe}"
        );
        previous = r_up;
    }
    assert!(
        previous > 0.5,
        "recall@10 at nprobe=16/32 below the ADC quantization floor: {previous}"
    );
}

#[test]
fn simulated_time_is_deterministic_across_runs() {
    let fix = fixture();
    let mut a = pim_engine(UpAnnsConfig::upanns());
    let mut b = pim_engine(UpAnnsConfig::upanns());
    let out_a = a.search_batch(&fix.queries, 6, 10);
    let out_b = b.search_batch(&fix.queries, 6, 10);
    assert_eq!(out_a.seconds, out_b.seconds);
    assert_eq!(out_a.stats.candidates_scanned, out_b.stats.candidates_scanned);
    for (x, y) in out_a.results.iter().zip(&out_b.results) {
        assert_eq!(
            x.iter().map(|n| n.id).collect::<Vec<_>>(),
            y.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
}

#[test]
fn upanns_outperforms_pim_naive_under_projection() {
    let fix = fixture();
    let scale = 1e5;
    let mut upanns = pim_engine(UpAnnsConfig::upanns().with_work_scale(scale));
    let mut naive = pim_engine(UpAnnsConfig::pim_naive().with_work_scale(scale));
    let u = upanns.search_batch(&fix.queries, 8, 10);
    let n = naive.search_batch(&fix.queries, 8, 10);
    assert!(
        u.qps() > n.qps(),
        "UpANNS {} should beat PIM-naive {}",
        u.qps(),
        n.qps()
    );
    assert!(upanns.last_balance_ratio() <= naive.last_balance_ratio() + 1e-9);
}

#[test]
fn energy_models_match_table1_expectations() {
    let fix = fixture();
    let cpu = CpuFaissEngine::new(&fix.index);
    let gpu = GpuFaissEngine::new(&fix.index);
    let pim = pim_engine(UpAnnsConfig::upanns());
    assert_eq!(cpu.energy_model().peak_watts, 190.0);
    assert_eq!(gpu.energy_model().peak_watts, 300.0);
    // 32 DPUs = a quarter of a DIMM worth of power.
    assert!(pim.energy_model().peak_watts < 10.0);
}

#[test]
fn batch_size_amortizes_fixed_costs() {
    let fix = fixture();
    let mut engine = pim_engine(UpAnnsConfig::upanns());
    let small = fix.dataset.vectors.gather(&[0, 1]);
    let large = fix.queries.clone();
    let lat_small = engine.search_batch(&small, 6, 10).mean_latency();
    let lat_large = engine.search_batch(&large, 6, 10).mean_latency();
    assert!(
        lat_large < lat_small,
        "per-query latency should drop with batch size: {lat_small} -> {lat_large}"
    );
}
