//! The admission queue: a bounded waiting room in front of the batch former.
//!
//! Under overload, queueing theory leaves two options: let the queue (and
//! therefore the tail latency) grow without bound, or shed load at the door.
//! The service sheds: a query is admitted only while fewer than `capacity`
//! queries are waiting for a batch; everyone else is rejected immediately,
//! which keeps the latency of *admitted* queries bounded by the batching
//! delay plus the engine backlog.

/// Bounded admission accounting for queries waiting to be batched.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    waiting: usize,
    admitted: u64,
    shed: u64,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` concurrent waiters.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a service that admits nothing).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        Self {
            capacity,
            waiting: 0,
            admitted: 0,
            shed: 0,
        }
    }

    /// Tries to admit one query. Returns `false` (and counts a shed) when
    /// the waiting room is full.
    pub fn try_admit(&mut self) -> bool {
        if self.waiting < self.capacity {
            self.waiting += 1;
            self.admitted += 1;
            true
        } else {
            self.shed += 1;
            false
        }
    }

    /// Releases `n` waiters (a formed batch left for the engine).
    ///
    /// # Panics
    /// Panics if more waiters are released than were admitted.
    pub fn release(&mut self, n: usize) {
        assert!(n <= self.waiting, "released more queries than are waiting");
        self.waiting -= n;
    }

    /// Queries currently waiting.
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// Maximum concurrent waiters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queries admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total queries shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_capacity_then_sheds() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.try_admit());
        assert!(q.try_admit());
        assert!(!q.try_admit(), "third concurrent waiter must be shed");
        assert_eq!((q.waiting(), q.admitted(), q.shed()), (2, 2, 1));

        q.release(1);
        assert!(q.try_admit(), "capacity freed by release");
        assert_eq!(q.waiting(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "more queries than are waiting")]
    fn over_release_is_a_bug() {
        let mut q = AdmissionQueue::new(4);
        q.try_admit();
        q.release(2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = AdmissionQueue::new(0);
    }
}
