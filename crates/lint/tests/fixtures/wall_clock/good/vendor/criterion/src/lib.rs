//! Fixture: the vendored criterion shim is allowlisted for wall-clock use.

pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed()
}
