//! Skewed query workload generation.
//!
//! The UpANNS evaluation stresses that real query streams are heavily skewed:
//! popular clusters receive up to 500× more queries than unpopular ones
//! (Figure 4a), which is what makes the PIM-aware data placement (Opt1)
//! necessary. This module generates query batches whose *cluster popularity*
//! follows a Zipf distribution over the generative clusters, plus helpers to
//! measure the resulting access-frequency histogram.

use crate::synthetic::SyntheticDataset;
use crate::vector::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a query workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Zipf exponent of cluster popularity (0 = uniform; ≈1.0 reproduces the
    /// several-hundred-fold skew of Figure 4a at reduced scale).
    pub popularity_skew: f64,
    /// Additional perturbation applied to a query relative to the sampled
    /// base vector, as a fraction of the dataset's within-cluster noise.
    pub query_noise: f32,
    /// RNG seed for query sampling.
    pub seed: u64,
    /// Seed of the cluster-popularity ranking. Two workloads with different
    /// `seed`s but the same `popularity_seed` draw different queries from the
    /// *same* popularity distribution — which is how real query streams
    /// behave (the paper: "query patterns typically change ... incrementally").
    /// Change this seed to model a major pattern shift.
    pub popularity_seed: u64,
}

impl WorkloadSpec {
    /// A workload of `num_queries` queries with the default (paper-like) skew.
    pub fn new(num_queries: usize) -> Self {
        Self {
            num_queries,
            popularity_skew: 1.0,
            query_noise: 0.5,
            seed: 0xBEEF,
            popularity_seed: 0x9_0DD,
        }
    }

    /// Overrides the popularity skew exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.popularity_skew = skew;
        self
    }

    /// Overrides the RNG seed (which queries get sampled).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the popularity-ranking seed (which clusters are hot) — use
    /// this to model a major query-pattern shift.
    pub fn with_popularity_seed(mut self, seed: u64) -> Self {
        self.popularity_seed = seed;
        self
    }

    /// Generates a query batch against a synthetic dataset: each query picks a
    /// cluster by Zipf popularity, then perturbs a random member of that
    /// cluster.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryBatch {
        assert!(self.num_queries > 0, "workload must contain queries");
        let k = dataset.centers.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Zipf popularity over clusters; cluster ranks are shuffled so that
        // popularity is independent of both cluster id and cluster size
        // (matching the paper's observation that hot clusters are not simply
        // the big ones). The shuffle uses the dedicated popularity seed so
        // workloads drawn with different sampling seeds share a popularity
        // distribution unless the caller shifts it deliberately.
        let mut pop_rng = SmallRng::seed_from_u64(self.popularity_seed);
        let mut rank_of: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = pop_rng.gen_range(0..=i);
            rank_of.swap(i, j);
        }
        let weights: Vec<f64> = (0..k)
            .map(|c| 1.0 / ((rank_of[c] + 1) as f64).powf(self.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();

        // Pre-index members per cluster for sampling.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in dataset.cluster_of.iter().enumerate() {
            members[c].push(i);
        }

        let dim = dataset.vectors.dim();
        let noise = self.query_noise * cluster_noise_estimate(dataset);
        let mut queries = Dataset::with_capacity(dim, self.num_queries);
        let mut target_cluster = Vec::with_capacity(self.num_queries);
        let mut v = vec![0.0f32; dim];

        for _ in 0..self.num_queries {
            // Sample a cluster proportionally to its weight.
            let mut t = rng.gen::<f64>() * total;
            let mut chosen = k - 1;
            for (c, w) in weights.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            // Fall back to the cluster center when a cluster has no members
            // (cannot happen with the default generator, but keeps the API
            // robust for hand-built datasets).
            let base: &[f32] = if members[chosen].is_empty() {
                dataset.centers.vector(chosen)
            } else {
                let m = members[chosen][rng.gen_range(0..members[chosen].len())];
                dataset.vectors.vector(m)
            };
            for (x, b) in v.iter_mut().zip(base) {
                *x = b + rng.gen_range(-1.0f32..1.0) * noise;
            }
            queries.push(&v);
            target_cluster.push(chosen);
        }

        QueryBatch {
            queries,
            target_cluster,
        }
    }
}

/// A generated batch of queries plus the generative cluster each was aimed at.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The query vectors.
    pub queries: Dataset,
    /// The generative cluster each query was sampled from (ground truth for
    /// skew analysis; engines never see this).
    pub target_cluster: Vec<usize>,
}

impl QueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Histogram of target-cluster popularity (Figure 4a's access-frequency
    /// distribution), indexed by cluster id.
    pub fn access_frequency(&self, num_clusters: usize) -> Vec<usize> {
        let mut freq = vec![0usize; num_clusters];
        for &c in &self.target_cluster {
            if c < num_clusters {
                freq[c] += 1;
            }
        }
        freq
    }

    /// Max/min (non-zero) ratio of the access-frequency histogram — the skew
    /// statistic quoted in the paper ("popular clusters receive 500× more
    /// queries than others").
    pub fn access_skew_ratio(&self, num_clusters: usize) -> f64 {
        let freq = self.access_frequency(num_clusters);
        let max = freq.iter().copied().max().unwrap_or(0);
        let min = freq.iter().copied().filter(|&f| f > 0).min().unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Per-cluster access frequencies normalized to probabilities, as used by the
/// data-placement algorithm (its `f_i` input). Computed from a *historical*
/// query batch, mirroring how the paper derives frequencies from past
/// workload.
pub fn cluster_frequencies(batch: &QueryBatch, num_clusters: usize) -> Vec<f64> {
    let freq = batch.access_frequency(num_clusters);
    let total: usize = freq.iter().sum();
    if total == 0 {
        return vec![1.0 / num_clusters as f64; num_clusters];
    }
    freq.iter().map(|&f| f as f64 / total as f64).collect()
}

/// Rough estimate of within-cluster spread used to scale query perturbation.
fn cluster_noise_estimate(dataset: &SyntheticDataset) -> f32 {
    // Use the average absolute deviation of a small sample of vectors from
    // their cluster center.
    let sample = dataset.vectors.len().min(200);
    if sample == 0 {
        return 1.0;
    }
    let dim = dataset.vectors.dim();
    let mut total = 0.0f64;
    for i in 0..sample {
        let c = dataset.cluster_of[i];
        let v = dataset.vectors.vector(i);
        let center = dataset.centers.vector(c);
        let dev: f32 = v
            .iter()
            .zip(center)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / dim as f32;
        total += dev as f64;
    }
    (total / sample as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticSpec::sift_like(1200)
            .with_clusters(24)
            .with_seed(2)
            .generate_with_meta()
    }

    #[test]
    fn generates_requested_queries() {
        let ds = dataset();
        let batch = WorkloadSpec::new(300).with_seed(1).generate(&ds);
        assert_eq!(batch.len(), 300);
        assert!(!batch.is_empty());
        assert_eq!(batch.queries.dim(), 128);
        assert_eq!(batch.target_cluster.len(), 300);
    }

    #[test]
    fn skewed_workload_is_more_imbalanced_than_uniform() {
        let ds = dataset();
        let skewed = WorkloadSpec::new(2000).with_skew(1.2).with_seed(3).generate(&ds);
        let uniform = WorkloadSpec::new(2000).with_skew(0.0).with_seed(3).generate(&ds);
        assert!(
            skewed.access_skew_ratio(24) > 3.0 * uniform.access_skew_ratio(24).max(1.0),
            "skewed {} vs uniform {}",
            skewed.access_skew_ratio(24),
            uniform.access_skew_ratio(24)
        );
    }

    #[test]
    fn frequencies_sum_to_one() {
        let ds = dataset();
        let batch = WorkloadSpec::new(500).with_seed(7).generate(&ds);
        let freqs = cluster_frequencies(&batch, 24);
        assert_eq!(freqs.len(), 24);
        let sum: f64 = freqs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(freqs.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn empty_history_falls_back_to_uniform_frequencies() {
        let batch = QueryBatch {
            queries: Dataset::new(4),
            target_cluster: vec![],
        };
        let freqs = cluster_frequencies(&batch, 10);
        assert!(freqs.iter().all(|&f| (f - 0.1).abs() < 1e-12));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = dataset();
        let a = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        let b = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.target_cluster, b.target_cluster);
    }
}
