//! Property-based tests (proptest) over the serving layer: the dynamic
//! batch former, the result cache, the admission queue, and the SLO
//! controller's convergence.
//!
//! The properties mirror the contracts the [`SearchService`] replay loop
//! relies on: the former never over-fills or over-waits a batch and never
//! mixes incompatible options; the cache is a faithful LRU that never
//! answers from the future; admission accounting balances; and the
//! controller settles its observed p99 inside the SLO band.

use annkit::topk::Neighbor;
use annkit::workload::TenantId;
use baselines::engine::QueryOptions;
use proptest::prelude::*;
use upanns_serve::admission::AdmissionQueue;
use upanns_serve::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
use upanns_serve::cache::ResultCache;
use upanns_serve::controller::{BatchPolicy, SloController, SloControllerConfig};

/// The small universe of per-query option mixes the properties draw from
/// (three compat keys; the budget variant of key 0 must share its group).
fn option_of(tag: u8) -> QueryOptions {
    match tag % 4 {
        0 => QueryOptions::new(10, 8),
        1 => QueryOptions::new(10, 4),
        2 => QueryOptions::new(20, 8),
        _ => QueryOptions::new(10, 8).with_latency_budget(5e-3),
    }
}

/// Replays a byte-encoded arrival sequence through a former exactly the way
/// the service does (deadlines drained before each arrival, flush at the
/// end), returning every formed batch plus the final clock.
fn drive_former(
    config: BatchFormerConfig,
    encoded: &[u8],
    gap_scale: f64,
) -> (Vec<FormedBatch>, f64) {
    let mut former = BatchFormer::new(config);
    let mut batches = Vec::new();
    let mut now = 0.0f64;
    for (i, &b) in encoded.iter().enumerate() {
        // High bits: inter-arrival gap; low bits: which options mix.
        now += (b >> 3) as f64 * gap_scale;
        while let Some(deadline) = former.next_deadline() {
            if deadline > now {
                break;
            }
            batches.extend(former.due(deadline));
        }
        let pending = PendingQuery {
            arrival_s: now,
            stream_index: i,
            options: option_of(b),
        };
        if let Some(batch) = former.push(pending, now) {
            batches.push(batch);
        }
    }
    batches.extend(former.flush(now));
    (batches, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No formed batch ever exceeds the size cap, however the arrivals and
    /// option mixes interleave.
    #[test]
    fn former_never_exceeds_the_size_cap(
        encoded in prop::collection::vec(0u8..=255, 1..300),
        max_batch in 1usize..12,
    ) {
        let config = BatchFormerConfig { max_batch, max_delay_s: 4e-3 };
        let (batches, _) = drive_former(config, &encoded, 1e-3);
        for batch in &batches {
            prop_assert!(batch.len() <= max_batch, "batch of {} > cap {}", batch.len(), max_batch);
            prop_assert!(!batch.is_empty(), "the former never emits empty batches");
        }
        // Conservation: every admitted query leaves in exactly one batch.
        let mut seen: Vec<usize> = batches
            .iter()
            .flat_map(|b| b.members.iter().map(|m| m.stream_index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..encoded.len()).collect::<Vec<_>>());
    }

    /// No query waits in the former past `max_delay` (plus the close-slack of
    /// the size trigger firing exactly at the cap), except queries flushed at
    /// stream end, whose wait is bounded by the stream itself.
    #[test]
    fn former_never_overholds_a_query(
        encoded in prop::collection::vec(0u8..=255, 1..300),
        max_batch in 1usize..12,
        delay_ms in 1.0f64..20.0,
    ) {
        let max_delay_s = delay_ms * 1e-3;
        let config = BatchFormerConfig { max_batch, max_delay_s };
        let (batches, end) = drive_former(config, &encoded, 1e-3);
        for batch in &batches {
            prop_assert!(batch.closed_at + 1e-12 >= batch.opened_at);
            match batch.reason {
                CloseReason::Deadline => {
                    // A deadline close is backdated to the deadline itself.
                    prop_assert!(
                        (batch.closed_at - (batch.opened_at + max_delay_s)).abs() < 1e-12
                    );
                }
                CloseReason::Size => {
                    // A size close happens no later than the group's deadline
                    // (overdue groups are drained before every push).
                    prop_assert!(batch.closed_at <= batch.opened_at + max_delay_s + 1e-12);
                }
                CloseReason::Flush => {
                    prop_assert!(batch.closed_at <= end + 1e-12);
                }
            }
            for member in &batch.members {
                prop_assert!(member.arrival_s + 1e-12 >= batch.opened_at);
                prop_assert!(member.arrival_s <= batch.closed_at + 1e-12);
                if batch.reason != CloseReason::Flush {
                    prop_assert!(
                        batch.closed_at - member.arrival_s <= max_delay_s + 1e-12,
                        "query waited {} s with max_delay {} s",
                        batch.closed_at - member.arrival_s,
                        max_delay_s
                    );
                }
            }
        }
    }

    /// Compat-key grouping never mixes incompatible options, and within a
    /// batch the members drain in admission order.
    #[test]
    fn former_groups_are_pure_and_ordered(
        encoded in prop::collection::vec(0u8..=255, 1..300),
        max_batch in 1usize..12,
    ) {
        let config = BatchFormerConfig { max_batch, max_delay_s: 3e-3 };
        let (batches, _) = drive_former(config, &encoded, 1e-3);
        for batch in &batches {
            let key = batch.options.compat_key();
            for member in &batch.members {
                prop_assert_eq!(member.options.compat_key(), key);
            }
            for pair in batch.members.windows(2) {
                prop_assert!(
                    pair[0].stream_index < pair[1].stream_index,
                    "admission order violated within a group"
                );
                prop_assert!(pair[0].arrival_s <= pair[1].arrival_s + 1e-12);
            }
        }
    }

    /// The cache is a faithful LRU: hits/misses and evictions match a naive
    /// reference model, and the size never exceeds the capacity.
    #[test]
    fn cache_matches_a_reference_lru(
        ops in prop::collection::vec(0u8..=255, 1..200),
        capacity in 1usize..6,
    ) {
        let mut cache = ResultCache::new(capacity);
        // Reference model: most-recently-used at the back.
        let mut model: Vec<u8> = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let key = op % 8;
            let query = [key as f32];
            let options = QueryOptions::new(10, 8);
            if op & 0x80 == 0 {
                // Insert: refresh recency, evict the front when full.
                cache.insert(&query, &options, vec![Neighbor::new(key as u64, 0.0)], i as f64);
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                } else if model.len() == capacity {
                    model.remove(0);
                }
                model.push(key);
            } else {
                let hit = cache.lookup(&query, &options);
                match model.iter().position(|&k| k == key) {
                    Some(pos) => {
                        let (neighbors, _) = hit.expect("model says hit");
                        prop_assert_eq!(neighbors[0].id, key as u64);
                        model.remove(pos);
                        model.push(key); // a hit refreshes recency
                    }
                    None => prop_assert!(hit.is_none(), "model says miss"),
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// A cached answer always reports the exact availability time it was
    /// stored with — the `ready_at` a repeat must wait for (the time-travel
    /// guard), surviving overwrites by repeated queries.
    #[test]
    fn cache_ready_at_is_faithful_under_repeats(
        rounds in prop::collection::vec(0u8..=255, 1..60),
    ) {
        let mut cache = ResultCache::new(16);
        let options = QueryOptions::new(5, 4);
        let mut expected: Vec<Option<f64>> = vec![None; 4];
        for (i, &op) in rounds.iter().enumerate() {
            let key = (op % 4) as usize;
            let query = [key as f32];
            let t = i as f64;
            if op & 0x80 == 0 {
                // Re-answering the same query overwrites ready_at.
                cache.insert(&query, &options, vec![Neighbor::new(key as u64, 0.0)], t);
                expected[key] = Some(t);
            } else if let Some((_, ready_at)) = cache.lookup(&query, &options) {
                let want = expected[key].expect("cache cannot invent entries");
                prop_assert_eq!(ready_at, want);
                prop_assert!(ready_at <= t, "an entry can only become ready in the past of its insertion clock");
            }
        }
    }

    /// Single-tenant admission accounting balances under arbitrary
    /// admit/release interleavings, and the waiting count respects the
    /// capacity. With one tenant the DRR machinery must degenerate to the
    /// plain bounded waiting room: room available ⟺ admitted.
    #[test]
    fn admission_queue_accounting_balances(
        ops in prop::collection::vec(0u8..=255, 1..300),
        capacity in 1usize..20,
    ) {
        let t = TenantId::DEFAULT;
        let mut queue = AdmissionQueue::new(capacity);
        let mut waiting = 0usize;
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for &op in &ops {
            if op & 1 == 0 {
                let got_in = queue.try_admit(t);
                if waiting < capacity {
                    prop_assert!(got_in, "room available but shed");
                    waiting += 1;
                    admitted += 1;
                } else {
                    prop_assert!(!got_in, "admitted past capacity");
                    shed += 1;
                }
            } else {
                // Release a batch of up to 7 waiters (never more than exist).
                let n = ((op >> 1) as usize % 8).min(waiting);
                queue.release(t, n);
                waiting -= n;
            }
            prop_assert!(queue.waiting() <= capacity);
            prop_assert_eq!(queue.waiting(), waiting);
            prop_assert_eq!(queue.admitted(), admitted);
            prop_assert_eq!(queue.shed(), shed);
        }
    }

    /// Weighted-fair admission conserves slots exactly: at every step,
    /// waiting + reserved + free == capacity, per-tenant accounting balances,
    /// and an arrival is shed only when its tenant holds no reservation and
    /// the free pool is empty (work conservation — free room is never
    /// withheld from anyone). Admissions come only from a reservation, the
    /// free pool, or the staleness valve reclaiming reservations after
    /// `capacity` consecutive sheds.
    #[test]
    fn weighted_admission_conserves_slots_and_free_room(
        ops in prop::collection::vec(0u16..=1023, 1..400),
        capacity in 1usize..24,
        weights in prop::collection::vec(1u32..6, 3),
    ) {
        let tenants = [TenantId(1), TenantId(2), TenantId(3)];
        let mut queue = AdmissionQueue::new(capacity);
        for (t, w) in tenants.iter().zip(&weights) {
            queue.register(*t, *w);
        }
        let mut waiting = [0usize; 3];
        let mut admitted = [0u64; 3];
        let mut shed = [0u64; 3];
        // Model of the staleness valve's clock: sheds since the last
        // admission or reservation grant.
        let mut stale_sheds = 0usize;
        for &op in &ops {
            let ti = (op % 3) as usize;
            let t = tenants[ti];
            if op & 0x200 == 0 {
                let free_before = queue.free();
                let reserved_before = queue.reserved_of(t);
                let all_reserved_before: usize =
                    tenants.iter().map(|&t| queue.reserved_of(t)).sum();
                let got_in = queue.try_admit(t);
                if got_in {
                    waiting[ti] += 1;
                    admitted[ti] += 1;
                    prop_assert!(
                        reserved_before > 0
                            || free_before > 0
                            || (stale_sheds >= capacity && all_reserved_before > 0),
                        "admitted out of thin air"
                    );
                    stale_sheds = 0;
                } else {
                    shed[ti] += 1;
                    stale_sheds += 1;
                    prop_assert_eq!(free_before, 0, "shed while free room existed");
                    prop_assert_eq!(reserved_before, 0, "shed past its own reservation");
                }
            } else {
                let n = (((op >> 2) as usize) % 8).min(waiting[ti]);
                let reserved_before: usize =
                    tenants.iter().map(|&t| queue.reserved_of(t)).sum();
                queue.release(t, n);
                waiting[ti] -= n;
                let reserved_after: usize =
                    tenants.iter().map(|&t| queue.reserved_of(t)).sum();
                if reserved_after > reserved_before {
                    stale_sheds = 0; // fresh grants restart the valve's clock
                }
            }
            // Slot conservation across waiting, reservations and free pool.
            let reserved_total: usize =
                tenants.iter().map(|&t| queue.reserved_of(t)).sum();
            prop_assert_eq!(
                queue.waiting() + reserved_total + queue.free(),
                capacity,
                "slots leaked"
            );
            for (i, &t) in tenants.iter().enumerate() {
                prop_assert_eq!(queue.waiting_of(t), waiting[i]);
                prop_assert_eq!(queue.admitted_of(t), admitted[i]);
                prop_assert_eq!(queue.shed_of(t), shed[i]);
            }
        }
    }

    /// Under saturation — every tenant continuously arriving and shedding —
    /// freed capacity is re-admitted in proportion to the tenants' weights:
    /// post-warmup admission ratios match weight ratios within 20 %.
    #[test]
    fn weighted_admission_is_weight_proportional_under_saturation(
        w1 in 1u32..6,
        w2 in 1u32..6,
        release_size in 1usize..5,
    ) {
        let (t1, t2) = (TenantId(1), TenantId(2));
        let capacity = 24usize;
        let mut queue = AdmissionQueue::new(capacity)
            .with_tenant(t1, w1)
            .with_tenant(t2, w2);
        // Fill the room and build backlog on both tenants.
        let mut waiting = [0usize; 2];
        for round in 0..capacity * 2 {
            let ti = round % 2;
            if queue.try_admit([t1, t2][ti]) {
                waiting[ti] += 1;
            }
        }
        // Warm up one full allocation cycle, then measure. Each tenant
        // re-applies at 3× the completion rate so both stay saturated well
        // past their fair shares — proportionality is only promised when
        // every tenant's demand exceeds its entitlement (with thinner
        // demand, the unused share flows to whoever wants it: work
        // conservation trumps the weights).
        let mut admitted_before = [0u64; 2];
        for phase in 0..2 {
            if phase == 1 {
                admitted_before = [queue.admitted_of(t1), queue.admitted_of(t2)];
            }
            for _ in 0..600 {
                // Complete `release_size` waiters of whichever tenant holds
                // more, then both tenants re-apply (and shed on failure).
                let ti = if waiting[0] >= waiting[1] { 0 } else { 1 };
                let n = release_size.min(waiting[ti]);
                queue.release([t1, t2][ti], n);
                waiting[ti] -= n;
                for _ in 0..3 * (n + 1) {
                    for (i, &t) in [t1, t2].iter().enumerate() {
                        if queue.try_admit(t) {
                            waiting[i] += 1;
                        }
                    }
                }
            }
        }
        let a1 = (queue.admitted_of(t1) - admitted_before[0]) as f64;
        let a2 = (queue.admitted_of(t2) - admitted_before[1]) as f64;
        prop_assert!(a1 > 0.0 && a2 > 0.0, "a tenant was starved outright");
        let measured = a1 / a2;
        let expected = f64::from(w1) / f64::from(w2);
        prop_assert!(
            (measured / expected - 1.0).abs() < 0.1,
            "admissions {}:{} = {:.3} vs weights {}:{} = {:.3}",
            a1, a2, measured, w1, w2, expected
        );
    }

    /// No starvation: a weight-1 tenant sharing a saturated queue with a
    /// maximally heavy rival keeps making progress — it is admitted at least
    /// once per DRR round, i.e. at least once per `capacity` completions.
    #[test]
    fn weighted_admission_never_starves_the_light_tenant(
        heavy_weight in 1u32..32,
        capacity in 2usize..16,
    ) {
        let (heavy, light) = (TenantId(1), TenantId(2));
        let mut queue = AdmissionQueue::new(capacity)
            .with_tenant(heavy, heavy_weight)
            .with_tenant(light, 1);
        let mut waiting = [0usize; 2];
        // Saturate: heavy grabs everything, then both backlog.
        while queue.try_admit(heavy) {
            waiting[0] += 1;
        }
        for _ in 0..capacity {
            queue.try_admit(heavy);
            queue.try_admit(light);
        }
        // 20 rounds of single-slot completions with both tenants re-applying.
        let mut light_progress = 0u64;
        for _ in 0..20 * capacity {
            let ti = if waiting[0] >= waiting[1] { 0 } else { 1 };
            if waiting[ti] == 0 {
                continue;
            }
            queue.release([heavy, light][ti], 1);
            waiting[ti] -= 1;
            for (i, &t) in [heavy, light].iter().enumerate() {
                let before = queue.admitted_of(t);
                if queue.try_admit(t) {
                    waiting[i] += 1;
                }
                if i == 1 && queue.admitted_of(t) > before {
                    light_progress += 1;
                }
            }
        }
        prop_assert!(
            light_progress >= 10,
            "light tenant starved: only {light_progress} admissions over 20 rounds"
        );
    }

    /// Convergence: against a synthetic latency model where the observed p99
    /// is proportional to the batching window, the controller settles the
    /// p99 inside the SLO band [grow_below × SLO, SLO] — from below *and*
    /// from above — and stays there.
    #[test]
    fn controller_converges_p99_into_the_slo_band(
        start_fraction in 0.01f64..0.5,
        noise in prop::collection::vec(0.9f64..1.1, 32),
        slo_ms in 20.0f64..500.0,
    ) {
        let slo = slo_ms * 1e-3;
        let config = SloControllerConfig::for_slo(slo);
        let mut controller = SloController::new(
            config,
            upanns_serve::batcher::BatchFormerConfig {
                max_batch: 64,
                max_delay_s: (start_fraction * slo).max(config.min_delay_s),
            },
        );
        // Latency model: p99 ≈ 3 × window (waiting + queueing + execution all
        // scale with the window at a loaded engine that is keeping up).
        let mut now = 0.0f64;
        let mut last_p99 = 0.0f64;
        for _ in 0..60 {
            let window = controller.current().max_delay_s;
            let mut worst = 0.0f64;
            for (j, n) in noise.iter().enumerate() {
                now += config.adjust_interval_s / noise.len() as f64;
                let latency = 3.0 * window * n * (0.97 + 0.03 * (j % 2) as f64);
                worst = worst.max(latency);
                controller.observe(now, latency);
            }
            last_p99 = worst;
        }
        let band_low = config.grow_below * slo;
        prop_assert!(
            last_p99 <= slo * 1.02,
            "p99 {last_p99} settled above the SLO {slo}"
        );
        prop_assert!(
            last_p99 >= band_low * 0.5,
            "p99 {last_p99} settled far below the band floor {band_low} — the controller left throughput on the table"
        );
        // And it holds still once inside the band.
        let settled = controller.current();
        for j in 0..32 {
            now += config.adjust_interval_s / 16.0;
            controller.observe(now, 3.0 * settled.max_delay_s * noise[j % noise.len()]);
        }
        prop_assert_eq!(controller.current().max_batch, settled.max_batch);
    }
}

/// The service-level time-travel guard: a repeat arriving after its
/// original's batch closed but before the answer exists must wait for the
/// answer — its latency includes the remaining execution time.
#[test]
fn repeats_wait_for_the_original_answer() {
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::SyntheticSpec;
    use annkit::workload::StreamSpec;
    use baselines::cpu::CpuFaissEngine;
    use upanns_serve::{SearchService, ServiceConfig};

    let dataset = SyntheticSpec::sift_like(600)
        .with_clusters(8)
        .with_seed(11)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(8, 16).with_train_size(300),
        2,
    );
    // Every query identical and near-instant arrivals: the first closes its
    // batch (max_batch 1) at t≈0 and executes for `engine_busy_s`; every
    // repeat hits the cache but must wait for that answer.
    let cache_lookup_s = 1e-6;
    let config = ServiceConfig {
        queue_capacity: 64,
        batcher: BatchFormerConfig {
            max_batch: 1,
            max_delay_s: 10.0,
        },
        cache_capacity: 64,
        cache_lookup_s,
        slo_p99_s: None,
        max_chunk: None,
    };
    // The work scale inflates the modeled execution time so it dwarfs both
    // the arrival spacing and the cache lookup.
    let mut service =
        SearchService::new(CpuFaissEngine::new(&index).with_work_scale(1e5), config);
    let stream = StreamSpec::new(20, 1e9)
        .with_repeat_fraction(1.0)
        .generate(&dataset);
    let report = service.replay_uniform(&stream, QueryOptions::new(5, 4));
    // With repeat fraction 1.0 every query is (transitively) a copy of the
    // first, so exactly one batch runs and all 19 repeats are cache hits.
    assert_eq!(report.completed, 20);
    assert_eq!(report.batches(), 1);
    assert_eq!(report.cache_hits, 19);
    // Arrivals are ~instant (qps 1e9) while the one batch takes
    // `engine_busy_s` of simulated time. Every repeat arrived long before the
    // answer existed, so the guard forces every latency up to ≈ the
    // execution time; a time-traveling hit would cost only the ~1 µs lookup.
    assert!(report.engine_busy_s > 1e3 * cache_lookup_s);
    let min_latency = report.latencies_s[0];
    assert!(
        min_latency >= report.engine_busy_s * 0.99,
        "a cached answer time-traveled: min latency {min_latency} vs execution {}",
        report.engine_busy_s
    );
}
