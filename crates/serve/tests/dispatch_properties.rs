//! Property-based tests (proptest) over the engine dispatch scheduler: work
//! conservation, close-before-dispatch, chunk-cap respect, EDF ordering
//! among ready chunks, the one-chunk head-of-line bound for a tight-SLO
//! tenant, and causal completion ordering at the service level under
//! non-monotone (priority) finishes.

use baselines::engine::{QueryOptions, TenantId};
use proptest::prelude::*;
use upanns_serve::batcher::{CloseReason, FormedBatch, PendingQuery};
use upanns_serve::dispatch::{DispatchOrder, EngineScheduler};

/// A synthetic formed batch: `n` members of `tenant`, arrivals spread up to
/// `closed_at`.
fn batch(tenant: u32, id_base: usize, n: usize, closed_at: f64) -> FormedBatch {
    let options = QueryOptions::new(10, 8).with_tenant(TenantId(tenant));
    let opened_at = (closed_at - 0.1).max(0.0);
    FormedBatch {
        options,
        members: (0..n)
            .map(|i| PendingQuery {
                arrival_s: opened_at + (closed_at - opened_at) * i as f64 / n as f64,
                stream_index: id_base + i,
                options,
            })
            .collect(),
        opened_at,
        closed_at,
        reason: CloseReason::Deadline,
    }
}

/// One recorded dispatch.
#[derive(Debug, Clone)]
struct Dispatch {
    start: f64,
    finish: f64,
    ready_at: f64,
    len: usize,
    stream_indices: Vec<usize>,
}

/// Drives the scheduler the way the service does — submissions in close
/// order, every due dispatch run before the clock passes it — with a
/// linear-in-batch-size service-time model. Returns the dispatch log.
fn drive(
    scheduler: &mut EngineScheduler,
    submissions: &[(FormedBatch, Option<f64>, usize)],
    per_query_s: f64,
) -> Vec<Dispatch> {
    let mut log = Vec::new();
    let run_due = |scheduler: &mut EngineScheduler, now: f64, log: &mut Vec<Dispatch>| {
        while let Some((chunk, start)) = scheduler.pop_next(now) {
            let service = per_query_s * chunk.batch.len() as f64;
            let finish = scheduler.complete(start, service);
            log.push(Dispatch {
                start,
                finish,
                ready_at: chunk.ready_at(),
                len: chunk.batch.len(),
                stream_indices: chunk.batch.members.iter().map(|m| m.stream_index).collect(),
            });
        }
    };
    for (batch, slo, cap) in submissions {
        run_due(scheduler, batch.closed_at, &mut log);
        scheduler.submit(batch.clone(), *slo, *cap);
    }
    run_due(scheduler, f64::INFINITY, &mut log);
    log
}

/// Builds a close-ordered submission list from fuzz bytes: tenant, size and
/// inter-close gap per batch; tenants 1–2 carry SLOs, tenant 3 none.
fn submissions_from(encoded: &[u8], cap: usize) -> Vec<(FormedBatch, Option<f64>, usize)> {
    let mut subs = Vec::new();
    let mut now = 0.0f64;
    let mut id_base = 0usize;
    for &b in encoded {
        now += (b >> 5) as f64 * 0.01;
        let tenant = (b % 3) as u32 + 1;
        let n = (b as usize % 17) + 1;
        let slo = match tenant {
            1 => Some(0.05),
            2 => Some(0.8),
            _ => None,
        };
        subs.push((batch(tenant, id_base, n, now), slo, cap));
        id_base += n;
    }
    subs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation, the chunk cap, close-before-dispatch and serial
    /// (non-decreasing) finishes, under arbitrary close orders and sizes.
    #[test]
    fn scheduler_conserves_queries_and_respects_chunk_caps(
        encoded in prop::collection::vec(0u8..=255, 1..60),
        cap in 1usize..9,
    ) {
        let subs = submissions_from(&encoded, cap);
        let total: usize = subs.iter().map(|(b, _, _)| b.len()).sum();
        let mut scheduler = EngineScheduler::new(DispatchOrder::SloUrgency);
        let log = drive(&mut scheduler, &subs, 0.003);
        prop_assert!(scheduler.is_idle(), "everything submitted was dispatched");
        // Every query leaves in exactly one chunk.
        let mut seen: Vec<usize> = log.iter().flat_map(|d| d.stream_indices.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
        for d in &log {
            prop_assert!(d.len <= cap, "chunk of {} > cap {}", d.len, cap);
            prop_assert!(
                d.start >= d.ready_at - 1e-12,
                "dispatched at {} before its batch closed at {}",
                d.start,
                d.ready_at
            );
        }
        // The engine is serial: finishes are non-decreasing in dispatch
        // order, and busy time sums the service times exactly.
        for pair in log.windows(2) {
            prop_assert!(pair[0].finish <= pair[1].start + 1e-12);
            prop_assert!(pair[0].finish <= pair[1].finish + 1e-12);
        }
        let busy: f64 = log.iter().map(|d| d.finish - d.start).sum();
        prop_assert!((scheduler.busy_s() - busy).abs() < 1e-9);
    }

    /// Work conservation: the engine never idles while a submitted chunk is
    /// ready — any idle gap before a dispatch means that chunk (and every
    /// chunk dispatched after it) only became ready when the gap ended.
    #[test]
    fn scheduler_never_idles_while_work_is_ready(
        encoded in prop::collection::vec(0u8..=255, 1..60),
        cap in 1usize..9,
    ) {
        let subs = submissions_from(&encoded, cap);
        let mut scheduler = EngineScheduler::new(DispatchOrder::SloUrgency);
        let log = drive(&mut scheduler, &subs, 0.004);
        for i in 1..log.len() {
            let gap_start = log[i - 1].finish;
            let gap_end = log[i].start;
            if gap_end > gap_start + 1e-12 {
                // The engine sat idle in (gap_start, gap_end): no chunk
                // dispatched at or after gap_end may have been ready
                // earlier than gap_end.
                for later in &log[i..] {
                    prop_assert!(
                        later.ready_at >= gap_end - 1e-12,
                        "chunk ready at {} sat out an idle gap ending {}",
                        later.ready_at,
                        gap_end
                    );
                }
            }
        }
    }

    /// EDF among ready chunks: every dispatch picks the minimum
    /// `(deadline, seq)` over the chunks whose batches had closed by the
    /// dispatch start — verified against an independently maintained mirror
    /// of the queue.
    #[test]
    fn dispatch_is_edf_among_ready_chunks(
        encoded in prop::collection::vec(0u8..=255, 1..60),
        cap in 1usize..9,
    ) {
        let subs = submissions_from(&encoded, cap);
        // Mirror of the scheduler's queue — (ready, deadline, seq) per
        // chunk, replicated exactly as submit() chunks, and mutated only at
        // the same points the real queue is (submission and dispatch).
        let mut mirror: Vec<(f64, f64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut scheduler = EngineScheduler::new(DispatchOrder::SloUrgency);
        fn check_pop(
            scheduler: &mut EngineScheduler,
            mirror: &mut Vec<(f64, f64, u64)>,
            now: f64,
        ) {
            while let Some((chunk, start)) = scheduler.pop_next(now) {
                let best = mirror
                    .iter()
                    .filter(|(ready, _, _)| *ready <= start + 1e-12)
                    .min_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.2.cmp(&b.2))
                    })
                    .copied()
                    .expect("mirror tracks every queued chunk");
                prop_assert_eq!(
                    (chunk.deadline, chunk.seq),
                    (best.1, best.2),
                    "dispatch was not the most urgent ready chunk"
                );
                mirror.retain(|&(_, _, s)| s != chunk.seq);
                scheduler.complete(start, 0.002 * chunk.batch.len() as f64);
            }
        }
        for (b, slo, cap) in &subs {
            check_pop(&mut scheduler, &mut mirror, b.closed_at);
            for chunk in b.members.chunks(*cap) {
                let deadline = slo.map_or(f64::INFINITY, |s| chunk[0].arrival_s + s);
                mirror.push((b.closed_at, deadline, seq));
                seq += 1;
            }
            scheduler.submit(b.clone(), *slo, *cap);
        }
        check_pop(&mut scheduler, &mut mirror, f64::INFINITY);
        prop_assert!(mirror.is_empty());
    }

    /// The head-of-line bound the chunking exists for: a tight-SLO singleton
    /// submitted into arbitrary bulk traffic starts within one chunk's
    /// service time of becoming ready — never a whole bulk batch.
    #[test]
    fn tight_tenant_waits_at_most_one_chunk_service_time(
        bulk in prop::collection::vec(0u8..=255, 1..25),
        cap in 1usize..9,
        tight_at_fraction in 0.0f64..1.0,
    ) {
        let per_query_s = 0.01;
        let mut subs = Vec::new();
        let mut now = 0.0f64;
        let mut id_base = 0usize;
        for &b in &bulk {
            // High bits: inter-close gap; low bits: bulk batch size.
            let (n, gap) = ((b as usize % 39) + 1, b >> 5);
            now += gap as f64 * 0.01;
            subs.push((batch(2, id_base, n, now), None, cap));
            id_base += n;
        }
        // The tight singleton closes somewhere inside the bulk timeline.
        let tight_at = now * tight_at_fraction;
        let tight = batch(1, id_base, 1, tight_at);
        let pos = subs
            .iter()
            .position(|(b, _, _)| b.closed_at > tight_at)
            .unwrap_or(subs.len());
        subs.insert(pos, (tight, Some(0.05), cap));
        let mut scheduler = EngineScheduler::new(DispatchOrder::SloUrgency);
        let log = drive(&mut scheduler, &subs, per_query_s);
        let tight_dispatch = log
            .iter()
            .find(|d| d.stream_indices == vec![id_base])
            .expect("the tight query was dispatched");
        let bound = tight_at + cap as f64 * per_query_s;
        prop_assert!(
            tight_dispatch.start <= bound + 1e-9,
            "tight query started at {} — more than one chunk ({} s) after its close {}",
            tight_dispatch.start,
            cap as f64 * per_query_s,
            tight_at
        );
    }

    /// Close-order mode is exactly the pre-scheduler serial semantics:
    /// submission order, whole batches, `start = max(previous finish,
    /// close)` — the regression baseline the priority mode is measured
    /// against.
    #[test]
    fn close_order_mode_is_serial_fifo(
        encoded in prop::collection::vec(0u8..=255, 1..60),
    ) {
        // Caps are ignored in close order: pass an aggressive one.
        let subs = submissions_from(&encoded, 1);
        let mut scheduler = EngineScheduler::new(DispatchOrder::CloseOrder);
        let log = drive(&mut scheduler, &subs, 0.003);
        prop_assert_eq!(log.len(), subs.len(), "one dispatch per batch, never split");
        prop_assert_eq!(scheduler.split_batches(), 0);
        let mut free = 0.0f64;
        for (d, (b, _, _)) in log.iter().zip(&subs) {
            prop_assert_eq!(d.len, b.len(), "batches stay whole");
            prop_assert!((d.start - b.closed_at.max(free)).abs() < 1e-12);
            free = d.finish;
        }
    }
}

mod service_level {
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
    use annkit::workload::{MultiTenantSpec, StreamSpec, TenantId, TenantSpec};
    use baselines::cpu::CpuFaissEngine;
    use proptest::prelude::*;
    use std::sync::OnceLock;
    use upanns_serve::batcher::BatchFormerConfig;
    use upanns_serve::controller::ControllerBank;
    use upanns_serve::{SearchService, ServiceConfig};

    fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
        static FIX: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
        FIX.get_or_init(|| {
            let dataset = SyntheticSpec::sift_like(900)
                .with_clusters(8)
                .with_seed(17)
                .generate_with_meta();
            let index = IvfPqIndex::train(
                &dataset.vectors,
                &IvfPqParams::new(8, 16).with_train_size(400),
                2,
            );
            (dataset, index)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// End-to-end causal ordering under non-monotone finishes: a chunked
        /// priority replay over a random two-tenant mix conserves every
        /// query, keeps per-tenant accounting consistent (the admission
        /// queue's release assertions would panic on any completion-order
        /// bug), and answers exactly what the unchunked replay answers.
        #[test]
        fn chunked_replay_is_conservative_and_answer_identical(
            tight_queries in 5usize..40,
            bulk_queries in 40usize..160,
            tight_slo_ms in 20.0f64..500.0,
            max_chunk in 1usize..24,
            seed_qps in 100.0f64..50_000.0,
        ) {
            let (dataset, index) = fixture();
            let spec = MultiTenantSpec::new()
                .with_tenant(
                    TenantSpec::new(
                        TenantId(1),
                        StreamSpec::new(tight_queries, seed_qps / 10.0)
                            .with_slo_p99(tight_slo_ms * 1e-3),
                    )
                    .with_option_mix(vec![(5, 4)]),
                )
                .with_tenant(
                    TenantSpec::new(TenantId(2), StreamSpec::new(bulk_queries, seed_qps))
                        .with_option_mix(vec![(5, 4), (10, 8)]),
                );
            let stream = spec.generate(dataset);
            let config = ServiceConfig {
                queue_capacity: 64,
                batcher: BatchFormerConfig {
                    max_batch: 48,
                    max_delay_s: 20e-3,
                },
                cache_capacity: 32,
                ..ServiceConfig::default()
            };
            let bank = ControllerBank::for_profiles(
                &stream.tenant_profiles,
                config.batcher,
            );
            let mut chunked = SearchService::new(CpuFaissEngine::new(index), ServiceConfig {
                max_chunk: Some(max_chunk),
                ..config
            })
            .with_policy(Box::new(bank.clone()));
            let report = chunked.replay_planned(&stream);
            let n = tight_queries + bulk_queries;
            prop_assert_eq!(report.completed + report.shed, n);
            prop_assert_eq!(report.latencies_s.len(), report.completed);
            prop_assert!(report.latencies_s.iter().all(|&l| l >= 0.0 && l.is_finite()));
            let t1 = report.tenant(TenantId(1)).expect("tight row");
            let t2 = report.tenant(TenantId(2)).expect("bulk row");
            prop_assert_eq!(t1.completed + t1.shed, tight_queries);
            prop_assert_eq!(t2.completed + t2.shed, bulk_queries);
            prop_assert_eq!(t1.completed + t2.completed, report.completed);
            prop_assert_eq!(t1.shed + t2.shed, report.shed);
            prop_assert!(report.dispatched_chunks >= report.batches());
            // Dispatch shape never changes answers.
            let mut unchunked = SearchService::new(CpuFaissEngine::new(index), config)
                .with_policy(Box::new(bank));
            let baseline = unchunked.replay_planned(&stream);
            for (a, b) in report.results.iter().zip(&baseline.results) {
                if a.is_empty() || b.is_empty() {
                    continue; // shed under one dispatch discipline only
                }
                prop_assert_eq!(
                    a.iter().map(|n| n.id).collect::<Vec<_>>(),
                    b.iter().map(|n| n.id).collect::<Vec<_>>()
                );
            }
        }
    }
}
