//! Criterion microbenchmark of the PIM simulator itself: MRAM cost-model
//! evaluation, DMA-charged tasklet reads and a full parallel-region launch.
//! These quantify the *simulation* overhead per modeled unit of work, which
//! bounds how large an experiment the harness can run.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use annkit::vector::residual;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_sim::config::PimConfig;
use pim_sim::cost::CostModel;
use pim_sim::host::PimSystem;
use std::collections::HashMap;
use upanns::config::UpAnnsConfig;
use upanns::kernel::{
    mailbox_slot_bytes, run_batch_kernel, ClusterReplica, DpuBatchPlan, DpuStore, KernelShared,
    ListEncoding,
};
use upanns::scheduling::Assignment;

fn bench_cost_model(c: &mut Criterion) {
    let cm = CostModel::default();
    let mut group = c.benchmark_group("cost_model");
    group.throughput(Throughput::Elements(2048));
    group.bench_function("mram_transfer_cycles_sweep", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for bytes in (8..=2048).step_by(8) {
                total += cm.mram_transfer_cycles(bytes);
            }
            std::hint::black_box(total)
        });
    });
    group.bench_function("region_compute_cycles", |b| {
        let per_tasklet: Vec<u64> = (0..24).map(|i| 1_000 + i * 37).collect();
        b.iter(|| std::hint::black_box(cm.region_compute_cycles(&per_tasklet)));
    });
    group.finish();
}

fn bench_kernel_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_launch");
    group.sample_size(20);
    for &dpus in &[16usize, 128] {
        let mut sys = PimSystem::new(PimConfig::with_dpus(dpus).scaled_to(dpus));
        let mut addrs = Vec::new();
        for d in 0..dpus {
            let addr = sys.mram_alloc(d, 64 * 1024).unwrap();
            sys.dpu_mut(d)
                .mram_mut()
                .write(addr, &vec![7u8; 64 * 1024])
                .unwrap();
            addrs.push(addr);
        }
        group.throughput(Throughput::Elements(dpus as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dpus), &dpus, |b, &dpus| {
            b.iter(|| {
                let report = sys.execute("bench", |ctx| {
                    let addr = addrs[ctx.dpu_id()];
                    ctx.parallel("scan", 11, |t| {
                        for chunk in 0..16usize {
                            let _ = t.mram_read(addr + chunk * 256, 256);
                            t.charge_arith(256, 0);
                        }
                    });
                });
                std::hint::black_box((report.max_dpu_seconds, dpus))
            });
        });
    }
    group.finish();
}

/// The full batch kernel (LUT build, functional ADC scan, pruned merge,
/// mailbox write) on one DPU, with the host-side scan pinned to either the
/// best detected SIMD backend or the portable scalar fallback. The modeled
/// DPU cost is identical for both — this measures harness wall-clock, i.e.
/// how much simulation throughput the vectorized scan buys.
fn bench_adc_kernel(c: &mut Criterion) {
    let data = SyntheticSpec::sift_like(2_000)
        .with_clusters(8)
        .with_seed(5)
        .generate();
    let index = IvfPqIndex::train(&data, &IvfPqParams::new(8, 16).with_train_size(700), 3);
    let k = 10;

    let mut sys = PimSystem::new(PimConfig::with_dpus(1));
    let mut store = DpuStore::default();
    let codebook = vec![1u8; index.dim() * 256];
    store.codebook_addr = sys.mram_alloc(0, codebook.len()).unwrap();
    store.codebook_bytes = codebook.len();
    sys.dpu_mut(0)
        .mram_mut()
        .write(store.codebook_addr, &codebook)
        .unwrap();
    for cl in 0..index.nlist() {
        let list = index.list(cl);
        if list.is_empty() {
            continue;
        }
        let mut ids_bytes = Vec::with_capacity(list.len() * 8);
        for &id in list.ids() {
            ids_bytes.extend_from_slice(&id.to_le_bytes());
        }
        let ids_addr = sys.mram_alloc(0, ids_bytes.len()).unwrap();
        sys.dpu_mut(0).mram_mut().write(ids_addr, &ids_bytes).unwrap();
        let codes = list.packed_codes().to_vec();
        let codes_addr = sys.mram_alloc(0, codes.len()).unwrap();
        sys.dpu_mut(0).mram_mut().write(codes_addr, &codes).unwrap();
        store.replicas.insert(
            cl,
            ClusterReplica {
                cluster: cl,
                num_vectors: list.len(),
                ids_addr,
                codes_addr,
                codes_bytes: codes.len(),
                encoding: ListEncoding::PlainU8,
            },
        );
    }
    store.query_buffer_bytes = 4096;
    store.query_buffer_addr = sys.mram_alloc(0, store.query_buffer_bytes).unwrap();
    store.mailbox_bytes = 8 * mailbox_slot_bytes(k);
    store.mailbox_addr = sys.mram_alloc(0, store.mailbox_bytes).unwrap();

    let mut plan = DpuBatchPlan::default();
    for (qi, &row) in [3usize, 500, 1200].iter().enumerate() {
        let q = data.vector(row);
        for (cl, _) in index.filter_clusters(q, 8) {
            plan.assignments.push(Assignment { query: qi, cluster: cl });
            plan.residuals.push(residual(q, index.coarse().centroid(cl)));
        }
        plan.queries.push(qi);
    }
    let config = UpAnnsConfig::pim_naive();
    let combos = HashMap::new();

    let mut group = c.benchmark_group("pim_kernel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(plan.assignments.len() as u64));
    for (variant, backend) in [
        ("simd", annkit::simd::detect()),
        ("scalar", annkit::simd::Backend::Scalar),
    ] {
        let shared = KernelShared {
            pq: index.pq(),
            combos: &combos,
            config: &config,
            k,
            scan_backend: backend,
        };
        group.bench_with_input(BenchmarkId::new("adc_kernel", variant), &(), |b, ()| {
            b.iter(|| {
                let mut written = 0usize;
                sys.execute("bench_search", |ctx| {
                    written = run_batch_kernel(ctx, &store, &plan, &shared).mailbox_bytes_written;
                });
                std::hint::black_box(written)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_kernel_launch, bench_adc_kernel);
criterion_main!(benches);
