//! Opt1 (runtime extension): adapting the data placement to query-pattern
//! drift — the adaptive approach described in §4.1.2 of the paper.
//!
//! UpANNS targets workloads (RAG serving, recommendation) whose query pattern
//! changes "regularly (e.g., every few days) and incrementally". Because DPUs
//! cannot talk to each other, reacting to a new pattern means the *host* has
//! to restage data. The paper's policy has two tiers:
//!
//! 1. **Minor drift** — adjust the number of replicas of individual clusters:
//!    clusters that became hot gain replicas, clusters that cooled down lose
//!    surplus replicas. Only the affected clusters are re-staged.
//! 2. **Major drift** — run the full Algorithm 1 placement from scratch and
//!    reload every DPU ("full data relocation").
//!
//! This module provides the drift metrics, the decision policy, and the
//! incremental replica adjustment. [`crate::builder::UpAnnsBuilder`] accepts
//! an externally adapted [`Placement`] via
//! [`with_placement`](crate::builder::UpAnnsBuilder::with_placement), so a
//! serving loop can periodically re-derive frequencies from recent traffic,
//! call [`plan_adaptation`], and rebuild only when needed (see
//! `examples/adaptive_serving.rs`).

use crate::placement::{place_pim_aware, Placement, PlacementInput};
use baselines::engine::{SearchRequest, SearchResponse};

/// How much the cluster-access distribution moved between two observation
/// windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Total-variation distance between the two (normalized) frequency
    /// distributions, in `[0, 1]`. 0 = identical, 1 = disjoint supports.
    pub total_variation: f64,
    /// Jaccard overlap of the two hot sets (the smallest cluster sets covering
    /// [`AdaptationPolicy::hot_mass`] of each distribution), in `[0, 1]`.
    pub hot_set_overlap: f64,
    /// The largest single-cluster absolute frequency change.
    pub max_cluster_shift: f64,
    /// Number of clusters whose frequency at least doubled (or appeared).
    pub heated_clusters: usize,
    /// Number of clusters whose frequency at least halved (or vanished).
    pub cooled_clusters: usize,
}

impl DriftReport {
    /// A report describing two identical distributions.
    pub fn none() -> Self {
        Self {
            total_variation: 0.0,
            hot_set_overlap: 1.0,
            max_cluster_shift: 0.0,
            heated_clusters: 0,
            cooled_clusters: 0,
        }
    }
}

/// Thresholds steering the two-tier adaptation policy.
#[derive(Debug, Clone)]
pub struct AdaptationPolicy {
    /// Total-variation distance below which the placement is left untouched.
    pub minor_drift: f64,
    /// Total-variation distance above which a full relocation (Algorithm 1
    /// from scratch) is triggered.
    pub major_drift: f64,
    /// Fraction of total access mass that defines the "hot set" used for the
    /// overlap metric (default 0.5: the clusters receiving half the traffic).
    pub hot_mass: f64,
    /// A cluster gains a replica when its expected workload exceeds this
    /// multiple of the per-DPU average (1.0 mirrors Algorithm 1's `⌈w/W⌉`).
    pub replica_headroom: f64,
}

impl Default for AdaptationPolicy {
    fn default() -> Self {
        Self {
            minor_drift: 0.05,
            major_drift: 0.35,
            hot_mass: 0.5,
            replica_headroom: 1.0,
        }
    }
}

/// A per-cluster replica-count change produced by the minor-drift tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaAdjustment {
    /// `(cluster, additional replicas)` for clusters that heated up.
    pub add: Vec<(usize, usize)>,
    /// `(cluster, replicas to drop)` for clusters that cooled down (never
    /// below one replica).
    pub remove: Vec<(usize, usize)>,
}

impl ReplicaAdjustment {
    /// Whether the adjustment changes anything.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty()
    }

    /// Total number of replica additions and removals.
    pub fn total_changes(&self) -> usize {
        self.add.iter().map(|(_, n)| n).sum::<usize>()
            + self.remove.iter().map(|(_, n)| n).sum::<usize>()
    }
}

/// The outcome of [`plan_adaptation`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationDecision {
    /// The drift is below the minor threshold: keep the current placement.
    NoChange(DriftReport),
    /// Minor drift: apply the replica adjustment to the existing placement.
    AdjustReplicas(DriftReport, ReplicaAdjustment),
    /// Major drift: rebuild the placement with Algorithm 1 under the new
    /// frequencies (the caller re-stages every DPU).
    FullRelocation(DriftReport),
}

impl AdaptationDecision {
    /// The drift report the decision was based on.
    pub fn drift(&self) -> &DriftReport {
        match self {
            AdaptationDecision::NoChange(d)
            | AdaptationDecision::AdjustReplicas(d, _)
            | AdaptationDecision::FullRelocation(d) => d,
        }
    }
}

/// Normalizes a frequency vector to sum to one (uniform if all-zero).
fn normalize(freqs: &[f64]) -> Vec<f64> {
    let total: f64 = freqs.iter().filter(|f| f.is_finite() && **f > 0.0).sum();
    if total <= 0.0 {
        return vec![1.0 / freqs.len().max(1) as f64; freqs.len()];
    }
    freqs
        .iter()
        .map(|&f| if f.is_finite() && f > 0.0 { f / total } else { 0.0 })
        .collect()
}

/// The smallest set of cluster ids covering `mass` of the distribution.
fn hot_set(freqs: &[f64], mass: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..freqs.len()).collect();
    order.sort_by(|&a, &b| freqs[b].partial_cmp(&freqs[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut covered = 0.0;
    let mut set = Vec::new();
    for c in order {
        if covered >= mass || freqs[c] <= 0.0 {
            break;
        }
        covered += freqs[c];
        set.push(c);
    }
    set
}

/// Measures how far the access distribution moved between two observation
/// windows. Both inputs are per-cluster access frequencies (any non-negative
/// scale); they are normalized internally.
///
/// # Panics
/// Panics if the two vectors have different lengths or are empty.
pub fn measure_drift(old: &[f64], new: &[f64], policy: &AdaptationPolicy) -> DriftReport {
    assert_eq!(old.len(), new.len(), "frequency vectors must align");
    assert!(!old.is_empty(), "need at least one cluster");
    let old_n = normalize(old);
    let new_n = normalize(new);

    let total_variation = 0.5
        * old_n
            .iter()
            .zip(&new_n)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
    let max_cluster_shift = old_n
        .iter()
        .zip(&new_n)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let hot_old = hot_set(&old_n, policy.hot_mass);
    let hot_new = hot_set(&new_n, policy.hot_mass);
    let inter = hot_new.iter().filter(|c| hot_old.contains(c)).count();
    let union = hot_old.len() + hot_new.len() - inter;
    let hot_set_overlap = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };

    let mut heated = 0usize;
    let mut cooled = 0usize;
    for (a, b) in old_n.iter().zip(&new_n) {
        let floor = 1.0 / (old_n.len() as f64 * 100.0);
        if *b > 2.0 * a.max(floor) {
            heated += 1;
        }
        if *a > 2.0 * b.max(floor) {
            cooled += 1;
        }
    }

    DriftReport {
        total_variation,
        hot_set_overlap,
        max_cluster_shift,
        heated_clusters: heated,
        cooled_clusters: cooled,
    }
}

/// The desired replica count of a cluster under Algorithm 1's rule
/// `n_cpy = ⌈sᵢ·fᵢ / W⌉`, bounded by the DPU count.
pub fn desired_replicas(
    cluster_size: usize,
    frequency: f64,
    per_dpu_target: f64,
    num_dpus: usize,
    headroom: f64,
) -> usize {
    if per_dpu_target <= 0.0 {
        return 1;
    }
    let w = cluster_size as f64 * frequency;
    (((w / (per_dpu_target * headroom.max(f64::MIN_POSITIVE))).ceil() as usize).max(1)).min(num_dpus)
}

/// Decides how to react to a new access pattern: keep the placement, adjust
/// replica counts, or relocate everything.
///
/// `old_freqs` are the frequencies the current `placement` was built with;
/// `new_freqs` are the frequencies observed in the latest window.
///
/// # Panics
/// Panics if the frequency vectors do not match the placement's cluster count.
pub fn plan_adaptation(
    placement: &Placement,
    cluster_sizes: &[usize],
    old_freqs: &[f64],
    new_freqs: &[f64],
    policy: &AdaptationPolicy,
) -> AdaptationDecision {
    assert_eq!(
        placement.cluster_to_dpus.len(),
        cluster_sizes.len(),
        "placement and sizes must align"
    );
    assert_eq!(cluster_sizes.len(), new_freqs.len(), "sizes and frequencies must align");
    let drift = measure_drift(old_freqs, new_freqs, policy);
    if drift.total_variation <= policy.minor_drift {
        return AdaptationDecision::NoChange(drift);
    }
    if drift.total_variation >= policy.major_drift {
        return AdaptationDecision::FullRelocation(drift);
    }

    let num_dpus = placement.dpu_workload.len();
    let new_n = normalize(new_freqs);
    let total_workload: f64 = cluster_sizes
        .iter()
        .zip(&new_n)
        .map(|(&s, &f)| s as f64 * f)
        .sum();
    let target = total_workload / num_dpus.max(1) as f64;

    let mut add = Vec::new();
    let mut remove = Vec::new();
    for (c, &size) in cluster_sizes.iter().enumerate() {
        let want = desired_replicas(size, new_n[c], target, num_dpus, policy.replica_headroom);
        let have = placement.replicas(c);
        match want.cmp(&have) {
            std::cmp::Ordering::Greater => add.push((c, want - have)),
            std::cmp::Ordering::Less if have > 1 => remove.push((c, (have - want).min(have - 1))),
            _ => {}
        }
    }
    let adjustment = ReplicaAdjustment { add, remove };
    if adjustment.is_empty() {
        AdaptationDecision::NoChange(drift)
    } else {
        AdaptationDecision::AdjustReplicas(drift, adjustment)
    }
}

/// Applies a [`ReplicaAdjustment`] to a placement, producing the adapted
/// placement. New replicas land on the least-loaded DPUs with spare capacity;
/// surplus replicas are removed from the most-loaded DPUs hosting them. The
/// per-DPU workload estimates are recomputed under `new_freqs`.
///
/// # Panics
/// Panics if the inputs' cluster counts do not align.
pub fn apply_adjustment(
    placement: &Placement,
    adjustment: &ReplicaAdjustment,
    cluster_sizes: &[usize],
    new_freqs: &[f64],
    max_dpu_vectors: usize,
) -> Placement {
    assert_eq!(placement.cluster_to_dpus.len(), cluster_sizes.len());
    assert_eq!(cluster_sizes.len(), new_freqs.len());
    let num_dpus = placement.dpu_workload.len();
    let new_n = normalize(new_freqs);

    let mut cluster_to_dpus = placement.cluster_to_dpus.clone();
    let mut dpu_vectors = vec![0usize; num_dpus];
    for (c, dpus) in cluster_to_dpus.iter().enumerate() {
        for &d in dpus {
            dpu_vectors[d] += cluster_sizes[c];
        }
    }
    // Workloads under the new pattern, maintained incrementally as replicas
    // move (a cluster's load is split evenly across its current replicas).
    let mut workloads = estimate_workloads(&cluster_to_dpus, cluster_sizes, &new_n, num_dpus);
    let remove_cluster_share = |workloads: &mut Vec<f64>, dpus: &[usize], w: f64| {
        if dpus.is_empty() {
            return;
        }
        let per = w / dpus.len() as f64;
        for &d in dpus {
            workloads[d] -= per;
        }
    };
    let add_cluster_share = |workloads: &mut Vec<f64>, dpus: &[usize], w: f64| {
        if dpus.is_empty() {
            return;
        }
        let per = w / dpus.len() as f64;
        for &d in dpus {
            workloads[d] += per;
        }
    };

    // Removals first, freeing capacity for the additions.
    for &(c, count) in &adjustment.remove {
        let w = cluster_sizes[c] as f64 * new_n[c];
        for _ in 0..count {
            if cluster_to_dpus[c].len() <= 1 {
                break;
            }
            // Drop the replica on the DPU with the highest current estimated
            // workload so the removal itself improves balance.
            let (pos, _) = cluster_to_dpus[c]
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    workloads[a]
                        .partial_cmp(&workloads[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("cluster has at least two replicas here");
            remove_cluster_share(&mut workloads, &cluster_to_dpus[c], w);
            let dpu = cluster_to_dpus[c].remove(pos);
            dpu_vectors[dpu] -= cluster_sizes[c];
            add_cluster_share(&mut workloads, &cluster_to_dpus[c], w);
        }
    }

    // Additions: least-loaded DPU with capacity that does not already host the
    // cluster.
    for &(c, count) in &adjustment.add {
        let w = cluster_sizes[c] as f64 * new_n[c];
        for _ in 0..count {
            let candidate = (0..num_dpus)
                .filter(|&d| {
                    !cluster_to_dpus[c].contains(&d)
                        && dpu_vectors[d] + cluster_sizes[c] <= max_dpu_vectors
                })
                .min_by(|&a, &b| {
                    workloads[a]
                        .partial_cmp(&workloads[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            match candidate {
                Some(d) => {
                    remove_cluster_share(&mut workloads, &cluster_to_dpus[c], w);
                    cluster_to_dpus[c].push(d);
                    dpu_vectors[d] += cluster_sizes[c];
                    add_cluster_share(&mut workloads, &cluster_to_dpus[c], w);
                }
                None => break, // capacity-bound: keep fewer replicas
            }
        }
    }

    let dpu_workload = estimate_workloads(&cluster_to_dpus, cluster_sizes, &new_n, num_dpus);
    Placement {
        cluster_to_dpus,
        dpu_workload,
        dpu_vectors,
    }
}

/// Rebuilds the placement from scratch under the new frequencies (the major-
/// drift tier: "full data relocation").
pub fn full_relocation(
    cluster_sizes: &[usize],
    new_freqs: &[f64],
    num_dpus: usize,
    max_dpu_vectors: usize,
) -> Placement {
    let input = PlacementInput::new(
        cluster_sizes.to_vec(),
        normalize(new_freqs),
        num_dpus,
        max_dpu_vectors,
    );
    place_pim_aware(&input)
}

/// Estimated per-DPU workload when every cluster's expected load is split
/// evenly across its replicas (Algorithm 1's accounting).
fn estimate_workloads(
    cluster_to_dpus: &[Vec<usize>],
    cluster_sizes: &[usize],
    freqs: &[f64],
    num_dpus: usize,
) -> Vec<f64> {
    let mut workloads = vec![0.0f64; num_dpus];
    for (c, dpus) in cluster_to_dpus.iter().enumerate() {
        if dpus.is_empty() {
            continue;
        }
        let per_replica = cluster_sizes[c] as f64 * freqs[c] / dpus.len() as f64;
        for &d in dpus {
            workloads[d] += per_replica;
        }
    }
    workloads
}

/// Convenience wrapper: measures drift, plans, and returns the adapted
/// placement together with the decision that produced it. `NoChange` returns a
/// clone of the original placement (with workloads re-estimated under the new
/// frequencies, so balance metrics stay comparable).
pub fn adapt_placement(
    placement: &Placement,
    cluster_sizes: &[usize],
    old_freqs: &[f64],
    new_freqs: &[f64],
    max_dpu_vectors: usize,
    policy: &AdaptationPolicy,
) -> (Placement, AdaptationDecision) {
    let decision = plan_adaptation(placement, cluster_sizes, old_freqs, new_freqs, policy);
    let num_dpus = placement.dpu_workload.len();
    let new_n = normalize(new_freqs);
    let adapted = match &decision {
        AdaptationDecision::NoChange(_) => Placement {
            cluster_to_dpus: placement.cluster_to_dpus.clone(),
            dpu_workload: estimate_workloads(
                &placement.cluster_to_dpus,
                cluster_sizes,
                &new_n,
                num_dpus,
            ),
            dpu_vectors: placement.dpu_vectors.clone(),
        },
        AdaptationDecision::AdjustReplicas(_, adj) => {
            apply_adjustment(placement, adj, cluster_sizes, new_freqs, usize_max_or(max_dpu_vectors))
        }
        AdaptationDecision::FullRelocation(_) => full_relocation(
            cluster_sizes,
            new_freqs,
            num_dpus,
            usize_max_or(max_dpu_vectors),
        ),
    };
    (adapted, decision)
}

fn usize_max_or(v: usize) -> usize {
    if v == 0 {
        usize::MAX / 2
    } else {
        v
    }
}

/// Request-time adaptation: picking each query's `nprobe` from its latency
/// budget.
///
/// The placement tiers above react to *drift between observation windows*;
/// this policy reacts per request. A query carrying a
/// [`latency_budget_s`](baselines::engine::QueryOptions::latency_budget_s)
/// gets the largest `nprobe` whose estimated cost fits the budget (more
/// probes ⇒ better recall), clamped to `[min_nprobe, max_nprobe]`; queries
/// without a budget keep their requested `nprobe`, clamped to the same
/// bounds (the bounds are the policy's SLO rails and always win). The
/// per-probe cost
/// estimate starts from a prior and is recalibrated from observed responses
/// with an exponential moving average, so the policy tracks the engine it
/// actually runs against (see `examples/adaptive_serving.rs`).
#[derive(Debug, Clone)]
pub struct NprobePolicy {
    /// Lower bound on the selected `nprobe` (recall floor).
    pub min_nprobe: usize,
    /// Upper bound on the selected `nprobe` (latency ceiling).
    pub max_nprobe: usize,
    /// Current estimate of per-query seconds per probed cluster.
    pub seconds_per_probe: f64,
    /// EMA weight of a new observation during [`calibrate`](Self::calibrate).
    pub calibration_gain: f64,
}

impl NprobePolicy {
    /// A policy selecting within `[min_nprobe, max_nprobe]`, with an initial
    /// per-probe cost estimate of `seconds_per_probe`.
    ///
    /// # Panics
    /// Panics if the bounds are empty or the cost prior is not positive.
    pub fn new(min_nprobe: usize, max_nprobe: usize, seconds_per_probe: f64) -> Self {
        assert!(min_nprobe > 0 && min_nprobe <= max_nprobe, "empty nprobe range");
        assert!(
            seconds_per_probe > 0.0 && seconds_per_probe.is_finite(),
            "per-probe cost must be positive"
        );
        Self {
            min_nprobe,
            max_nprobe,
            seconds_per_probe,
            calibration_gain: 0.3,
        }
    }

    /// The `nprobe` for one query: the largest count whose estimated cost
    /// fits `budget_s`, clamped to the policy bounds. `None` (no budget)
    /// keeps `requested`, still clamped.
    pub fn select(&self, requested: usize, budget_s: Option<f64>) -> usize {
        let chosen = match budget_s {
            None => requested,
            Some(b) if b <= 0.0 => self.min_nprobe,
            Some(b) => (b / self.seconds_per_probe).floor() as usize,
        };
        chosen.clamp(self.min_nprobe, self.max_nprobe)
    }

    /// Rewrites a request's per-query `nprobe` in place according to each
    /// query's latency budget.
    pub fn plan_request(&self, request: &mut SearchRequest) {
        for opt in request.options_mut() {
            opt.nprobe = self.select(opt.nprobe, opt.latency_budget_s);
        }
    }

    /// Updates the per-probe cost estimate from an executed request/response
    /// pair (observed mean per-query seconds divided by mean probes per
    /// query, blended by `calibration_gain`). Empty or zero-time responses
    /// are ignored.
    pub fn calibrate(&mut self, request: &SearchRequest, response: &SearchResponse) {
        let probes: usize = request.options().iter().map(|o| o.nprobe).sum();
        if probes == 0 || response.seconds <= 0.0 {
            return;
        }
        let observed = response.seconds / probes as f64;
        let g = self.calibration_gain.clamp(0.0, 1.0);
        self.seconds_per_probe = (1.0 - g) * self.seconds_per_probe + g * observed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place_pim_aware;

    fn base_setup(clusters: usize, dpus: usize) -> (Vec<usize>, Vec<f64>, Placement) {
        let sizes: Vec<usize> = (0..clusters).map(|i| 200 + (i * 37) % 400).collect();
        let freqs: Vec<f64> = (0..clusters).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let input = PlacementInput::new(sizes.clone(), freqs.clone(), dpus, 1_000_000);
        let placement = place_pim_aware(&input);
        (sizes, freqs, placement)
    }

    #[test]
    fn identical_distributions_report_zero_drift() {
        let freqs = vec![0.4, 0.3, 0.2, 0.1];
        let d = measure_drift(&freqs, &freqs, &AdaptationPolicy::default());
        assert!(d.total_variation < 1e-12);
        assert_eq!(d.hot_set_overlap, 1.0);
        assert_eq!(d.heated_clusters, 0);
        assert_eq!(d.cooled_clusters, 0);
    }

    #[test]
    fn disjoint_hot_sets_report_high_drift() {
        let old = vec![1.0, 1.0, 0.0, 0.0];
        let new = vec![0.0, 0.0, 1.0, 1.0];
        let d = measure_drift(&old, &new, &AdaptationPolicy::default());
        assert!(d.total_variation > 0.9);
        assert!(d.hot_set_overlap < 0.5);
        assert!(d.heated_clusters >= 2);
        assert!(d.cooled_clusters >= 2);
    }

    #[test]
    fn drift_is_symmetric_and_bounded() {
        let a = vec![0.5, 0.25, 0.15, 0.1];
        let b = vec![0.1, 0.15, 0.25, 0.5];
        let p = AdaptationPolicy::default();
        let ab = measure_drift(&a, &b, &p);
        let ba = measure_drift(&b, &a, &p);
        assert!((ab.total_variation - ba.total_variation).abs() < 1e-12);
        assert!(ab.total_variation >= 0.0 && ab.total_variation <= 1.0);
        assert!(ab.hot_set_overlap >= 0.0 && ab.hot_set_overlap <= 1.0);
    }

    #[test]
    fn unnormalized_inputs_are_handled() {
        let old = vec![10.0, 30.0, 60.0];
        let new = vec![1.0, 3.0, 6.0]; // same shape, different scale
        let d = measure_drift(&old, &new, &AdaptationPolicy::default());
        assert!(d.total_variation < 1e-12);
    }

    #[test]
    fn tiny_drift_keeps_the_placement() {
        let (sizes, freqs, placement) = base_setup(24, 8);
        let mut new = freqs.clone();
        new[3] *= 1.02;
        let decision = plan_adaptation(
            &placement,
            &sizes,
            &freqs,
            &new,
            &AdaptationPolicy::default(),
        );
        assert!(matches!(decision, AdaptationDecision::NoChange(_)));
    }

    #[test]
    fn moderate_heating_adds_replicas_for_the_hot_cluster() {
        let (sizes, freqs, placement) = base_setup(24, 8);
        // Cluster 20 (previously cold) now takes a large share of traffic —
        // a moderate shift, not a wholesale change.
        let mut new = freqs.clone();
        let boost: f64 = freqs.iter().sum::<f64>() * 0.35;
        new[20] += boost;
        let policy = AdaptationPolicy::default();
        let decision = plan_adaptation(&placement, &sizes, &freqs, &new, &policy);
        match &decision {
            AdaptationDecision::AdjustReplicas(drift, adj) => {
                assert!(drift.total_variation > policy.minor_drift);
                assert!(
                    adj.add.iter().any(|&(c, n)| c == 20 && n >= 1),
                    "expected cluster 20 to gain replicas: {adj:?}"
                );
            }
            other => panic!("expected AdjustReplicas, got {other:?}"),
        }
    }

    #[test]
    fn wholesale_shift_triggers_full_relocation() {
        let (sizes, freqs, placement) = base_setup(24, 8);
        // Reverse the popularity ranking entirely.
        let new: Vec<f64> = freqs.iter().rev().copied().collect();
        let decision = plan_adaptation(
            &placement,
            &sizes,
            &freqs,
            &new,
            &AdaptationPolicy::default(),
        );
        assert!(
            matches!(decision, AdaptationDecision::FullRelocation(_)),
            "got {decision:?}"
        );
    }

    #[test]
    fn applying_an_adjustment_improves_balance_under_the_new_pattern() {
        let (sizes, freqs, placement) = base_setup(32, 8);
        let mut new = freqs.clone();
        let boost: f64 = freqs.iter().sum::<f64>() * 0.30;
        new[25] += boost;
        let policy = AdaptationPolicy::default();
        let (adapted, decision) =
            adapt_placement(&placement, &sizes, &freqs, &new, 1_000_000, &policy);
        assert!(matches!(decision, AdaptationDecision::AdjustReplicas(..)));
        // Balance of the old placement re-evaluated under the new pattern
        // must not be better than the adapted placement's balance.
        let stale = Placement {
            cluster_to_dpus: placement.cluster_to_dpus.clone(),
            dpu_workload: estimate_workloads(
                &placement.cluster_to_dpus,
                &sizes,
                &normalize(&new),
                8,
            ),
            dpu_vectors: placement.dpu_vectors.clone(),
        };
        assert!(
            adapted.max_to_avg_workload() <= stale.max_to_avg_workload() + 1e-9,
            "adapted {} vs stale {}",
            adapted.max_to_avg_workload(),
            stale.max_to_avg_workload()
        );
        // Structural invariants still hold.
        let input = PlacementInput::new(sizes.clone(), normalize(&new), 8, 1_000_000);
        adapted.validate(&input).unwrap();
    }

    #[test]
    fn cooled_clusters_lose_surplus_replicas_but_keep_one() {
        let (sizes, mut freqs, _) = base_setup(16, 8);
        // Build a placement where cluster 0 is extremely hot (many replicas).
        freqs[0] = freqs.iter().sum::<f64>() * 2.0;
        let input = PlacementInput::new(sizes.clone(), freqs.clone(), 8, 1_000_000);
        let placement = place_pim_aware(&input);
        assert!(placement.replicas(0) > 1);

        // Cluster 0 cools down to an average share; the rest warms slightly.
        let mut new = vec![1.0; 16];
        new[0] = 1.0;
        let policy = AdaptationPolicy {
            major_drift: 0.95, // force the incremental path for this test
            ..AdaptationPolicy::default()
        };
        let decision = plan_adaptation(&placement, &sizes, &freqs, &new, &policy);
        match &decision {
            AdaptationDecision::AdjustReplicas(_, adj) => {
                assert!(
                    adj.remove.iter().any(|&(c, _)| c == 0),
                    "expected cluster 0 to lose replicas: {adj:?}"
                );
                let adapted = apply_adjustment(&placement, adj, &sizes, &new, 1_000_000);
                assert!(adapted.replicas(0) >= 1);
                assert!(adapted.replicas(0) < placement.replicas(0));
            }
            other => panic!("expected AdjustReplicas, got {other:?}"),
        }
    }

    #[test]
    fn additions_respect_dpu_capacity() {
        let sizes = vec![500usize; 8];
        let freqs = vec![1.0f64; 8];
        let input = PlacementInput::new(sizes.clone(), freqs.clone(), 4, 1_200);
        let placement = place_pim_aware(&input);
        // Heat one cluster so the planner wants more replicas than capacity
        // allows; apply_adjustment must not overflow any DPU.
        let mut new = freqs.clone();
        new[0] = 10.0;
        let adj = ReplicaAdjustment {
            add: vec![(0, 3)],
            remove: vec![],
        };
        let adapted = apply_adjustment(&placement, &adj, &sizes, &new, 1_200);
        for &v in &adapted.dpu_vectors {
            assert!(v <= 1_200, "DPU overflows capacity: {v}");
        }
    }

    #[test]
    fn desired_replica_math_matches_algorithm_one() {
        assert_eq!(desired_replicas(100, 1.0, 50.0, 16, 1.0), 2);
        assert_eq!(desired_replicas(100, 1.0, 100.0, 16, 1.0), 1);
        assert_eq!(desired_replicas(1000, 1.0, 10.0, 16, 1.0), 16); // capped
        assert_eq!(desired_replicas(0, 1.0, 10.0, 16, 1.0), 1);
        assert_eq!(desired_replicas(100, 0.0, 10.0, 16, 1.0), 1);
    }

    #[test]
    fn full_relocation_matches_fresh_algorithm_one() {
        let (sizes, _, _) = base_setup(24, 8);
        let new: Vec<f64> = (0..24).map(|i| (24 - i) as f64).collect();
        let relocated = full_relocation(&sizes, &new, 8, 1_000_000);
        let input = PlacementInput::new(sizes.clone(), normalize(&new), 8, 1_000_000);
        let fresh = place_pim_aware(&input);
        assert_eq!(relocated.cluster_to_dpus, fresh.cluster_to_dpus);
    }

    #[test]
    fn nprobe_policy_select_honors_budget_and_bounds() {
        let policy = NprobePolicy::new(2, 64, 1e-4);
        // No budget: the requested nprobe survives, clamped.
        assert_eq!(policy.select(16, None), 16);
        assert_eq!(policy.select(1, None), 2);
        assert_eq!(policy.select(500, None), 64);
        // Budgeted: largest nprobe whose cost fits.
        assert_eq!(policy.select(64, Some(8e-4)), 8);
        assert_eq!(policy.select(64, Some(1.0)), 64);
        assert_eq!(policy.select(64, Some(0.0)), 2);
    }

    #[test]
    fn nprobe_policy_rewrites_only_budgeted_queries() {
        use annkit::vector::Dataset;
        use baselines::engine::QueryOptions;
        let mut queries = Dataset::new(4);
        queries.push(&[0.0; 4]);
        queries.push(&[1.0; 4]);
        let opts = vec![
            QueryOptions::new(10, 32),
            QueryOptions::new(10, 32).with_latency_budget(4e-4),
        ];
        let mut request = SearchRequest::new(queries, opts);
        NprobePolicy::new(2, 64, 1e-4).plan_request(&mut request);
        assert_eq!(request.options()[0].nprobe, 32);
        assert_eq!(request.options()[1].nprobe, 4);
        assert_eq!(request.options()[1].k, 10);
    }

    #[test]
    fn nprobe_policy_calibrates_toward_observations() {
        use annkit::vector::Dataset;
        let mut policy = NprobePolicy::new(1, 64, 1e-4);
        let mut queries = Dataset::new(2);
        queries.push(&[0.0, 0.0]);
        let request = SearchRequest::uniform(&queries, 10, 5);
        let response = SearchResponse {
            seconds: 10.0 * 1e-2, // 1e-2 s per probe: 100× the prior
            ..SearchResponse::empty(0)
        };
        policy.calibrate(&request, &response);
        assert!(policy.seconds_per_probe > 1e-4);
        assert!(policy.seconds_per_probe < 1e-2);
        // Degenerate responses leave the estimate untouched.
        let before = policy.seconds_per_probe;
        policy.calibrate(&request, &SearchResponse::empty(0));
        assert_eq!(policy.seconds_per_probe, before);
    }

    #[test]
    fn decision_exposes_its_drift_report() {
        let (sizes, freqs, placement) = base_setup(12, 4);
        let decision = plan_adaptation(
            &placement,
            &sizes,
            &freqs,
            &freqs,
            &AdaptationPolicy::default(),
        );
        assert_eq!(decision.drift().total_variation, 0.0);
    }
}
