//! Asymmetric-distance lookup tables (LUTs) and ADC scans.
//!
//! Stage (b) of IVFPQ's online pipeline precomputes, for each sub-quantizer
//! `sub` and each codebook entry `code`, the squared distance between the
//! query's residual sub-vector and that centroid. Stage (c) then approximates
//! the query↔point distance by summing `m` table lookups — the Asymmetric
//! Distance Computation (ADC). The LUT is the central data structure the
//! UpANNS DPU kernel keeps in WRAM (8 KB at `m = 16` with `u16` entries).

use crate::distance::l2_squared;
use crate::pq::{ProductQuantizer, KSUB};
use crate::simd::{self, Backend};

/// A lookup table of `m * 256` partial distances for one (query, cluster)
/// pair.
#[derive(Debug, Clone)]
pub struct LookupTable {
    m: usize,
    /// Row-major: entry `(sub, code)` is at `sub * KSUB + code`.
    table: Vec<f32>,
}

impl LookupTable {
    /// Builds the LUT for a query residual (`query - centroid`) against the
    /// quantizer's codebooks.
    ///
    /// # Panics
    /// Panics if `residual.len() != pq.dim()`.
    pub fn build(pq: &ProductQuantizer, residual: &[f32]) -> Self {
        assert_eq!(residual.len(), pq.dim(), "LUT residual dimension mismatch");
        let m = pq.m();
        let dsub = pq.dsub();
        let mut table = vec![0.0f32; m * KSUB];
        for sub in 0..m {
            let rv = &residual[sub * dsub..(sub + 1) * dsub];
            for code in 0..KSUB {
                table[sub * KSUB + code] = l2_squared(rv, pq.centroid(sub, code as u8));
            }
        }
        Self { m, table }
    }

    /// Number of sub-quantizers.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Partial distance for `(sub, code)`.
    #[inline]
    pub fn get(&self, sub: usize, code: u8) -> f32 {
        self.table[sub * KSUB + code as usize]
    }

    /// Looks up a *direct address* `sub * 256 + code`, the flattened layout
    /// UpANNS's PIM-friendly encoding addresses to avoid multiplications on
    /// the DPU (§4.3).
    #[inline]
    pub fn get_flat(&self, flat_index: usize) -> f32 {
        self.table[flat_index]
    }

    /// ADC distance of a single PQ code: the sum of `m` table lookups.
    ///
    /// # Panics
    /// Panics if `code.len() != self.m()`.
    #[inline]
    pub fn adc_distance(&self, code: &[u8]) -> f32 {
        assert_eq!(code.len(), self.m, "ADC code length mismatch");
        let mut sum = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            sum += self.table[sub * KSUB + c as usize];
        }
        sum
    }

    /// Scans a packed code buffer (`n` codes of `m` bytes each) and returns
    /// the ADC distance of every code. This is the memory-bound inner loop
    /// that dominates billion-scale IVFPQ (Figure 1 / Figure 19).
    ///
    /// Dispatches to the best runtime-detected backend in [`crate::simd`]
    /// (AVX2 gathers, 8 records in flight); every backend is bitwise-equal
    /// to the naive record-major scalar scan.
    pub fn adc_scan(&self, packed_codes: &[u8]) -> Vec<f32> {
        let mut out = Vec::new();
        self.adc_scan_into(packed_codes, &mut out);
        out
    }

    /// Allocation-reusing form of [`adc_scan`](Self::adc_scan): clears `out`
    /// and appends one distance per code, letting tight loops (the PIM
    /// kernel's functional scan) reuse one buffer across chunks.
    #[inline]
    pub fn adc_scan_into(&self, packed_codes: &[u8], out: &mut Vec<f32>) {
        self.adc_scan_with(simd::active(), packed_codes, out);
    }

    /// [`adc_scan_into`](Self::adc_scan_into) on an explicit [`Backend`],
    /// used by the equivalence tests and the bench variants to pin a path
    /// regardless of what the dispatcher detected.
    ///
    /// # Panics
    /// Panics if `packed_codes.len()` is not a multiple of `m`.
    pub fn adc_scan_with(&self, backend: Backend, packed_codes: &[u8], out: &mut Vec<f32>) {
        simd::adc_scan_with(backend, &self.table, self.m, packed_codes, out);
    }

    /// The raw table (`m * 256` floats).
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.table
    }

    /// Size of the LUT in bytes when stored at `bytes_per_entry` precision.
    /// The paper stores `u16` entries: 8 KB for `m = 16`.
    pub fn size_bytes(&self, bytes_per_entry: usize) -> usize {
        self.m * KSUB * bytes_per_entry
    }

    /// Quantizes the table to `u16` with a per-table scale, mirroring the
    /// fixed-point LUT the DPU kernel stores in WRAM. Returns the quantized
    /// entries and the scale such that `value ≈ entry as f32 * scale`.
    pub fn quantize_u16(&self) -> (Vec<u16>, f32) {
        let max = self.table.iter().copied().fold(0.0f32, f32::max);
        // Clamp the *scale* (not the max) away from the subnormal range: for
        // an all-near-zero table, `max / u16::MAX` could be subnormal and
        // `v / scale` would overflow to inf, saturating every entry to
        // u16::MAX and inverting the ordering. A floor of MIN_POSITIVE keeps
        // the scale normal; entries then quantize to ~0, which is correct
        // for a degenerate table (and exact for the all-zero one).
        let scale = (max / (u16::MAX as f32)).max(f32::MIN_POSITIVE);
        let q = self
            .table
            .iter()
            .map(|&v| ((v / scale).round().min(u16::MAX as f32)) as u16)
            .collect();
        (q, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Dataset;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(dim: usize, m: usize) -> (ProductQuantizer, Dataset) {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ds = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for _ in 0..400 {
            for x in v.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            ds.push(&v);
        }
        (ProductQuantizer::train(&ds, m, 3), ds)
    }

    #[test]
    fn adc_equals_decoded_distance() {
        // The ADC distance via the LUT must equal the exact distance between
        // the residual and the decoded (reconstructed) code, because both sum
        // the same per-subspace squared distances.
        let (pq, ds) = setup(8, 4);
        let residual = ds.vector(3).to_vec();
        let lut = LookupTable::build(&pq, &residual);
        for i in 0..20 {
            let code = pq.encode(ds.vector(i));
            let adc = lut.adc_distance(&code);
            let exact = l2_squared(&residual, &pq.decode(&code));
            assert!(
                (adc - exact).abs() < 1e-3,
                "ADC {adc} vs exact {exact} at {i}"
            );
        }
    }

    #[test]
    fn scan_matches_individual_lookups() {
        let (pq, ds) = setup(8, 4);
        let lut = LookupTable::build(&pq, ds.vector(0));
        let codes: Vec<Vec<u8>> = (0..10).map(|i| pq.encode(ds.vector(i))).collect();
        let packed = crate::pq::pack_codes(&codes, 4);
        let scanned = lut.adc_scan(&packed);
        assert_eq!(scanned.len(), 10);
        for (i, code) in codes.iter().enumerate() {
            assert_eq!(scanned[i], lut.adc_distance(code));
        }
    }

    #[test]
    fn flat_addressing_matches_2d() {
        let (pq, ds) = setup(8, 4);
        let lut = LookupTable::build(&pq, ds.vector(1));
        for sub in 0..4usize {
            for code in [0u8, 17, 255] {
                assert_eq!(lut.get(sub, code), lut.get_flat(sub * 256 + code as usize));
            }
        }
    }

    #[test]
    fn size_and_quantization() {
        let (pq, ds) = setup(16, 16);
        let lut = LookupTable::build(&pq, ds.vector(0));
        assert_eq!(lut.size_bytes(2), 16 * 256 * 2); // the paper's 8 KB
        let (q, scale) = lut.quantize_u16();
        assert_eq!(q.len(), 16 * 256);
        // Quantized values must reconstruct within one quantization step.
        for (i, &orig) in lut.as_flat().iter().enumerate() {
            let rec = q[i] as f32 * scale;
            assert!((rec - orig).abs() <= scale + 1e-6);
        }
    }

    #[test]
    fn quantize_handles_all_near_zero_table() {
        // Regression: with `max(f32::MIN_POSITIVE)` applied to the *max*, the
        // scale `MIN_POSITIVE / u16::MAX` was subnormal and `v / scale`
        // overflowed to inf for any nonzero v, saturating entries to
        // u16::MAX and inverting the ordering. The scale floor keeps the
        // division finite and the ordering monotone.
        let tiny = LookupTable {
            m: 1,
            table: (0..KSUB).map(|i| i as f32 * 1e-42).collect(),
        };
        let (q, scale) = tiny.quantize_u16();
        assert!(scale.is_normal(), "scale {scale} must not be subnormal");
        assert!(
            q.iter().all(|&e| e < u16::MAX),
            "near-zero entries must not saturate"
        );
        // Ordering of the original (monotone) table is preserved.
        assert!(q.windows(2).all(|w| w[0] <= w[1]));

        // Exactly-zero table quantizes to exactly zero.
        let zero = LookupTable {
            m: 1,
            table: vec![0.0; KSUB],
        };
        let (qz, sz) = zero.quantize_u16();
        assert!(sz.is_normal());
        assert!(qz.iter().all(|&e| e == 0));
    }

    #[test]
    fn scan_backends_agree_bitwise() {
        let (pq, ds) = setup(8, 4);
        let lut = LookupTable::build(&pq, ds.vector(2));
        // 19 records: two full 8-lane blocks plus a 3-record tail.
        let codes: Vec<Vec<u8>> = (0..19).map(|i| pq.encode(ds.vector(i))).collect();
        let packed = crate::pq::pack_codes(&codes, 4);
        let dispatched = lut.adc_scan(&packed);
        for backend in [Backend::Scalar, crate::simd::detect()] {
            let mut out = Vec::new();
            lut.adc_scan_with(backend, &packed, &mut out);
            assert_eq!(out.len(), dispatched.len());
            for (a, b) in out.iter().zip(&dispatched) {
                assert_eq!(a.to_bits(), b.to_bits(), "{backend:?}");
            }
        }
    }

    #[test]
    fn zero_residual_gives_centroid_norms() {
        let (pq, _) = setup(8, 4);
        let zero = vec![0.0f32; 8];
        let lut = LookupTable::build(&pq, &zero);
        // Distance from zero to each centroid equals its squared norm.
        for sub in 0..4 {
            for code in [0u8, 100, 200] {
                let c = pq.centroid(sub, code);
                let norm: f32 = c.iter().map(|x| x * x).sum();
                assert!((lut.get(sub, code) - norm).abs() < 1e-4);
            }
        }
    }
}
