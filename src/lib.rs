//! Root meta-crate of the UpANNS reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency.

#![forbid(unsafe_code)]
pub use annkit;
pub use baselines;
pub use pim_sim;
pub use upanns;
