//! Configuration of the simulated UPMEM system.
//!
//! Default constants follow the hardware used in the paper's evaluation
//! (Table 1 and §2.2): 7 DIMMs × 128 DPUs = 896 DPUs, 350 MHz cores,
//! 64 MB MRAM / 64 KB WRAM / 24 KB IRAM per DPU, 23.22 W peak power per DIMM.

/// Number of DPUs on a single UPMEM DIMM (16 PIM chips × 8 DPUs).
pub const DPUS_PER_DIMM: usize = 128;

/// MRAM capacity per DPU (64 MB).
pub const MRAM_BYTES_PER_DPU: usize = 64 * 1024 * 1024;

/// WRAM capacity per DPU (64 KB).
pub const WRAM_BYTES_PER_DPU: usize = 64 * 1024;

/// IRAM capacity per DPU (24 KB) — tracked for completeness; kernels in this
/// repository never exceed it.
pub const IRAM_BYTES_PER_DPU: usize = 24 * 1024;

/// Maximum number of hardware threads (tasklets) per DPU.
pub const MAX_TASKLETS: usize = 24;

/// MRAM↔WRAM DMA transfer size constraints: multiples of 8 bytes, at least 8
/// and at most 2048 bytes per transfer (§4.2.1).
pub const DMA_MIN_BYTES: usize = 8;
/// Maximum DMA transfer size.
pub const DMA_MAX_BYTES: usize = 2048;
/// DMA transfer granularity.
pub const DMA_ALIGN_BYTES: usize = 8;

/// Configuration of a simulated PIM deployment.
#[derive(Debug, Clone)]
pub struct PimConfig {
    /// Total number of DPUs in the system.
    pub num_dpus: usize,
    /// DPU core clock in Hz (350 MHz on current UPMEM silicon).
    pub clock_hz: f64,
    /// MRAM capacity per DPU in bytes.
    pub mram_bytes: usize,
    /// WRAM capacity per DPU in bytes.
    pub wram_bytes: usize,
    /// Peak power draw per DIMM in watts (Falevoz & Legriel measure 23.22 W).
    pub watts_per_dimm: f64,
    /// Aggregate host→DPU copy bandwidth (bytes/s) when every DPU receives a
    /// buffer of identical size (rank-parallel transfer).
    pub host_push_bw_uniform: f64,
    /// Aggregate host→DPU copy bandwidth (bytes/s) when buffer sizes differ
    /// and transfers serialize.
    pub host_push_bw_serial: f64,
    /// Aggregate DPU→host copy bandwidth (bytes/s) for uniform buffers.
    pub host_pull_bw_uniform: f64,
    /// Aggregate DPU→host copy bandwidth (bytes/s) for non-uniform buffers.
    pub host_pull_bw_serial: f64,
    /// Fixed per-launch overhead in seconds (kernel boot / host API cost).
    pub launch_overhead_s: f64,
    /// Approximate hardware price in USD (Table 1: 2,800 USD for 7 DIMMs),
    /// scaled per DIMM for cost-efficiency comparisons.
    pub usd_per_dimm: f64,
}

impl PimConfig {
    /// The paper's evaluation platform: 7 DIMMs = 896 DPUs.
    pub fn paper_seven_dimms() -> Self {
        Self::with_dpus(7 * DPUS_PER_DIMM)
    }

    /// A system with an arbitrary number of DPUs (used by the Figure 20
    /// scalability sweep, 500–2560 DPUs).
    pub fn with_dpus(num_dpus: usize) -> Self {
        assert!(num_dpus > 0, "a PIM system needs at least one DPU");
        Self {
            num_dpus,
            clock_hz: 350e6,
            mram_bytes: MRAM_BYTES_PER_DPU,
            wram_bytes: WRAM_BYTES_PER_DPU,
            watts_per_dimm: 23.22,
            // Published UPMEM host-transfer characteristics (PrIM): parallel
            // rank-level copies reach a few GB/s, serialized copies are ~10x
            // slower.
            host_push_bw_uniform: 6.0e9,
            host_push_bw_serial: 0.6e9,
            host_pull_bw_uniform: 4.7e9,
            host_pull_bw_serial: 0.5e9,
            launch_overhead_s: 20e-6,
            usd_per_dimm: 400.0,
        }
    }

    /// A deliberately tiny configuration for unit tests: 4 DPUs with small
    /// memories so capacity-violation paths are easy to exercise.
    pub fn small_test() -> Self {
        let mut c = Self::with_dpus(4);
        c.mram_bytes = 1024 * 1024;
        c
    }

    /// Number of DIMMs (rounded up) represented by this configuration.
    pub fn num_dimms(&self) -> usize {
        self.num_dpus.div_ceil(DPUS_PER_DIMM)
    }

    /// Total peak power of the PIM system in watts.
    pub fn peak_watts(&self) -> f64 {
        // Power scales with the *fraction* of DPUs actually populated, so the
        // Figure 20 iso-power comparison (1654 DPUs ≈ 300 W) works out.
        self.num_dpus as f64 / DPUS_PER_DIMM as f64 * self.watts_per_dimm
    }

    /// Approximate price of the PIM system in USD.
    pub fn price_usd(&self) -> f64 {
        self.num_dimms() as f64 * self.usd_per_dimm
    }

    /// Total MRAM capacity across all DPUs in bytes — the dataset must fit
    /// here (56 GB for the paper's 7 DIMMs).
    pub fn total_mram_bytes(&self) -> usize {
        self.num_dpus * self.mram_bytes
    }

    /// Seconds per DPU clock cycle.
    #[inline]
    pub fn seconds_per_cycle(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Overrides the number of DPUs, keeping everything else.
    pub fn scaled_to(&self, num_dpus: usize) -> Self {
        let mut c = self.clone();
        c.num_dpus = num_dpus;
        c
    }
}

impl Default for PimConfig {
    fn default() -> Self {
        Self::paper_seven_dimms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = PimConfig::paper_seven_dimms();
        assert_eq!(c.num_dpus, 896);
        assert_eq!(c.num_dimms(), 7);
        // 7 DIMMs × 23.22 W ≈ 162 W (Table 1).
        assert!((c.peak_watts() - 162.54).abs() < 1.0);
        // 56 GB total MRAM (Table 1).
        assert_eq!(c.total_mram_bytes(), 7 * 128 * 64 * 1024 * 1024);
        assert!(c.price_usd() <= 2800.0 + 1e-9);
    }

    #[test]
    fn scaling_preserves_other_fields() {
        let c = PimConfig::paper_seven_dimms().scaled_to(2560);
        assert_eq!(c.num_dpus, 2560);
        assert_eq!(c.num_dimms(), 20);
        assert_eq!(c.clock_hz, 350e6);
        // 20 DIMMs ≈ 464 W; the iso-power point with an A100 (300 W) is
        // therefore below 2560 DPUs, as in Figure 20.
        assert!(c.peak_watts() > 300.0);
        let iso = PimConfig::with_dpus(1654);
        assert!((iso.peak_watts() - 300.0).abs() < 10.0);
    }

    #[test]
    fn seconds_per_cycle_is_consistent() {
        let c = PimConfig::default();
        assert!((c.seconds_per_cycle() * c.clock_hz - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one DPU")]
    fn zero_dpus_rejected() {
        let _ = PimConfig::with_dpus(0);
    }
}
