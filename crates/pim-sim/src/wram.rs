//! Per-DPU WRAM: the 64 KB single-cycle scratchpad.
//!
//! The DPU has no MMU, so WRAM is managed as raw physical space. UpANNS's
//! Opt2 plans an explicit *reuse* schedule (Figure 6: the codebook region is
//! overwritten by combination sums and then by encoded-point buffers). This
//! allocator models that: named regions can be allocated, freed and reused,
//! capacity is enforced, and the peak footprint is recorded so kernels (and
//! tests) can verify their layout actually fits in 64 KB.

use std::collections::BTreeMap;

/// Errors raised by WRAM allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WramError {
    /// The requested allocation does not fit in the remaining WRAM.
    OutOfMemory {
        /// Name of the region that failed to allocate.
        region: String,
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free.
        available: usize,
    },
    /// A region with this name is already allocated.
    DuplicateRegion(String),
    /// Attempted to free a region that does not exist.
    UnknownRegion(String),
}

impl std::fmt::Display for WramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WramError::OutOfMemory {
                region,
                requested,
                available,
            } => write!(
                f,
                "WRAM out of memory allocating '{region}': requested {requested} B, {available} B free"
            ),
            WramError::DuplicateRegion(r) => write!(f, "WRAM region '{r}' already allocated"),
            WramError::UnknownRegion(r) => write!(f, "WRAM region '{r}' not found"),
        }
    }
}

impl std::error::Error for WramError {}

/// A capacity-enforcing, named-region WRAM allocator.
#[derive(Debug, Clone)]
pub struct WramAllocator {
    capacity: usize,
    regions: BTreeMap<String, usize>,
    in_use: usize,
    peak: usize,
}

impl WramAllocator {
    /// Creates an allocator for a WRAM of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            regions: BTreeMap::new(),
            in_use: 0,
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Bytes currently free.
    #[inline]
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Highest simultaneous allocation observed since creation (or the last
    /// [`reset`](Self::reset)).
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Allocates a named region of `bytes`.
    pub fn alloc(&mut self, region: &str, bytes: usize) -> Result<(), WramError> {
        if self.regions.contains_key(region) {
            return Err(WramError::DuplicateRegion(region.to_string()));
        }
        if bytes > self.available() {
            return Err(WramError::OutOfMemory {
                region: region.to_string(),
                requested: bytes,
                available: self.available(),
            });
        }
        self.regions.insert(region.to_string(), bytes);
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Frees a named region, making its space reusable (the essence of the
    /// Opt2 reuse strategy).
    pub fn free(&mut self, region: &str) -> Result<usize, WramError> {
        match self.regions.remove(region) {
            Some(bytes) => {
                self.in_use -= bytes;
                Ok(bytes)
            }
            None => Err(WramError::UnknownRegion(region.to_string())),
        }
    }

    /// Size of a named region, if allocated.
    pub fn region_size(&self, region: &str) -> Option<usize> {
        self.regions.get(region).copied()
    }

    /// Names of all live regions (sorted).
    pub fn regions(&self) -> Vec<(String, usize)> {
        self.regions
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Frees everything and clears the peak statistic.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.in_use = 0;
        self.peak = 0;
    }

    /// Checks whether a hypothetical set of simultaneous regions would fit,
    /// without allocating. Used by layout planners.
    pub fn would_fit(&self, extra_bytes: usize) -> bool {
        extra_bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse_cycle() {
        // Mirrors the Figure 6 reuse schedule at the paper's sizes:
        // codebook 32 KB + LUT 8 KB, then codebook freed and replaced by
        // combination sums 8 KB + encoded-point buffers 32 KB.
        let mut w = WramAllocator::new(64 * 1024);
        w.alloc("codebook", 32 * 1024).unwrap();
        w.alloc("lut", 8 * 1024).unwrap();
        assert_eq!(w.in_use(), 40 * 1024);
        w.alloc("comb_sums", 8 * 1024).unwrap();
        assert_eq!(w.in_use(), 48 * 1024);
        // The 32 KB of encoded-point read buffers only fit after the codebook
        // is released.
        assert!(w.alloc("encoded_points", 32 * 1024).is_err());
        w.free("codebook").unwrap();
        w.alloc("encoded_points", 32 * 1024).unwrap();
        assert_eq!(w.in_use(), 48 * 1024);
        assert_eq!(w.peak(), 48 * 1024);
        assert!(w.capacity() >= w.peak());
    }

    #[test]
    fn duplicate_and_unknown_regions_are_errors() {
        let mut w = WramAllocator::new(1024);
        w.alloc("a", 100).unwrap();
        assert!(matches!(w.alloc("a", 10), Err(WramError::DuplicateRegion(_))));
        assert!(matches!(w.free("b"), Err(WramError::UnknownRegion(_))));
        assert_eq!(w.region_size("a"), Some(100));
        assert_eq!(w.region_size("zzz"), None);
    }

    #[test]
    fn capacity_enforced_and_reported() {
        let mut w = WramAllocator::new(256);
        assert!(w.would_fit(256));
        assert!(!w.would_fit(257));
        let err = w.alloc("big", 300).unwrap_err();
        assert!(err.to_string().contains("out of memory"));
        w.alloc("half", 128).unwrap();
        assert_eq!(w.available(), 128);
        assert_eq!(w.regions().len(), 1);
        w.reset();
        assert_eq!(w.in_use(), 0);
        assert_eq!(w.peak(), 0);
    }
}
