//! Skewed query workload generation.
//!
//! The UpANNS evaluation stresses that real query streams are heavily skewed:
//! popular clusters receive up to 500× more queries than unpopular ones
//! (Figure 4a), which is what makes the PIM-aware data placement (Opt1)
//! necessary. This module generates query batches whose *cluster popularity*
//! follows a Zipf distribution over the generative clusters, plus helpers to
//! measure the resulting access-frequency histogram.

use crate::synthetic::SyntheticDataset;
use crate::vector::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a query workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Zipf exponent of cluster popularity (0 = uniform; ≈1.0 reproduces the
    /// several-hundred-fold skew of Figure 4a at reduced scale).
    pub popularity_skew: f64,
    /// Additional perturbation applied to a query relative to the sampled
    /// base vector, as a fraction of the dataset's within-cluster noise.
    pub query_noise: f32,
    /// RNG seed for query sampling.
    pub seed: u64,
    /// Seed of the cluster-popularity ranking. Two workloads with different
    /// `seed`s but the same `popularity_seed` draw different queries from the
    /// *same* popularity distribution — which is how real query streams
    /// behave (the paper: "query patterns typically change ... incrementally").
    /// Change this seed to model a major pattern shift.
    pub popularity_seed: u64,
}

impl WorkloadSpec {
    /// A workload of `num_queries` queries with the default (paper-like) skew.
    pub fn new(num_queries: usize) -> Self {
        Self {
            num_queries,
            popularity_skew: 1.0,
            query_noise: 0.5,
            seed: 0xBEEF,
            popularity_seed: 0x9_0DD,
        }
    }

    /// Overrides the popularity skew exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.popularity_skew = skew;
        self
    }

    /// Overrides the RNG seed (which queries get sampled).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the popularity-ranking seed (which clusters are hot) — use
    /// this to model a major query-pattern shift.
    pub fn with_popularity_seed(mut self, seed: u64) -> Self {
        self.popularity_seed = seed;
        self
    }

    /// Generates a query batch against a synthetic dataset: each query picks a
    /// cluster by Zipf popularity, then perturbs a random member of that
    /// cluster.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryBatch {
        assert!(self.num_queries > 0, "workload must contain queries");
        let k = dataset.centers.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Zipf popularity over clusters; cluster ranks are shuffled so that
        // popularity is independent of both cluster id and cluster size
        // (matching the paper's observation that hot clusters are not simply
        // the big ones). The shuffle uses the dedicated popularity seed so
        // workloads drawn with different sampling seeds share a popularity
        // distribution unless the caller shifts it deliberately.
        let mut pop_rng = SmallRng::seed_from_u64(self.popularity_seed);
        let mut rank_of: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = pop_rng.gen_range(0..=i);
            rank_of.swap(i, j);
        }
        let weights: Vec<f64> = (0..k)
            .map(|c| 1.0 / ((rank_of[c] + 1) as f64).powf(self.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();

        // Pre-index members per cluster for sampling.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in dataset.cluster_of.iter().enumerate() {
            members[c].push(i);
        }

        let dim = dataset.vectors.dim();
        let noise = self.query_noise * cluster_noise_estimate(dataset);
        let mut queries = Dataset::with_capacity(dim, self.num_queries);
        let mut target_cluster = Vec::with_capacity(self.num_queries);
        let mut v = vec![0.0f32; dim];

        for _ in 0..self.num_queries {
            // Sample a cluster proportionally to its weight.
            let mut t = rng.gen::<f64>() * total;
            let mut chosen = k - 1;
            for (c, w) in weights.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            // Fall back to the cluster center when a cluster has no members
            // (cannot happen with the default generator, but keeps the API
            // robust for hand-built datasets).
            let base: &[f32] = if members[chosen].is_empty() {
                dataset.centers.vector(chosen)
            } else {
                let m = members[chosen][rng.gen_range(0..members[chosen].len())];
                dataset.vectors.vector(m)
            };
            for (x, b) in v.iter_mut().zip(base) {
                *x = b + rng.gen_range(-1.0f32..1.0) * noise;
            }
            queries.push(&v);
            target_cluster.push(chosen);
        }

        QueryBatch {
            queries,
            target_cluster,
        }
    }
}

/// A generated batch of queries plus the generative cluster each was aimed at.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The query vectors.
    pub queries: Dataset,
    /// The generative cluster each query was sampled from (ground truth for
    /// skew analysis; engines never see this).
    pub target_cluster: Vec<usize>,
}

impl QueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Histogram of target-cluster popularity (Figure 4a's access-frequency
    /// distribution), indexed by cluster id.
    pub fn access_frequency(&self, num_clusters: usize) -> Vec<usize> {
        let mut freq = vec![0usize; num_clusters];
        for &c in &self.target_cluster {
            if c < num_clusters {
                freq[c] += 1;
            }
        }
        freq
    }

    /// Max/min (non-zero) ratio of the access-frequency histogram — the skew
    /// statistic quoted in the paper ("popular clusters receive 500× more
    /// queries than others").
    pub fn access_skew_ratio(&self, num_clusters: usize) -> f64 {
        let freq = self.access_frequency(num_clusters);
        let max = freq.iter().copied().max().unwrap_or(0);
        let min = freq.iter().copied().filter(|&f| f > 0).min().unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Per-cluster access frequencies normalized to probabilities, as used by the
/// data-placement algorithm (its `f_i` input). Computed from a *historical*
/// query batch, mirroring how the paper derives frequencies from past
/// workload.
pub fn cluster_frequencies(batch: &QueryBatch, num_clusters: usize) -> Vec<f64> {
    let freq = batch.access_frequency(num_clusters);
    let total: usize = freq.iter().sum();
    if total == 0 {
        return vec![1.0 / num_clusters as f64; num_clusters];
    }
    freq.iter().map(|&f| f as f64 / total as f64).collect()
}

/// Specification of a *timed* query stream: a [`WorkloadSpec`] plus a Poisson
/// arrival process, as seen by a long-running serving front-end.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The query-content workload (count, skew, seeds).
    pub workload: WorkloadSpec,
    /// Mean offered load in queries/second of simulated time.
    pub mean_qps: f64,
    /// Fraction of queries that are exact repeats of an earlier query in the
    /// stream (RAG/recommendation streams re-ask popular questions, which is
    /// what makes serving-layer result caches effective).
    pub repeat_fraction: f64,
    /// Optional p99 latency SLO (seconds) this stream's traffic expects from
    /// the serving layer. The serving front-end reads it to report SLO
    /// attainment and to target its adaptive batching controller; engines
    /// never see it.
    pub slo_p99_s: Option<f64>,
}

impl StreamSpec {
    /// A stream of `num_queries` paper-like skewed queries arriving at
    /// `mean_qps` on average.
    pub fn new(num_queries: usize, mean_qps: f64) -> Self {
        assert!(mean_qps > 0.0 && mean_qps.is_finite(), "offered load must be positive");
        Self {
            workload: WorkloadSpec::new(num_queries),
            mean_qps,
            repeat_fraction: 0.0,
            slo_p99_s: None,
        }
    }

    /// Overrides the underlying content workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the fraction of queries that exactly repeat an earlier one.
    pub fn with_repeat_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.repeat_fraction = fraction;
        self
    }

    /// Attaches a p99 latency SLO (seconds) to the stream's traffic.
    ///
    /// # Panics
    /// Panics unless the target is a positive, finite time.
    pub fn with_slo_p99(mut self, seconds: f64) -> Self {
        assert!(
            seconds > 0.0 && seconds.is_finite(),
            "the SLO must be a positive time"
        );
        self.slo_p99_s = Some(seconds);
        self
    }

    /// Generates the stream: queries from the content workload, arrival
    /// times from exponential inter-arrival gaps (a Poisson process) drawn
    /// with the workload's seed, so the stream is fully deterministic.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryStream {
        let mut batch = self.workload.generate(dataset);
        let mut rng = SmallRng::seed_from_u64(self.workload.seed ^ 0x5712_EA11);
        if self.repeat_fraction > 0.0 {
            for i in 1..batch.len() {
                if rng.gen::<f64>() < self.repeat_fraction {
                    let j = rng.gen_range(0..i);
                    let earlier = batch.queries.vector(j).to_vec();
                    batch.queries.vector_mut(i).copy_from_slice(&earlier);
                    batch.target_cluster[i] = batch.target_cluster[j];
                }
            }
        }
        let mut arrivals = Vec::with_capacity(batch.len());
        let mut t = 0.0f64;
        for _ in 0..batch.len() {
            // Inverse-CDF sample of Exp(mean_qps); 1-u keeps ln's argument
            // positive.
            let u: f64 = rng.gen::<f64>();
            t += -(1.0 - u).ln() / self.mean_qps;
            arrivals.push(t);
        }
        QueryStream {
            arrivals,
            batch,
            slo_p99_s: self.slo_p99_s,
        }
    }
}

/// A query batch annotated with per-query arrival times (seconds since the
/// stream started, non-decreasing) — the replay input of a serving layer.
#[derive(Debug, Clone)]
pub struct QueryStream {
    /// Arrival time of each query, aligned with `batch`.
    pub arrivals: Vec<f64>,
    /// The queries themselves (plus generative ground truth).
    pub batch: QueryBatch,
    /// The p99 latency SLO the stream's traffic expects, if any (from
    /// [`StreamSpec::with_slo_p99`]).
    pub slo_p99_s: Option<f64>,
}

impl QueryStream {
    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival (0 for an empty stream).
    pub fn duration(&self) -> f64 {
        self.arrivals.last().copied().unwrap_or(0.0)
    }

    /// Realized offered load in queries/second (0 for degenerate streams).
    pub fn offered_qps(&self) -> f64 {
        if self.duration() <= 0.0 {
            0.0
        } else {
            self.len() as f64 / self.duration()
        }
    }

    /// Iterates `(arrival_seconds, query_index)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        self.arrivals.iter().copied().zip(0..self.len())
    }
}

/// Rough estimate of within-cluster spread used to scale query perturbation.
fn cluster_noise_estimate(dataset: &SyntheticDataset) -> f32 {
    // Use the average absolute deviation of a small sample of vectors from
    // their cluster center.
    let sample = dataset.vectors.len().min(200);
    if sample == 0 {
        return 1.0;
    }
    let dim = dataset.vectors.dim();
    let mut total = 0.0f64;
    for i in 0..sample {
        let c = dataset.cluster_of[i];
        let v = dataset.vectors.vector(i);
        let center = dataset.centers.vector(c);
        let dev: f32 = v
            .iter()
            .zip(center)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / dim as f32;
        total += dev as f64;
    }
    (total / sample as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticSpec::sift_like(1200)
            .with_clusters(24)
            .with_seed(2)
            .generate_with_meta()
    }

    #[test]
    fn generates_requested_queries() {
        let ds = dataset();
        let batch = WorkloadSpec::new(300).with_seed(1).generate(&ds);
        assert_eq!(batch.len(), 300);
        assert!(!batch.is_empty());
        assert_eq!(batch.queries.dim(), 128);
        assert_eq!(batch.target_cluster.len(), 300);
    }

    #[test]
    fn skewed_workload_is_more_imbalanced_than_uniform() {
        let ds = dataset();
        let skewed = WorkloadSpec::new(2000).with_skew(1.2).with_seed(3).generate(&ds);
        let uniform = WorkloadSpec::new(2000).with_skew(0.0).with_seed(3).generate(&ds);
        assert!(
            skewed.access_skew_ratio(24) > 3.0 * uniform.access_skew_ratio(24).max(1.0),
            "skewed {} vs uniform {}",
            skewed.access_skew_ratio(24),
            uniform.access_skew_ratio(24)
        );
    }

    #[test]
    fn frequencies_sum_to_one() {
        let ds = dataset();
        let batch = WorkloadSpec::new(500).with_seed(7).generate(&ds);
        let freqs = cluster_frequencies(&batch, 24);
        assert_eq!(freqs.len(), 24);
        let sum: f64 = freqs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(freqs.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn empty_history_falls_back_to_uniform_frequencies() {
        let batch = QueryBatch {
            queries: Dataset::new(4),
            target_cluster: vec![],
        };
        let freqs = cluster_frequencies(&batch, 10);
        assert!(freqs.iter().all(|&f| (f - 0.1).abs() < 1e-12));
    }

    #[test]
    fn query_stream_arrivals_are_sorted_and_match_rate() {
        let ds = dataset();
        let stream = StreamSpec::new(800, 2_000.0).generate(&ds);
        assert_eq!(stream.len(), 800);
        assert!(!stream.is_empty());
        assert!(stream
            .arrivals
            .windows(2)
            .all(|w| w[0] <= w[1]), "arrivals must be non-decreasing");
        // Realized rate is within ±25 % of the offered rate at this length.
        let rate = stream.offered_qps();
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.25,
            "offered {rate} vs requested 2000"
        );
        // Deterministic replay.
        let again = StreamSpec::new(800, 2_000.0).generate(&ds);
        assert_eq!(stream.arrivals, again.arrivals);
        assert_eq!(stream.batch.queries, again.batch.queries);
        // Iterator order matches arrival order.
        let pairs: Vec<(f64, usize)> = stream.iter().take(3).collect();
        assert_eq!(pairs[0].1, 0);
        assert_eq!(pairs[2].1, 2);
    }

    #[test]
    fn query_stream_repeat_fraction_duplicates_earlier_queries() {
        let ds = dataset();
        let duplicates = |s: &QueryStream| {
            (1..s.len())
                .filter(|&i| (0..i).any(|j| s.batch.queries.vector(i) == s.batch.queries.vector(j)))
                .count()
        };
        let repeated = StreamSpec::new(300, 1_000.0)
            .with_repeat_fraction(0.5)
            .generate(&ds);
        let fresh = StreamSpec::new(300, 1_000.0).generate(&ds);
        assert!(duplicates(&repeated) > 80, "expected many repeats");
        assert_eq!(duplicates(&fresh), 0, "default stream has no exact repeats");
    }

    #[test]
    fn stream_carries_its_slo_target() {
        let ds = dataset();
        let plain = StreamSpec::new(50, 1_000.0).generate(&ds);
        assert_eq!(plain.slo_p99_s, None);
        let tight = StreamSpec::new(50, 1_000.0).with_slo_p99(0.25).generate(&ds);
        assert_eq!(tight.slo_p99_s, Some(0.25));
        // The SLO annotation never changes the traffic itself.
        assert_eq!(plain.arrivals, tight.arrivals);
        assert_eq!(plain.batch.queries, tight.batch.queries);
    }

    #[test]
    #[should_panic(expected = "positive time")]
    fn non_positive_slo_is_rejected() {
        let _ = StreamSpec::new(10, 100.0).with_slo_p99(-1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = dataset();
        let a = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        let b = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.target_cluster, b.target_cluster);
    }
}
