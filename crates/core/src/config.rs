//! Configuration of the UpANNS engine.

use pim_sim::config::{DMA_MAX_BYTES, MAX_TASKLETS};

/// Which optimizations of the paper are enabled. `PIM-naive` is the same
/// engine with Opt1/Opt3/Opt4 disabled (it keeps Opt2, the PIM resource
/// management, exactly as defined in §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct UpAnnsConfig {
    /// Number of tasklets (hardware threads) used per DPU. The paper finds 11
    /// saturates the pipeline (§5.3.2), which is the default.
    pub tasklets: usize,
    /// Number of encoded vectors fetched per MRAM read during the distance
    /// calculation stage (§5.4.2; default 16, the paper's sweet spot).
    pub mram_read_vectors: usize,
    /// Opt1: PIM-aware data placement + query scheduling. When disabled,
    /// clusters are assigned to DPUs round-robin without replication (the
    /// naive distribution of §5.3.1).
    pub pim_aware_placement: bool,
    /// Opt3: co-occurrence aware encoding.
    pub cooccurrence_encoding: bool,
    /// Opt4: top-k pruning during the per-DPU merge.
    pub topk_pruning: bool,
    /// Number of high-frequency combinations cached per cluster (the paper's
    /// `m = 256` default, bounded by WRAM).
    pub combos_per_cluster: usize,
    /// Length of each mined combination (3 by default; longer combinations
    /// need more WRAM).
    pub combo_len: usize,
    /// Work-scale factor: the timing model treats every stored vector as
    /// representing this many vectors of the modeled billion-scale dataset.
    /// Functional results are unaffected. 1.0 disables projection.
    pub work_scale: f64,
    /// Workload-threshold growth rate of Algorithm 1 (`rate`, default 0.02).
    pub placement_threshold_rate: f64,
    /// Cap on vectors per DPU used by Algorithm 1 (`MAX_DPU_SIZE`). `None`
    /// derives it from MRAM capacity.
    pub max_dpu_vectors: Option<usize>,
}

impl Default for UpAnnsConfig {
    fn default() -> Self {
        Self {
            tasklets: 11,
            mram_read_vectors: 16,
            pim_aware_placement: true,
            cooccurrence_encoding: true,
            topk_pruning: true,
            combos_per_cluster: 256,
            combo_len: 3,
            work_scale: 1.0,
            placement_threshold_rate: 0.02,
            max_dpu_vectors: None,
        }
    }
}

impl UpAnnsConfig {
    /// The full UpANNS configuration (all four optimizations on).
    pub fn upanns() -> Self {
        Self::default()
    }

    /// The PIM-naive baseline of §5.1: IVFPQ on PIM with only the resource
    /// management (Opt2) enabled.
    pub fn pim_naive() -> Self {
        Self {
            pim_aware_placement: false,
            cooccurrence_encoding: false,
            topk_pruning: false,
            ..Self::default()
        }
    }

    /// Overrides the tasklet count.
    ///
    /// # Panics
    /// Panics if outside `1..=24`.
    pub fn with_tasklets(mut self, tasklets: usize) -> Self {
        assert!(
            (1..=MAX_TASKLETS).contains(&tasklets),
            "tasklets must be in 1..=24"
        );
        self.tasklets = tasklets;
        self
    }

    /// Overrides the number of vectors per MRAM read.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_mram_read_vectors(mut self, vectors: usize) -> Self {
        assert!(vectors > 0, "must read at least one vector per MRAM access");
        self.mram_read_vectors = vectors;
        self
    }

    /// Overrides the work-scale projection factor.
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0 && scale.is_finite(), "work scale must be >= 1");
        self.work_scale = scale;
        self
    }

    /// Enables/disables the PIM-aware placement (Opt1).
    pub fn with_placement(mut self, enabled: bool) -> Self {
        self.pim_aware_placement = enabled;
        self
    }

    /// Enables/disables co-occurrence aware encoding (Opt3).
    pub fn with_cooccurrence(mut self, enabled: bool) -> Self {
        self.cooccurrence_encoding = enabled;
        self
    }

    /// Enables/disables top-k pruning (Opt4).
    pub fn with_topk_pruning(mut self, enabled: bool) -> Self {
        self.topk_pruning = enabled;
        self
    }

    /// The MRAM read size in bytes implied by `mram_read_vectors` for codes of
    /// `code_bytes` each, clamped to the 2 KB hardware limit.
    pub fn mram_read_bytes(&self, code_bytes: usize) -> usize {
        (self.mram_read_vectors * code_bytes).clamp(8, DMA_MAX_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_optimizations() {
        let up = UpAnnsConfig::upanns();
        let naive = UpAnnsConfig::pim_naive();
        assert!(up.pim_aware_placement && up.cooccurrence_encoding && up.topk_pruning);
        assert!(!naive.pim_aware_placement && !naive.cooccurrence_encoding && !naive.topk_pruning);
        assert_eq!(up.tasklets, naive.tasklets);
        assert_eq!(up.mram_read_vectors, naive.mram_read_vectors);
    }

    #[test]
    fn builder_style_overrides() {
        let c = UpAnnsConfig::upanns()
            .with_tasklets(16)
            .with_mram_read_vectors(32)
            .with_work_scale(100.0)
            .with_placement(false)
            .with_cooccurrence(false)
            .with_topk_pruning(false);
        assert_eq!(c.tasklets, 16);
        assert_eq!(c.mram_read_vectors, 32);
        assert_eq!(c.work_scale, 100.0);
        assert!(!c.pim_aware_placement);
    }

    #[test]
    fn mram_read_bytes_respects_hardware_limits() {
        let c = UpAnnsConfig::upanns().with_mram_read_vectors(2);
        assert_eq!(c.mram_read_bytes(16), 32);
        let big = UpAnnsConfig::upanns().with_mram_read_vectors(1000);
        assert_eq!(big.mram_read_bytes(16), 2048);
        let tiny = UpAnnsConfig::upanns().with_mram_read_vectors(1);
        assert_eq!(tiny.mram_read_bytes(4), 8);
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn invalid_tasklets_rejected() {
        let _ = UpAnnsConfig::upanns().with_tasklets(0);
    }
}
