//! Fixture: the threaded runtime subtree may read the wall clock — the
//! `no-wall-clock` allowlist is scoped to the `crates/runtime/` prefix.

use std::time::Instant;

pub fn elapsed_s(since: Instant) -> f64 {
    since.elapsed().as_secs_f64()
}
