//! Smoke test for the benchmark harness: builds an [`EvalContext`] at tiny
//! scale and exercises the same construction + search + reporting path the
//! `figures` binary drives, so bit-rot in that entry path fails `cargo test`
//! instead of only surfacing on the next manual `figures` run.

use annkit::synthetic::DatasetKind;
use baselines::engine::AnnEngine;
use std::process::Command;
use upanns_bench::{fmt, EvalContext, EvalParams, ResultTable};

/// Parameters small enough that the whole smoke test runs in seconds.
fn tiny_params() -> EvalParams {
    EvalParams {
        n: 1_500,
        nlist: 32,
        nprobes: vec![4, 8],
        dpus: 8,
        batch: 24,
        modeled_n: 1_500.0,
        k: 5,
        train_size: 600,
        seed: 7,
    }
}

#[test]
fn eval_context_drives_all_engines_at_tiny_scale() {
    let params = tiny_params();
    let ctx = EvalContext::build(DatasetKind::SiftLike, &params);
    assert_eq!(ctx.queries.len(), params.batch);
    assert_eq!(ctx.history.len(), params.batch * 4);
    assert_eq!(ctx.index.nlist(), params.nlist);

    // The figures experiments sweep every engine over (nprobe, k); do one
    // cell of that sweep per engine and sanity-check the outcomes.
    let nprobe = params.nprobes[0];
    let k = params.k;

    let upanns = ctx.upanns().search_batch(&ctx.queries, nprobe, k);
    let naive = ctx.pim_naive().search_batch(&ctx.queries, nprobe, k);
    let cpu = ctx.cpu().search_batch(&ctx.queries, nprobe, k);
    let gpu = ctx.gpu().search_batch(&ctx.queries, nprobe, k);

    for (name, outcome) in [
        ("upanns", &upanns),
        ("pim_naive", &naive),
        ("cpu", &cpu),
        ("gpu", &gpu),
    ] {
        assert_eq!(outcome.results.len(), params.batch, "{name} result count");
        assert!(outcome.qps() > 0.0, "{name} qps");
        for neighbors in &outcome.results {
            assert!(!neighbors.is_empty(), "{name} returned an empty top-k");
            assert!(neighbors.len() <= k, "{name} returned more than k");
        }
    }

    // All engines share the functional IVFPQ search path, so the answers of
    // the two PIM configurations must agree exactly.
    for (a, b) in upanns.results.iter().zip(&naive.results) {
        let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
        let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
        assert_eq!(ids_a, ids_b, "UpANNS and PIM-naive disagree");
    }

    // The reporting path used by every experiment.
    let mut table = ResultTable::new("smoke", &["engine", "qps"]);
    table.push_row(vec!["upanns".into(), fmt(upanns.qps(), 1)]);
    let md = table.to_markdown();
    assert!(md.contains("| engine | qps |"));
}

#[test]
fn figures_binary_runs_the_cheap_experiments() {
    // `tab1` (hardware table) and `fig7` (MRAM cost model) need no dataset,
    // so they exercise main()'s argument parsing, dispatch and CSV writing
    // in well under a second.
    let out_dir = std::env::temp_dir().join("upanns_figures_smoke");
    std::fs::create_dir_all(&out_dir).expect("create temp dir");
    let output = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["tab1", "fig7"])
        .current_dir(&out_dir)
        .output()
        .expect("figures binary runs");
    assert!(
        output.status.success(),
        "figures exited with {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("tab1_hardware"), "hardware table missing");
    assert!(
        out_dir.join("results").join("tab1_hardware.csv").exists(),
        "CSV output missing"
    );
    std::fs::remove_dir_all(&out_dir).ok();
}
