//! Recall metrics for comparing approximate results with ground truth.

use crate::topk::Neighbor;

/// Recall@k aggregated over a batch of queries, plus per-query details.
#[derive(Debug, Clone)]
pub struct RecallReport {
    /// Mean fraction of ground-truth ids recovered per query.
    pub recall: f64,
    /// Per-query recall values.
    pub per_query: Vec<f64>,
    /// `k` used for the computation.
    pub k: usize,
}

/// Computes recall@k between approximate results and exact results
/// (both as [`Neighbor`] lists; only ids are compared).
///
/// Recall@k of a query = |approx top-k ∩ exact top-k| / k (capped by the
/// number of available ground-truth entries).
///
/// # Panics
/// Panics if the two batches have different numbers of queries.
pub fn recall_at_k(approx: &[Vec<Neighbor>], exact: &[Vec<Neighbor>], k: usize) -> f64 {
    recall_report(approx, exact, k).recall
}

/// Like [`recall_at_k`] but returns per-query detail.
pub fn recall_report(approx: &[Vec<Neighbor>], exact: &[Vec<Neighbor>], k: usize) -> RecallReport {
    assert_eq!(
        approx.len(),
        exact.len(),
        "approx and exact batches differ in query count"
    );
    assert!(k > 0, "k must be positive");
    let mut per_query = Vec::with_capacity(approx.len());
    for (a, e) in approx.iter().zip(exact) {
        let truth: Vec<u64> = e.iter().take(k).map(|n| n.id).collect();
        if truth.is_empty() {
            per_query.push(1.0);
            continue;
        }
        let hits = a
            .iter()
            .take(k)
            .filter(|n| truth.contains(&n.id))
            .count();
        per_query.push(hits as f64 / truth.len() as f64);
    }
    let recall = if per_query.is_empty() {
        1.0
    } else {
        per_query.iter().sum::<f64>() / per_query.len() as f64
    };
    RecallReport {
        recall,
        per_query,
        k,
    }
}

/// Recall@k computed against ground truth expressed as id lists (the format
/// shipped with the public billion-scale datasets).
pub fn recall_against_ids(approx: &[Vec<Neighbor>], truth: &[Vec<u64>], k: usize) -> f64 {
    assert_eq!(approx.len(), truth.len());
    if approx.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (a, t) in approx.iter().zip(truth) {
        let t: Vec<u64> = t.iter().copied().take(k).collect();
        if t.is_empty() {
            total += 1.0;
            continue;
        }
        let hits = a.iter().take(k).filter(|n| t.contains(&n.id)).count();
        total += hits as f64 / t.len() as f64;
    }
    total / approx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[u64]) -> Vec<Neighbor> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Neighbor::new(id, i as f32))
            .collect()
    }

    #[test]
    fn perfect_recall() {
        let approx = vec![n(&[1, 2, 3])];
        let exact = vec![n(&[1, 2, 3])];
        assert_eq!(recall_at_k(&approx, &exact, 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        let approx = vec![n(&[1, 9, 3]), n(&[7, 8])];
        let exact = vec![n(&[1, 2, 3]), n(&[5, 6])];
        let report = recall_report(&approx, &exact, 2);
        // Query 0: approx top-2 {1,9} vs truth {1,2} → 0.5. Query 1: 0.0.
        assert_eq!(report.per_query, vec![0.5, 0.0]);
        assert!((report.recall - 0.25).abs() < 1e-12);
        assert_eq!(report.k, 2);
    }

    #[test]
    fn order_within_topk_does_not_matter() {
        let approx = vec![n(&[3, 2, 1])];
        let exact = vec![n(&[1, 2, 3])];
        assert_eq!(recall_at_k(&approx, &exact, 3), 1.0);
    }

    #[test]
    fn recall_against_id_lists() {
        let approx = vec![n(&[4, 5, 6])];
        let truth = vec![vec![4u64, 9, 6]];
        let r = recall_against_ids(&approx, &truth, 3);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_counts_as_full_recall() {
        let approx = vec![n(&[1])];
        let exact = vec![n(&[])];
        assert_eq!(recall_at_k(&approx, &exact, 5), 1.0);
        let empty: Vec<Vec<Neighbor>> = vec![];
        assert_eq!(recall_at_k(&empty, &empty, 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "differ in query count")]
    fn mismatched_batches_panic() {
        let _ = recall_at_k(&[n(&[1])], &[], 1);
    }
}
