//! The host side of the simulated system: DPU fleet management, CPU↔DPU
//! transfers, kernel launches and the simulated clock.

use crate::config::PimConfig;
use crate::cost::CostModel;
use crate::dpu::Dpu;
use crate::energy::EnergyModel;
use crate::mram::{MramAddr, MramError};
use crate::stats::StageBreakdown;
use crate::tasklet::DpuKernelCtx;

/// A host→DPU copy request: `data` is written to `addr` in DPU `dpu`'s MRAM.
#[derive(Debug, Clone)]
pub struct DpuWrite {
    /// Target DPU index.
    pub dpu: usize,
    /// Target MRAM address.
    pub addr: MramAddr,
    /// Bytes to write.
    pub data: Vec<u8>,
}

impl DpuWrite {
    /// Creates a write request.
    pub fn new(dpu: usize, addr: MramAddr, data: Vec<u8>) -> Self {
        Self { dpu, addr, data }
    }
}

/// A DPU→host copy request: `len` bytes are read from `addr` in DPU `dpu`.
#[derive(Debug, Clone, Copy)]
pub struct DpuRead {
    /// Source DPU index.
    pub dpu: usize,
    /// Source MRAM address.
    pub addr: MramAddr,
    /// Number of bytes to read.
    pub len: usize,
}

impl DpuRead {
    /// Creates a read request.
    pub fn new(dpu: usize, addr: MramAddr, len: usize) -> Self {
        Self { dpu, addr, len }
    }
}

/// Result of one kernel launch across all DPUs.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Simulated seconds of the launch (max over DPUs + launch overhead).
    pub max_dpu_seconds: f64,
    /// Index of the slowest DPU (the "maximum process" of Figure 11).
    pub critical_dpu: usize,
    /// Simulated seconds per DPU.
    pub per_dpu_seconds: Vec<f64>,
    /// Cycles per DPU.
    pub per_dpu_cycles: Vec<u64>,
    /// Stage breakdown of the critical DPU (region label → seconds), which
    /// is what determines the end-to-end stage ratios of Figure 19.
    pub breakdown: StageBreakdown,
}

impl ExecReport {
    /// Ratio of the slowest DPU's time to the mean DPU time — the
    /// "max process / average process" load-balance metric of Figure 11
    /// (1.0 = perfectly balanced).
    pub fn max_to_avg_ratio(&self) -> f64 {
        let busy: Vec<f64> = self
            .per_dpu_seconds
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        if avg <= 0.0 {
            1.0
        } else {
            self.max_dpu_seconds / avg
        }
    }
}

/// The simulated PIM system: a fleet of DPUs orchestrated by the host CPU.
pub struct PimSystem {
    config: PimConfig,
    cost: CostModel,
    dpus: Vec<Dpu>,
    clock_seconds: f64,
    breakdown: StageBreakdown,
}

impl PimSystem {
    /// Creates a system according to `config` with the default cost model.
    pub fn new(config: PimConfig) -> Self {
        Self::with_cost_model(config, CostModel::default())
    }

    /// Creates a system with an explicit cost model (used by calibration
    /// sweeps).
    pub fn with_cost_model(config: PimConfig, cost: CostModel) -> Self {
        let dpus = (0..config.num_dpus)
            .map(|i| Dpu::new(i, config.mram_bytes))
            .collect();
        Self {
            config,
            cost,
            dpus,
            clock_seconds: 0.0,
            breakdown: StageBreakdown::new(),
        }
    }

    /// The system configuration.
    #[inline]
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// The cost model in use.
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of DPUs in the system.
    #[inline]
    pub fn num_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// Immutable access to DPU `id`.
    #[inline]
    pub fn dpu(&self, id: usize) -> &Dpu {
        &self.dpus[id]
    }

    /// Mutable access to DPU `id`.
    #[inline]
    pub fn dpu_mut(&mut self, id: usize) -> &mut Dpu {
        &mut self.dpus[id]
    }

    /// Allocates `len` bytes in DPU `dpu`'s MRAM (no simulated time — this is
    /// an offline/bookkeeping operation).
    pub fn mram_alloc(&mut self, dpu: usize, len: usize) -> Result<MramAddr, MramError> {
        self.dpus[dpu].mram_mut().alloc(len)
    }

    /// Total bytes of MRAM allocated across the fleet.
    pub fn total_mram_allocated(&self) -> usize {
        self.dpus.iter().map(|d| d.mram().allocated()).sum()
    }

    /// Copies buffers from the host to DPU MRAM, charging transfer time.
    /// Transfers across DPUs proceed in parallel only when every buffer has
    /// the same size; otherwise they serialize (§2.2), which is the reason
    /// UpANNS keeps per-DPU query buffers uniform.
    pub fn push_to_dpus(&mut self, stage: &str, writes: &[DpuWrite]) -> Result<(), MramError> {
        if writes.is_empty() {
            return Ok(());
        }
        for w in writes {
            self.dpus[w.dpu].mram_mut().write(w.addr, &w.data)?;
        }
        let total_bytes: usize = writes.iter().map(|w| w.data.len()).sum();
        let uniform = writes.windows(2).all(|p| p[0].data.len() == p[1].data.len());
        let bw = if uniform {
            self.config.host_push_bw_uniform
        } else {
            self.config.host_push_bw_serial
        };
        let seconds = total_bytes as f64 / bw + self.config.launch_overhead_s;
        self.advance(stage, seconds);
        Ok(())
    }

    /// Copies buffers from DPU MRAM back to the host, charging transfer time
    /// with the same uniform/serial rule as [`push_to_dpus`](Self::push_to_dpus).
    pub fn pull_from_dpus(
        &mut self,
        stage: &str,
        reads: &[DpuRead],
    ) -> Result<Vec<Vec<u8>>, MramError> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(reads.len());
        for r in reads {
            out.push(self.dpus[r.dpu].mram().read(r.addr, r.len)?.to_vec());
        }
        let total_bytes: usize = reads.iter().map(|r| r.len).sum();
        let uniform = reads.windows(2).all(|p| p[0].len == p[1].len);
        let bw = if uniform {
            self.config.host_pull_bw_uniform
        } else {
            self.config.host_pull_bw_serial
        };
        let seconds = total_bytes as f64 / bw + self.config.launch_overhead_s;
        self.advance(stage, seconds);
        Ok(out)
    }

    /// Launches a kernel on every DPU. The closure runs once per DPU with a
    /// fresh [`DpuKernelCtx`]; the simulated launch time is the slowest DPU's
    /// time plus a fixed launch overhead, and it is added to the system clock
    /// under `stage`.
    pub fn execute(&mut self, stage: &str, mut kernel: impl FnMut(&mut DpuKernelCtx<'_>)) -> ExecReport {
        let spc = self.config.seconds_per_cycle();
        let mut per_dpu_cycles = Vec::with_capacity(self.dpus.len());
        let mut per_dpu_regions = Vec::with_capacity(self.dpus.len());
        for dpu in self.dpus.iter_mut() {
            let mut ctx = DpuKernelCtx::new(dpu, &self.cost, &self.config);
            kernel(&mut ctx);
            let cycles = ctx.total_cycles();
            let (stats, regions) = ctx.finish();
            dpu.stats_mut().absorb(&stats);
            per_dpu_cycles.push(cycles);
            per_dpu_regions.push(regions);
        }
        let (critical_dpu, &max_cycles) = per_dpu_cycles
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("system has at least one DPU");
        let per_dpu_seconds: Vec<f64> = per_dpu_cycles.iter().map(|&c| c as f64 * spc).collect();
        let max_dpu_seconds = max_cycles as f64 * spc + self.config.launch_overhead_s;

        let mut breakdown = StageBreakdown::new();
        for region in &per_dpu_regions[critical_dpu] {
            breakdown.add(&region.label, region.region_cycles as f64 * spc);
        }

        self.advance(stage, max_dpu_seconds);
        ExecReport {
            max_dpu_seconds,
            critical_dpu,
            per_dpu_seconds,
            per_dpu_cycles,
            breakdown,
        }
    }

    /// Adds host-side compute time (e.g. cluster filtering or scheduling run
    /// on the CPU) to the simulated clock.
    pub fn advance_host(&mut self, stage: &str, seconds: f64) {
        self.advance(stage, seconds);
    }

    fn advance(&mut self, stage: &str, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "invalid time advance");
        self.clock_seconds += seconds;
        self.breakdown.add(stage, seconds);
    }

    /// Simulated seconds elapsed since creation or the last
    /// [`reset_clock`](Self::reset_clock).
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// Stage breakdown of the elapsed time.
    #[inline]
    pub fn breakdown(&self) -> &StageBreakdown {
        &self.breakdown
    }

    /// Resets the simulated clock and breakdown (e.g. after the offline
    /// loading phase, so QPS measures the online phase only).
    pub fn reset_clock(&mut self) {
        self.clock_seconds = 0.0;
        self.breakdown.clear();
    }

    /// The energy model corresponding to this system's configuration.
    pub fn energy_model(&self) -> EnergyModel {
        EnergyModel::pim(&self.config)
    }

    /// Energy in joules consumed over the elapsed simulated time, using the
    /// peak-power approximation the paper uses.
    pub fn energy_joules(&self) -> f64 {
        self.energy_model().energy_joules(self.clock_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_system() -> (PimSystem, Vec<MramAddr>) {
        let mut sys = PimSystem::new(PimConfig::small_test());
        let mut addrs = Vec::new();
        for dpu in 0..sys.num_dpus() {
            addrs.push(sys.mram_alloc(dpu, 4096).unwrap());
        }
        (sys, addrs)
    }

    #[test]
    fn uniform_pushes_are_faster_than_skewed() {
        let (mut sys, addrs) = loaded_system();
        let uniform: Vec<DpuWrite> = (0..sys.num_dpus())
            .map(|d| DpuWrite::new(d, addrs[d], vec![1u8; 1024]))
            .collect();
        sys.push_to_dpus("load", &uniform).unwrap();
        let t_uniform = sys.elapsed_seconds();

        sys.reset_clock();
        let skewed: Vec<DpuWrite> = (0..sys.num_dpus())
            .map(|d| DpuWrite::new(d, addrs[d], vec![1u8; 256 + 512 * d]))
            .collect();
        sys.push_to_dpus("load", &skewed).unwrap();
        let t_skewed = sys.elapsed_seconds();
        // Skewed transfer moves fewer total bytes here yet still takes longer
        // because it serializes.
        let uniform_bytes = 1024 * sys.num_dpus();
        let skewed_bytes: usize = (0..sys.num_dpus()).map(|d| 256 + 512 * d).sum();
        assert!(skewed_bytes < uniform_bytes * 2);
        assert!(t_skewed > t_uniform, "{t_skewed} <= {t_uniform}");
    }

    #[test]
    fn execute_uses_slowest_dpu() {
        let (mut sys, addrs) = loaded_system();
        let report = sys.execute("scan", |ctx| {
            let id = ctx.dpu_id();
            let addr = addrs[id];
            // DPU 3 does 4x the work of the others.
            let reps = if id == 3 { 4 } else { 1 };
            ctx.parallel("dist", 2, |t| {
                for _ in 0..reps {
                    let _ = t.mram_read(addr, 512);
                    t.charge_arith(512, 0);
                }
            });
        });
        assert_eq!(report.critical_dpu, 3);
        assert!(report.max_to_avg_ratio() > 1.5);
        assert_eq!(report.per_dpu_seconds.len(), 4);
        assert!(report.breakdown.seconds("dist") > 0.0);
        assert!(sys.elapsed_seconds() >= report.max_dpu_seconds);
        assert!(sys.energy_joules() > 0.0);
        assert!(sys.dpu(3).stats().mram_bytes_read > sys.dpu(0).stats().mram_bytes_read);
    }

    #[test]
    fn pull_roundtrips_data_and_charges_time() {
        let (mut sys, addrs) = loaded_system();
        let writes: Vec<DpuWrite> = (0..sys.num_dpus())
            .map(|d| DpuWrite::new(d, addrs[d], vec![d as u8; 64]))
            .collect();
        sys.push_to_dpus("load", &writes).unwrap();
        let reads: Vec<DpuRead> = (0..sys.num_dpus())
            .map(|d| DpuRead::new(d, addrs[d], 64))
            .collect();
        let before = sys.elapsed_seconds();
        let data = sys.pull_from_dpus("gather", &reads).unwrap();
        assert!(sys.elapsed_seconds() > before);
        for (d, buf) in data.iter().enumerate() {
            assert_eq!(buf, &vec![d as u8; 64]);
        }
        assert!(sys.breakdown().seconds("gather") > 0.0);
    }

    #[test]
    fn reset_clock_clears_time_but_not_data() {
        let (mut sys, addrs) = loaded_system();
        sys.push_to_dpus("load", &[DpuWrite::new(0, addrs[0], vec![9u8; 128])])
            .unwrap();
        assert!(sys.elapsed_seconds() > 0.0);
        sys.reset_clock();
        assert_eq!(sys.elapsed_seconds(), 0.0);
        assert!(sys.breakdown().is_empty());
        assert_eq!(sys.dpu(0).mram().read(addrs[0], 1).unwrap(), &[9]);
        assert!(sys.total_mram_allocated() >= 4096);
    }

    #[test]
    fn advance_host_accumulates_under_stage() {
        let mut sys = PimSystem::new(PimConfig::small_test());
        sys.advance_host("cluster_filtering", 0.001);
        sys.advance_host("cluster_filtering", 0.002);
        assert!((sys.breakdown().seconds("cluster_filtering") - 0.003).abs() < 1e-12);
    }
}
