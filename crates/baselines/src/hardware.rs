//! Hardware specifications of the three evaluated platforms (Table 1).

use pim_sim::config::PimConfig;
use pim_sim::energy::EnergyModel;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// Platform name ("CPU", "GPU", "PIM").
    pub name: &'static str,
    /// Hardware description string.
    pub description: String,
    /// Approximate price in USD.
    pub price_usd: f64,
    /// Memory capacity in bytes.
    pub memory_bytes: u64,
    /// Peak power in watts.
    pub peak_watts: f64,
    /// Memory bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl HardwareSpec {
    /// The paper's CPU platform: 2× Intel Xeon Silver 4110 with 4× DDR4.
    pub fn cpu() -> Self {
        Self {
            name: "CPU",
            description: "2x Intel Xeon Silver 4110 @ 2.10GHz, 4x DDR4 DRAM".to_string(),
            price_usd: 1_400.0,
            memory_bytes: 128 * 1024 * 1024 * 1024,
            peak_watts: 190.0,
            bandwidth_bytes_per_s: 85.3e9,
        }
    }

    /// The paper's GPU platform: NVIDIA A100 PCIe 80 GB.
    pub fn gpu() -> Self {
        Self {
            name: "GPU",
            description: "NVIDIA A100 PCI-e 80GB".to_string(),
            price_usd: 20_000.0,
            memory_bytes: 80 * 1024 * 1024 * 1024,
            peak_watts: 300.0,
            bandwidth_bytes_per_s: 1_935.0e9,
        }
    }

    /// The paper's PIM platform: 7 UPMEM DIMMs (896 DPUs).
    pub fn pim() -> Self {
        Self::pim_with_config(&PimConfig::paper_seven_dimms())
    }

    /// A PIM platform with an arbitrary DPU count (for the scalability study).
    pub fn pim_with_config(config: &PimConfig) -> Self {
        // 612.5 GB/s for 7 DIMMs in Table 1 → 87.5 GB/s per DIMM.
        let per_dimm_bw = 612.5e9 / 7.0;
        Self {
            name: "PIM",
            description: format!(
                "{}x UPMEM PIM DIMM ({} DPUs)",
                config.num_dimms(),
                config.num_dpus
            ),
            price_usd: config.price_usd(),
            memory_bytes: config.total_mram_bytes() as u64,
            peak_watts: config.peak_watts(),
            bandwidth_bytes_per_s: per_dimm_bw * config.num_dimms() as f64,
        }
    }

    /// The corresponding energy model.
    pub fn energy_model(&self) -> EnergyModel {
        EnergyModel::new(self.description.clone(), self.peak_watts, self.price_usd)
    }

    /// Memory capacity in gibibytes.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Bandwidth in GB/s (decimal).
    pub fn bandwidth_gb_s(&self) -> f64 {
        self.bandwidth_bytes_per_s / 1e9
    }
}

/// All three Table 1 rows in paper order (CPU, GPU, PIM).
pub fn hardware_table() -> Vec<HardwareSpec> {
    vec![HardwareSpec::cpu(), HardwareSpec::gpu(), HardwareSpec::pim()]
}

/// Renders the hardware table as markdown (used by the `figures tab1`
/// harness target).
pub fn hardware_table_markdown() -> String {
    let mut out = String::from(
        "| Hardware | Specification | Approx. Price | Memory capacity | Peak Power | Bandwidth |\n|---|---|---|---|---|---|\n",
    );
    for spec in hardware_table() {
        out.push_str(&format!(
            "| {} | {} | {:.0} USD | {:.0} GB | {:.0} W | {:.1} GB/s |\n",
            spec.name,
            spec.description,
            spec.price_usd,
            spec.memory_gib(),
            spec.peak_watts,
            spec.bandwidth_gb_s(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let cpu = HardwareSpec::cpu();
        let gpu = HardwareSpec::gpu();
        let pim = HardwareSpec::pim();

        assert_eq!(cpu.price_usd, 1_400.0);
        assert_eq!(cpu.peak_watts, 190.0);
        assert!((cpu.bandwidth_gb_s() - 85.3).abs() < 0.1);
        assert!((cpu.memory_gib() - 128.0).abs() < 0.1);

        assert_eq!(gpu.price_usd, 20_000.0);
        assert_eq!(gpu.peak_watts, 300.0);
        assert!((gpu.bandwidth_gb_s() - 1935.0).abs() < 1.0);
        assert!((gpu.memory_gib() - 80.0).abs() < 0.1);

        assert!(pim.price_usd <= 2_800.0);
        assert!((pim.peak_watts - 162.5).abs() < 1.0);
        assert!((pim.bandwidth_gb_s() - 612.5).abs() < 1.0);
        assert!((pim.memory_gib() - 56.0).abs() < 0.1);
    }

    #[test]
    fn scaled_pim_has_proportional_bandwidth() {
        let twenty = HardwareSpec::pim_with_config(&PimConfig::with_dpus(2560));
        assert!((twenty.bandwidth_gb_s() - 20.0 * 612.5 / 7.0).abs() < 1.0);
        assert!(twenty.peak_watts > 400.0);
    }

    #[test]
    fn markdown_table_mentions_all_rows() {
        let md = hardware_table_markdown();
        assert!(md.contains("| CPU |"));
        assert!(md.contains("| GPU |"));
        assert!(md.contains("| PIM |"));
        assert!(md.contains("A100"));
        assert_eq!(hardware_table().len(), 3);
    }

    #[test]
    fn energy_models_are_consistent() {
        for spec in hardware_table() {
            let em = spec.energy_model();
            assert_eq!(em.peak_watts, spec.peak_watts);
            assert_eq!(em.price_usd, spec.price_usd);
        }
    }
}
