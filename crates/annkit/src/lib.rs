//! # annkit — ANNS substrate for the UpANNS reproduction
//!
//! This crate provides every algorithmic building block that the UpANNS paper
//! (SC '25) takes for granted, implemented from scratch:
//!
//! * dense vector datasets and distance kernels ([`vector`], [`distance`]),
//! * k-means / k-means++ coarse quantization ([`kmeans`]),
//! * product quantization — codebook training, encoding, decoding ([`pq`]),
//! * the inverted-file index with per-cluster residual PQ codes ([`ivf`]),
//! * streaming upserts/deletes with epoch-stamped copy-on-write snapshots
//!   ([`mutation`]),
//! * asymmetric-distance lookup tables (LUTs) and ADC scans ([`lut`]),
//! * bounded heaps and exact top-k selection ([`topk`]),
//! * runtime-dispatched SIMD fast paths for the scan/distance/top-k hot
//!   loops, bitwise-equal to their scalar references ([`simd`]),
//! * brute-force exact search and recall metrics ([`flat`], [`recall`]),
//! * synthetic SIFT1B/DEEP1B/SPACEV1B-like dataset generators with skewed
//!   cluster popularity and injected code co-occurrence ([`synthetic`]),
//! * skewed (Zipfian) query workload generators ([`workload`]),
//! * `fvecs`/`bvecs`/`ivecs` dataset file I/O ([`io`]).
//!
//! Higher layers (`baselines`, `upanns`) build the CPU/GPU/PIM search engines
//! on top of these primitives.
//!
//! ## Quick example
//!
//! ```
//! use annkit::prelude::*;
//!
//! // A tiny synthetic SIFT-like dataset.
//! let spec = SyntheticSpec::sift_like(2_000).with_clusters(16).with_seed(7);
//! let dataset = spec.generate();
//!
//! // Train an IVFPQ index: 16 coarse clusters, M=8 sub-quantizers.
//! let params = IvfPqParams::new(16, 8).with_train_size(1_000);
//! let index = IvfPqIndex::train(&dataset, &params, 7);
//!
//! // Query it exactly (ADC over all probed clusters).
//! let query = dataset.vector(0);
//! let result = index.search(query, 4, 10);
//! assert_eq!(result.len(), 10);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is [`simd`], which
// re-allows `unsafe` for `std::arch` intrinsics behind runtime feature
// detection. The `upanns-lint` rule `no-unsafe-outside-simd` machine-checks
// that no other file in the workspace uses the keyword.
#![deny(unsafe_code)]

pub mod distance;
pub mod error;
pub mod flat;
pub mod io;
pub mod ivf;
pub mod kmeans;
pub mod lut;
pub mod mutation;
pub mod pq;
pub mod recall;
pub mod simd;
pub mod synthetic;
pub mod topk;
pub mod vector;
pub mod workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::distance::{l2_squared, Metric};
    pub use crate::flat::FlatIndex;
    pub use crate::ivf::{IvfPqIndex, IvfPqParams, ListEntry};
    pub use crate::kmeans::{KMeans, KMeansParams};
    pub use crate::lut::LookupTable;
    pub use crate::mutation::{IndexSnapshot, MutableIvf, SnapshotTimeline};
    pub use crate::pq::{PqCode, ProductQuantizer};
    pub use crate::recall::{recall_at_k, RecallReport};
    pub use crate::synthetic::{DatasetKind, SyntheticSpec};
    pub use crate::topk::{Neighbor, TopK};
    pub use crate::vector::Dataset;
    pub use crate::workload::{
        MultiTenantSpec, MutationEvent, MutationOp, MutationSpec, MutationStream, QueryBatch,
        QueryStream, StreamSpec, TenantId, TenantProfile, TenantSpec, WorkloadSpec,
    };
}

pub use error::AnnError;
pub use vector::Dataset;
