//! Fixture: a panic shortcut in the serve dispatch hot path.

pub fn head(queue: &[u32]) -> u32 {
    queue.first().copied().unwrap()
}
