//! # upanns-serve — the online serving front-end
//!
//! The engines in this workspace answer one [`SearchRequest`] at a time; a
//! production deployment faces a *stream* of heterogeneous single queries
//! instead (the paper's framing of the online phase: RAG and recommendation
//! traffic with per-query parameters and latency expectations). This crate
//! builds the layer between the two:
//!
//! ```text
//!   QueryStream ──► AdmissionQueue ──► BatchFormer ──► AnnEngine::execute
//!        (timed arrivals)  (bounded,       (closes on size │
//!                           sheds on        or deadline,    ▼
//!                           overload)       groups by    ResultCache
//!                                           compatible   (LRU over exact
//!                                           QueryOptions)  query + options)
//! ```
//!
//! * [`admission::AdmissionQueue`] — a bounded waiting room; arrivals beyond
//!   capacity are shed instead of growing the tail latency without bound.
//! * [`batcher::BatchFormer`] — dynamic batching: queries with compatible
//!   [`QueryOptions`](baselines::engine::QueryOptions) accumulate in an open
//!   group that closes when it reaches `max_batch` **or** when the oldest
//!   member has waited `max_delay_s`.
//! * [`controller::BatchPolicy`] — the source of the former's close
//!   conditions: the static [`controller::FixedPolicy`], or the closed-loop
//!   [`controller::SloController`] (AIMD on the replay clock) that widens the
//!   batching window while the observed p99 holds a latency SLO — recovering
//!   the large-batch throughput the PIM engines need without giving up the
//!   tail-latency target.
//! * [`cache::ResultCache`] — an LRU of exact (query, options) → neighbors
//!   entries; repeated questions (common in RAG streams) bypass the engine.
//! * [`service::SearchService`] — ties the pieces together and replays an
//!   [`annkit::workload::QueryStream`] against the simulated clock, reporting
//!   sustained QPS, latency percentiles and SLO attainment per engine and
//!   policy.
//!
//! The `serve` binary replays a fixed tiny-scale stream through five engines
//! (Faiss-CPU, Faiss-GPU, PIM-naive, UpANNS, and a sharded multi-host UpANNS
//! deployment) under both the fixed and the adaptive policy, and can emit the
//! committed `BENCH_serving.json` regression baseline.

pub mod admission;
pub mod batcher;
pub mod cache;
pub mod controller;
pub mod service;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::admission::AdmissionQueue;
    pub use crate::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
    pub use crate::cache::ResultCache;
    pub use crate::controller::{
        BatchPolicy, ControllerBank, FixedPolicy, SloController, SloControllerConfig,
    };
    pub use crate::service::{SearchService, ServiceConfig, ServiceReport, TenantReport};
    pub use annkit::workload::{MultiTenantSpec, TenantId, TenantProfile, TenantSpec};
}

pub use controller::{BatchPolicy, ControllerBank, FixedPolicy, SloController, SloControllerConfig};
pub use service::{SearchService, ServiceConfig, ServiceReport, TenantReport};
