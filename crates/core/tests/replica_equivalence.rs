//! Replica-equivalence and fault-injection properties for
//! [`ReplicatedMultiHost`] — the answer-purity contract the module docs
//! state, checked against the unreplicated [`MultiHostUpAnns`] merge:
//!
//! * **healthy equivalence** — with every host up, the replicated engine's
//!   per-query ids *and* distance bit patterns are identical to the
//!   unreplicated deployment over the same shard engines, across random
//!   shard counts, host counts (including hosts > shards), replica
//!   factors, k/nprobe mixes, request ids and dispatch times;
//! * **degraded restriction** — with replica factor 1 and one host down,
//!   the answers equal the unreplicated merge *restricted to the surviving
//!   shards*, and the dropped coverage is counted in `stats.degraded`
//!   (never silently absorbed);
//! * **replicated transparency** — with replica factor ≥ 2, one host down
//!   changes nothing about the answers and `degraded` stays 0;
//! * regression tests for the timing paths (in-flight redispatch exactly
//!   once, the no-survivor stall, hedged retries) proving each moves only
//!   simulated time, never the answer, plus `scale_to` migration
//!   conservation and the degenerate-shape errors.

use std::collections::HashSet;
use std::sync::OnceLock;

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use annkit::topk::Neighbor;
use annkit::vector::Dataset;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest};
use pim_sim::config::PimConfig;
use proptest::prelude::*;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;
use upanns::multihost::{shard_ranges, InterconnectModel, MultiHostUpAnns};
use upanns::replica::{
    FaultEvent, FaultSchedule, ReplicaMap, ReplicaMapError, ReplicatedMultiHost,
};

/// Largest shard count the properties draw (index training dominates the
/// suite's cost, so every sharding is trained once and shared).
const MAX_SHARDS: usize = 4;

struct Fixture {
    data: Dataset,
    /// `sharded[s - 1]` is the corpus split into `s` shards with globally
    /// unique vector ids (the serve binary's construction).
    sharded: Vec<Vec<IvfPqIndex>>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let data = SyntheticSpec::sift_like(1_200)
            .with_clusters(12)
            .with_seed(23)
            .generate();
        let params = IvfPqParams::new(8, 16).with_train_size(400);
        let sharded = (1..=MAX_SHARDS)
            .map(|s| {
                shard_ranges(data.len(), s)
                    .iter()
                    .map(|r| {
                        let rows: Vec<usize> = r.clone().collect();
                        let shard_data = data.gather(&rows);
                        let mut index = IvfPqIndex::train_empty(&shard_data, &params, 2);
                        index.add(&shard_data, r.start as u64);
                        index
                    })
                    .collect()
            })
            .collect();
        Fixture { data, sharded }
    })
}

/// One shard's engine — the same construction for the replicated deployment
/// and the unreplicated reference, so any divergence is the replica layer's.
fn shard_engine(index: &IvfPqIndex) -> UpAnnsEngine {
    UpAnnsBuilder::new(index)
        .with_config(UpAnnsConfig::upanns())
        .with_pim_config(PimConfig::with_dpus(48))
        .with_batch_capacity(BatchCapacity {
            batch_size: 32,
            nprobe: 8,
            max_k: 20,
        })
        .build()
}

fn engines_for(shards: &[IvfPqIndex]) -> Vec<UpAnnsEngine> {
    shards.iter().map(shard_engine).collect()
}

/// The option universe the properties mix (all inside the batch capacity).
fn option_of(tag: u8) -> QueryOptions {
    match tag % 3 {
        0 => QueryOptions::new(10, 8),
        1 => QueryOptions::new(10, 4),
        _ => QueryOptions::new(20, 8),
    }
}

fn request_of(rows: &[usize], tags: &[u8], id: u64, at: f64) -> SearchRequest {
    let queries = fixture().data.gather(rows);
    let options = rows
        .iter()
        .zip(tags.iter().cycle())
        .map(|(_, &t)| option_of(t))
        .collect();
    SearchRequest::new(queries, options).with_id(id).with_at(at)
}

///(id, distance bits) per neighbor per query — the bitwise form the
/// equivalence is stated over.
fn bits(results: &[Vec<Neighbor>]) -> Vec<Vec<(u64, u32)>> {
    results
        .iter()
        .map(|q| q.iter().map(|n| (n.id, n.distance.to_bits())).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Healthy replicated execution is bitwise-identical to the
    /// unreplicated multi-host merge over the same shard engines.
    #[test]
    fn healthy_replicated_matches_unreplicated_bitwise(
        shards in 1usize..=MAX_SHARDS,
        hosts in 1usize..=4,
        replicas_raw in 1usize..=4,
        rows in prop::collection::vec(0usize..1_200, 1..6),
        tags in prop::collection::vec(0u8..3, 6),
        id in 0u64..64,
        at in 0.0f64..50.0,
    ) {
        let replicas = replicas_raw.min(hosts);
        let fx = fixture();
        let request = request_of(&rows, &tags, id, at);

        let mut reference = MultiHostUpAnns::new(
            engines_for(&fx.sharded[shards - 1]),
            InterconnectModel::default(),
        );
        let expected = reference.execute(&request);

        let mut replicated = ReplicatedMultiHost::new(
            engines_for(&fx.sharded[shards - 1]),
            hosts,
            replicas,
            InterconnectModel::default(),
        )
        .expect("valid shape");
        let got = replicated.execute(&request);

        prop_assert_eq!(bits(&got.results), bits(&expected.results));
        prop_assert_eq!(got.stats.degraded, 0);
        prop_assert_eq!(got.stats.hedged, 0);
        prop_assert_eq!(got.stats.redispatched, 0);
    }

    /// Replica factor 1, one host down at dispatch time: the answers equal
    /// the unreplicated merge restricted to the surviving shards, and the
    /// lost coverage is flagged as `degraded` — one count per query for the
    /// one uncovered shard.
    #[test]
    fn single_host_down_restricts_to_surviving_coverage(
        shards in 1usize..=MAX_SHARDS,
        down_raw in 0usize..MAX_SHARDS,
        rows in prop::collection::vec(0usize..1_200, 1..6),
        tags in prop::collection::vec(0u8..3, 6),
        id in 0u64..64,
        at in 5.0f64..50.0,
    ) {
        // r = 1 on `shards` hosts maps shard i to host i, so killing host
        // `down` uncovers exactly shard `down`.
        let down = down_raw % shards;
        let fx = fixture();
        let request = request_of(&rows, &tags, id, at);
        let faults = FaultSchedule::new(vec![FaultEvent {
            host: down,
            down_at: 0.0,
            up_at: 1e6,
        }]);

        let mut replicated = ReplicatedMultiHost::new(
            engines_for(&fx.sharded[shards - 1]),
            shards,
            1,
            InterconnectModel::default(),
        )
        .expect("valid shape")
        .with_faults(faults);
        let got = replicated.execute(&request);
        prop_assert_eq!(got.stats.degraded, rows.len() as u64);

        let survivors: Vec<IvfPqIndex> = fx.sharded[shards - 1]
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != down)
            .map(|(_, ix)| ix.clone())
            .collect();
        if survivors.is_empty() {
            // The only shard is uncovered: every query answers empty rather
            // than silently partial.
            prop_assert!(got.results.iter().all(Vec::is_empty));
        } else {
            let mut reference =
                MultiHostUpAnns::new(engines_for(&survivors), InterconnectModel::default());
            let expected = reference.execute(&request);
            prop_assert_eq!(bits(&got.results), bits(&expected.results));
        }
    }

    /// Replica factor ≥ 2: one host down is answer-transparent — results
    /// stay bitwise-identical to the unreplicated merge and nothing is
    /// degraded (the surviving replica covers every shard).
    #[test]
    fn replicated_deployment_masks_a_single_host_outage(
        shards in 1usize..=MAX_SHARDS,
        hosts in 2usize..=4,
        replicas_raw in 2usize..=4,
        down_raw in 0usize..4,
        rows in prop::collection::vec(0usize..1_200, 1..6),
        tags in prop::collection::vec(0u8..3, 6),
        id in 0u64..64,
        at in 5.0f64..50.0,
    ) {
        let replicas = replicas_raw.min(hosts);
        let down = down_raw % hosts;
        let fx = fixture();
        let request = request_of(&rows, &tags, id, at);

        let mut reference = MultiHostUpAnns::new(
            engines_for(&fx.sharded[shards - 1]),
            InterconnectModel::default(),
        );
        let expected = reference.execute(&request);

        let faults = FaultSchedule::new(vec![FaultEvent {
            host: down,
            down_at: 0.0,
            up_at: 1e6,
        }]);
        let mut replicated = ReplicatedMultiHost::new(
            engines_for(&fx.sharded[shards - 1]),
            hosts,
            replicas,
            InterconnectModel::default(),
        )
        .expect("valid shape")
        .with_faults(faults);
        let got = replicated.execute(&request);

        prop_assert_eq!(bits(&got.results), bits(&expected.results));
        prop_assert_eq!(got.stats.degraded, 0);
    }
}

/// A 2-shard/2-host/r=2 deployment whose host 0 dies right after dispatch:
/// the in-flight shard is re-dispatched to the survivor exactly once, the
/// answers do not move, and only completion time pays for the retry.
#[test]
fn inflight_death_redispatches_exactly_once_without_changing_answers() {
    let fx = fixture();
    let rows = [3usize, 500, 900];
    let tags = [0u8, 1, 2];
    let t0 = 10.0;
    let request = request_of(&rows, &tags, 0, t0);

    let mut healthy = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[1]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape");
    let baseline = healthy.execute(&request);
    assert_eq!(baseline.stats.redispatched, 0);

    // Host 0 dies just after the batch dispatches and stays down: the shard
    // it was serving (request id 0 picks host 0 for shard 0) is in flight.
    let faults = FaultSchedule::new(vec![FaultEvent {
        host: 0,
        down_at: t0 + 1e-9,
        up_at: 1e6,
    }]);
    let mut faulted = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[1]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape")
    .with_faults(faults);
    let got = faulted.execute(&request);

    assert_eq!(got.stats.redispatched, 1, "one in-flight shard, one retry");
    assert_eq!(got.stats.degraded, 0, "coverage never dropped");
    assert_eq!(bits(&got.results), bits(&baseline.results));
}

/// Every replica of the in-flight shard is down at the death instant: the
/// shard stalls until the primary's outage ends and re-runs there — the
/// answer survives, and the modeled completion pays for the whole outage.
#[test]
fn no_survivor_stalls_until_the_outage_ends_and_keeps_the_answer() {
    let fx = fixture();
    let rows = [10usize, 700];
    let tags = [0u8, 2];
    let t0 = 10.0;
    let outage_s = 30.0;
    let request = request_of(&rows, &tags, 0, t0);

    let mut healthy = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[0]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape");
    let baseline = healthy.execute(&request);

    // Both hosts die just after dispatch; host 0 (the primary for request
    // id 0) comes back first, so the stalled shard resumes there.
    let faults = FaultSchedule::new(vec![
        FaultEvent {
            host: 0,
            down_at: t0 + 1e-9,
            up_at: t0 + outage_s,
        },
        FaultEvent {
            host: 1,
            down_at: t0 + 1e-9,
            up_at: t0 + outage_s + 10.0,
        },
    ]);
    let mut faulted = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[0]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape")
    .with_faults(faults);
    let got = faulted.execute(&request);

    assert_eq!(got.stats.redispatched, 1, "the stall is counted as a retry");
    assert_eq!(got.stats.degraded, 0, "dispatched coverage is never dropped");
    assert_eq!(bits(&got.results), bits(&baseline.results));
    assert!(
        got.seconds >= outage_s,
        "completion {} s must cover the {} s outage stall",
        got.seconds,
        outage_s
    );
}

/// A hedging budget below one shard's modeled time makes every shard a
/// straggler: the hedge fires (counted once per shard), and because the
/// clone's answers are its primary's, the merge does not change.
#[test]
fn hedged_retries_move_time_but_never_answers() {
    let fx = fixture();
    let rows = [42usize, 1_000];
    let tags = [0u8, 1];
    let request = request_of(&rows, &tags, 0, 5.0);

    let mut plain = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[0]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape");
    let baseline = plain.execute(&request);
    assert_eq!(baseline.stats.hedged, 0);

    let mut hedging = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[0]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape")
    .with_hedge_budget(1e-9);
    let got = hedging.execute(&request);

    assert_eq!(got.stats.hedged, 1, "one shard, one hedge");
    assert_eq!(bits(&got.results), bits(&baseline.results));
    assert!(
        got.seconds <= baseline.seconds + 1e-9,
        "a hedge may only help the completion time"
    );
}

/// `scale_to` keeps every shard on exactly `r` distinct hosts of the new
/// host set, gates fresh hosts behind their migration pull, clamps targets
/// below the replica factor, and leaves `last_balance_ratio` well-defined
/// while the host set changes between batches.
#[test]
fn scale_to_conserves_replication_and_gates_fresh_hosts() {
    let fx = fixture();
    let rows = [1usize, 600, 1_100];
    let tags = [0u8, 1, 2];
    let mut engine = ReplicatedMultiHost::new(
        engines_for(&fx.sharded[2]),
        2,
        2,
        InterconnectModel::default(),
    )
    .expect("valid shape");

    let before = engine.execute(&request_of(&rows, &tags, 0, 1.0));
    assert_eq!(before.stats.degraded, 0);
    assert!(engine.last_balance_ratio().is_finite());

    let migration = engine.scale_to(4, 5.0).expect("growing is valid");
    assert!(migration > 0.0, "shard copies must cost interconnect time");
    assert!((engine.migration_seconds() - migration).abs() < 1e-12);
    assert_eq!(engine.live_hosts(), Some(4));
    let map = engine.replica_map();
    for s in 0..3 {
        let hosts: HashSet<usize> = map.hosts_of(s).into_iter().collect();
        assert_eq!(hosts.len(), 2, "shard {s} not on exactly r hosts");
        assert!(hosts.iter().all(|&h| h < 4));
    }

    // Before the pull completes the fresh hosts cannot serve: the ring now
    // places shard 2 on hosts {2, 3} only, so its coverage is degraded —
    // and the balance ratio stays finite across the host-set change.
    let during = engine.execute(&request_of(&rows, &tags, 0, 5.0 + migration / 2.0));
    assert_eq!(during.stats.degraded, rows.len() as u64);
    assert!(engine.last_balance_ratio().is_finite());

    // After the pull everything serves again, identically to an
    // unreplicated deployment over the same shards.
    let after = engine.execute(&request_of(&rows, &tags, 0, 5.0 + migration + 1.0));
    assert_eq!(after.stats.degraded, 0);
    let mut reference = MultiHostUpAnns::new(
        engines_for(&fx.sharded[2]),
        InterconnectModel::default(),
    );
    let expected = reference.execute(&request_of(&rows, &tags, 0, 5.0 + migration + 1.0));
    assert_eq!(bits(&after.results), bits(&expected.results));

    // Shrinking below the replica factor clamps to it instead of silently
    // under-replicating; a no-op target charges nothing.
    engine.scale_to(1, 100.0).expect("clamped shrink is valid");
    assert_eq!(engine.live_hosts(), Some(2));
    assert_eq!(engine.scale_to(2, 101.0), Some(0.0));
}

/// `up_after` walks chained and overlapping outages to the first real gap.
#[test]
fn up_after_walks_chained_outages() {
    let sched = FaultSchedule::new(vec![
        FaultEvent { host: 1, down_at: 10.0, up_at: 20.0 },
        FaultEvent { host: 1, down_at: 20.0, up_at: 30.0 },
        FaultEvent { host: 2, down_at: 10.0, up_at: 25.0 },
        FaultEvent { host: 2, down_at: 20.0, up_at: 40.0 },
    ]);
    assert_eq!(sched.up_after(1, 5.0), 5.0, "already up");
    assert_eq!(sched.up_after(1, 12.0), 30.0, "chained outages are walked");
    assert_eq!(sched.up_after(1, 30.0), 30.0, "up_at is exclusive");
    assert_eq!(sched.up_after(2, 15.0), 40.0, "overlap extends the walk");
    assert_eq!(sched.up_after(0, 12.0), 12.0, "other hosts unaffected");
}

/// Degenerate shapes error instead of wrapping, and the empty deployments
/// (zero shards, empty requests) answer empty rather than panicking.
#[test]
fn degenerate_shapes_error_and_empty_inputs_answer_empty() {
    let fx = fixture();
    let ic = InterconnectModel::default;

    assert!(matches!(
        ReplicatedMultiHost::new(engines_for(&fx.sharded[0]), 0, 1, ic()),
        Err(ReplicaMapError::ZeroHosts)
    ));
    assert!(matches!(
        ReplicatedMultiHost::new(engines_for(&fx.sharded[0]), 2, 0, ic()),
        Err(ReplicaMapError::ZeroReplicas)
    ));
    assert!(matches!(
        ReplicatedMultiHost::new(engines_for(&fx.sharded[0]), 2, 3, ic()),
        Err(ReplicaMapError::ReplicasExceedHosts { replicas: 3, hosts: 2 })
    ));

    // More hosts than shards is a valid (sparse) deployment.
    let sparse = ReplicaMap::new(2, 5, 3).expect("hosts > shards is fine");
    assert_eq!(sparse.hosts_of(0).len(), 3);

    // Zero shards (an n == 0 corpus): every query answers empty.
    let mut empty = ReplicatedMultiHost::new(Vec::new(), 2, 1, ic()).expect("empty map");
    let request = request_of(&[5, 6], &[0, 1], 0, 1.0);
    let response = empty.execute(&request);
    assert_eq!(response.results.len(), 2);
    assert!(response.results.iter().all(Vec::is_empty));
    assert_eq!(response.stats.degraded, 0, "no shards means nothing to lose");

    // An empty request short-circuits on any deployment.
    let mut engine =
        ReplicatedMultiHost::new(engines_for(&fx.sharded[0]), 2, 2, ic()).expect("valid");
    let nothing = SearchRequest::new(fx.data.gather(&[]), Vec::new()).with_at(3.0);
    assert!(engine.execute(&nothing).results.is_empty());
}
