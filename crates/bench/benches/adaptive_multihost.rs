//! Criterion microbenchmarks of the two extensions built on top of the
//! paper's core system: the §4.1.2 adaptive reaction to query-pattern drift
//! (drift measurement, planning, incremental replica adjustment) and the
//! §5.5 multi-host sharding helpers. Both run on the host CPU between query
//! batches, so their cost must stay far below a batch's search time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use upanns::adaptive::{
    adapt_placement, measure_drift, plan_adaptation, AdaptationPolicy,
};
use upanns::multihost::shard_ranges;
use upanns::placement::{place_pim_aware, PlacementInput};

fn skewed_freqs(clusters: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..clusters)
        .map(|i| 1.0 / ((i % 211) + 1) as f64 + rng.gen_range(0.0..1e-3))
        .collect()
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");
    group.sample_size(20);
    let policy = AdaptationPolicy::default();

    for &clusters in &[1024usize, 4096] {
        let dpus = 896;
        let mut rng = SmallRng::seed_from_u64(3);
        let sizes: Vec<usize> = (0..clusters)
            .map(|_| rng.gen_range(50_000..400_000))
            .collect();
        let old = skewed_freqs(clusters, 11);
        // A moderate drift: a handful of clusters heat up sharply.
        let mut new = old.clone();
        let boost: f64 = old.iter().sum::<f64>() * 0.02;
        for i in 0..(clusters / 50).max(1) {
            new[(i * 37) % clusters] += boost;
        }
        let input = PlacementInput::new(sizes.clone(), old.clone(), dpus, usize::MAX / 2);
        let placement = place_pim_aware(&input);

        group.bench_with_input(
            BenchmarkId::new("measure_drift", clusters),
            &clusters,
            |b, _| b.iter(|| std::hint::black_box(measure_drift(&old, &new, &policy))),
        );
        group.bench_with_input(
            BenchmarkId::new("plan_adaptation", clusters),
            &clusters,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(plan_adaptation(&placement, &sizes, &old, &new, &policy))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adapt_placement", clusters),
            &clusters,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(adapt_placement(
                        &placement, &sizes, &old, &new, 0, &policy,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("multihost");
    group.sample_size(30);
    for &hosts in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("shard_ranges", hosts), &hosts, |b, &h| {
            b.iter(|| std::hint::black_box(shard_ranges(1_000_000_000, h)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive, bench_sharding);
criterion_main!(benches);
