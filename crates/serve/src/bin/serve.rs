//! `serve` — replay a timed query stream through the serving front-end on
//! every engine and report sustained QPS and latency percentiles.
//!
//! ```text
//! cargo run --release -p upanns-serve --bin serve -- [--queries N] [--qps R]
//!     [--repeat F] [--json PATH]
//! ```
//!
//! The replay is fully deterministic (fixed seeds, simulated clock), so the
//! `--json` output doubles as the committed `BENCH_serving.json` regression
//! baseline: rerun with the default arguments and diff.

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use annkit::workload::{StreamSpec, WorkloadSpec};
use baselines::cpu::CpuFaissEngine;
use baselines::engine::QueryOptions;
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns_serve::batcher::BatchFormerConfig;
use upanns_serve::{SearchService, ServiceConfig, ServiceReport};

/// Fixed tiny-scale evaluation shape (kept stable so the JSON baseline is
/// comparable PR-over-PR).
const DATASET_N: usize = 4_000;
const NLIST: usize = 512;
const PQ_M: usize = 16;
const DPUS: usize = 896;
/// Modeled dataset size for the work-scale projection. Chosen so the modeled
/// per-cluster size (MODELED_N / NLIST = 244k vectors) matches the reference
/// billion-scale configuration (10^9 / 4096) that the `figures` experiments
/// use — per-DPU granule times are then comparable to fig12's.
const MODELED_N: f64 = 1.25e8;

struct Args {
    queries: usize,
    qps: f64,
    repeat: f64,
    json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            queries: 1_000,
            qps: 400.0,
            repeat: 0.25,
            json: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("--queries: integer"),
            "--qps" => args.qps = value("--qps").parse().expect("--qps: number"),
            "--repeat" => args.repeat = value("--repeat").parse().expect("--repeat: number"),
            "--json" => args.json = Some(value("--json")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--queries N] [--qps R] [--repeat F] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

/// The per-query options mix: two nprobe tiers at k=10 plus a k=20 tier
/// carrying a latency budget (exercises mixed-options batching end to end).
fn options_of(index: usize) -> QueryOptions {
    match index % 3 {
        0 => QueryOptions::new(10, 8),
        1 => QueryOptions::new(10, 4),
        _ => QueryOptions::new(20, 8).with_latency_budget(0.05),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

fn report_json(r: &ServiceReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"sustained_qps\": {},\n",
            "      \"p50_ms\": {},\n",
            "      \"p99_ms\": {},\n",
            "      \"mean_ms\": {},\n",
            "      \"completed\": {},\n",
            "      \"shed\": {},\n",
            "      \"cache_hit_rate\": {},\n",
            "      \"batches\": {},\n",
            "      \"mean_batch_size\": {},\n",
            "      \"engine_busy_s\": {}\n",
            "    }}"
        ),
        r.engine,
        json_num(r.sustained_qps()),
        json_num(r.p50() * 1e3),
        json_num(r.p99() * 1e3),
        json_num(r.mean_latency() * 1e3),
        r.completed,
        r.shed,
        json_num(r.cache_hit_rate()),
        r.batches(),
        json_num(r.mean_batch_size()),
        json_num(r.engine_busy_s),
    )
}

fn main() {
    let args = parse_args();
    let work_scale = (MODELED_N / DATASET_N as f64).max(1.0);

    eprintln!(
        "building fixture: n={DATASET_N}, nlist={NLIST}, dpus={DPUS}, \
         stream of {} queries at {} qps (repeat fraction {})",
        args.queries, args.qps, args.repeat
    );
    let dataset = SyntheticSpec::sift_like(DATASET_N)
        .with_clusters(16)
        .with_seed(7)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(NLIST, PQ_M).with_train_size(2_400),
        5,
    );
    let history = WorkloadSpec::new(600).with_seed(8).generate(&dataset).queries;
    let stream = StreamSpec::new(args.queries, args.qps)
        .with_repeat_fraction(args.repeat)
        .generate(&dataset);

    let service_config = ServiceConfig {
        queue_capacity: 512,
        batcher: BatchFormerConfig {
            max_batch: 128,
            max_delay_s: 250e-3,
        },
        cache_capacity: 512,
        cache_lookup_s: 2e-6,
    };

    let build_pim = |config: UpAnnsConfig| {
        UpAnnsBuilder::new(&index)
            .with_config(config.with_work_scale(work_scale))
            .with_pim_config(PimConfig::with_dpus(DPUS))
            .with_history(&history, 8)
            .with_batch_capacity(BatchCapacity {
                batch_size: 64,
                nprobe: 8,
                max_k: 20,
            })
            .build()
    };

    let mut reports: Vec<ServiceReport> = Vec::new();
    {
        let engine = CpuFaissEngine::new(&index).with_work_scale(work_scale);
        reports.push(SearchService::new(engine, service_config).replay(&stream, options_of));
    }
    {
        let engine = GpuFaissEngine::new(&index).with_work_scale(work_scale);
        reports.push(SearchService::new(engine, service_config).replay(&stream, options_of));
    }
    reports.push(
        SearchService::new(build_pim(UpAnnsConfig::pim_naive()), service_config)
            .replay(&stream, options_of),
    );
    reports.push(
        SearchService::new(build_pim(UpAnnsConfig::upanns()), service_config)
            .replay(&stream, options_of),
    );

    println!(
        "| engine | sustained QPS | p50 (ms) | p99 (ms) | mean (ms) | completed | shed | cache hit | batches | mean batch |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for r in &reports {
        println!(
            "| {} | {:.1} | {:.3} | {:.3} | {:.3} | {} | {} | {:.1}% | {} | {:.1} |",
            r.engine,
            r.sustained_qps(),
            r.p50() * 1e3,
            r.p99() * 1e3,
            r.mean_latency() * 1e3,
            r.completed,
            r.shed,
            r.cache_hit_rate() * 100.0,
            r.batches(),
            r.mean_batch_size(),
        );
    }

    if let Some(path) = args.json {
        let engines: Vec<String> = reports.iter().map(report_json).collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"upanns-serving-bench-v1\",\n",
                "  \"config\": {{\n",
                "    \"dataset_n\": {},\n",
                "    \"nlist\": {},\n",
                "    \"dpus\": {},\n",
                "    \"work_scale\": {},\n",
                "    \"num_queries\": {},\n",
                "    \"offered_qps\": {},\n",
                "    \"repeat_fraction\": {},\n",
                "    \"queue_capacity\": {},\n",
                "    \"max_batch\": {},\n",
                "    \"max_delay_ms\": {},\n",
                "    \"cache_capacity\": {}\n",
                "  }},\n",
                "  \"engines\": [\n{}\n  ]\n",
                "}}\n"
            ),
            DATASET_N,
            NLIST,
            DPUS,
            json_num(work_scale),
            args.queries,
            json_num(args.qps),
            json_num(args.repeat),
            service_config.queue_capacity,
            service_config.batcher.max_batch,
            json_num(service_config.batcher.max_delay_s * 1e3),
            service_config.cache_capacity,
            engines.join(",\n"),
        );
        std::fs::write(&path, json).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
