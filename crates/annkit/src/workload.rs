//! Skewed query workload generation.
//!
//! The UpANNS evaluation stresses that real query streams are heavily skewed:
//! popular clusters receive up to 500× more queries than unpopular ones
//! (Figure 4a), which is what makes the PIM-aware data placement (Opt1)
//! necessary. This module generates query batches whose *cluster popularity*
//! follows a Zipf distribution over the generative clusters, plus helpers to
//! measure the resulting access-frequency histogram.

use crate::synthetic::SyntheticDataset;
use crate::vector::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a query workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Zipf exponent of cluster popularity (0 = uniform; ≈1.0 reproduces the
    /// several-hundred-fold skew of Figure 4a at reduced scale).
    pub popularity_skew: f64,
    /// Additional perturbation applied to a query relative to the sampled
    /// base vector, as a fraction of the dataset's within-cluster noise.
    pub query_noise: f32,
    /// RNG seed for query sampling.
    pub seed: u64,
    /// Seed of the cluster-popularity ranking. Two workloads with different
    /// `seed`s but the same `popularity_seed` draw different queries from the
    /// *same* popularity distribution — which is how real query streams
    /// behave (the paper: "query patterns typically change ... incrementally").
    /// Change this seed to model a major pattern shift.
    pub popularity_seed: u64,
}

impl WorkloadSpec {
    /// A workload of `num_queries` queries with the default (paper-like) skew.
    pub fn new(num_queries: usize) -> Self {
        Self {
            num_queries,
            popularity_skew: 1.0,
            query_noise: 0.5,
            seed: 0xBEEF,
            popularity_seed: 0x9_0DD,
        }
    }

    /// Overrides the popularity skew exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.popularity_skew = skew;
        self
    }

    /// Overrides the RNG seed (which queries get sampled).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the popularity-ranking seed (which clusters are hot) — use
    /// this to model a major query-pattern shift.
    pub fn with_popularity_seed(mut self, seed: u64) -> Self {
        self.popularity_seed = seed;
        self
    }

    /// Generates a query batch against a synthetic dataset: each query picks a
    /// cluster by Zipf popularity, then perturbs a random member of that
    /// cluster.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryBatch {
        assert!(self.num_queries > 0, "workload must contain queries");
        let k = dataset.centers.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Zipf popularity over clusters; cluster ranks are shuffled so that
        // popularity is independent of both cluster id and cluster size
        // (matching the paper's observation that hot clusters are not simply
        // the big ones). The shuffle uses the dedicated popularity seed so
        // workloads drawn with different sampling seeds share a popularity
        // distribution unless the caller shifts it deliberately.
        let mut pop_rng = SmallRng::seed_from_u64(self.popularity_seed);
        let mut rank_of: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = pop_rng.gen_range(0..=i);
            rank_of.swap(i, j);
        }
        let weights: Vec<f64> = (0..k)
            .map(|c| 1.0 / ((rank_of[c] + 1) as f64).powf(self.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();

        // Pre-index members per cluster for sampling.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in dataset.cluster_of.iter().enumerate() {
            members[c].push(i);
        }

        let dim = dataset.vectors.dim();
        let noise = self.query_noise * cluster_noise_estimate(dataset);
        let mut queries = Dataset::with_capacity(dim, self.num_queries);
        let mut target_cluster = Vec::with_capacity(self.num_queries);
        let mut v = vec![0.0f32; dim];

        for _ in 0..self.num_queries {
            // Sample a cluster proportionally to its weight.
            let mut t = rng.gen::<f64>() * total;
            let mut chosen = k - 1;
            for (c, w) in weights.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            // Fall back to the cluster center when a cluster has no members
            // (cannot happen with the default generator, but keeps the API
            // robust for hand-built datasets).
            let base: &[f32] = if members[chosen].is_empty() {
                dataset.centers.vector(chosen)
            } else {
                let m = members[chosen][rng.gen_range(0..members[chosen].len())];
                dataset.vectors.vector(m)
            };
            for (x, b) in v.iter_mut().zip(base) {
                *x = b + rng.gen_range(-1.0f32..1.0) * noise;
            }
            queries.push(&v);
            target_cluster.push(chosen);
        }

        QueryBatch {
            queries,
            target_cluster,
        }
    }
}

/// A generated batch of queries plus the generative cluster each was aimed at.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The query vectors.
    pub queries: Dataset,
    /// The generative cluster each query was sampled from (ground truth for
    /// skew analysis; engines never see this).
    pub target_cluster: Vec<usize>,
}

impl QueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Histogram of target-cluster popularity (Figure 4a's access-frequency
    /// distribution), indexed by cluster id.
    pub fn access_frequency(&self, num_clusters: usize) -> Vec<usize> {
        let mut freq = vec![0usize; num_clusters];
        for &c in &self.target_cluster {
            if c < num_clusters {
                freq[c] += 1;
            }
        }
        freq
    }

    /// Max/min (non-zero) ratio of the access-frequency histogram — the skew
    /// statistic quoted in the paper ("popular clusters receive 500× more
    /// queries than others").
    pub fn access_skew_ratio(&self, num_clusters: usize) -> f64 {
        let freq = self.access_frequency(num_clusters);
        let max = freq.iter().copied().max().unwrap_or(0);
        let min = freq.iter().copied().filter(|&f| f > 0).min().unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Per-cluster access frequencies normalized to probabilities, as used by the
/// data-placement algorithm (its `f_i` input). Computed from a *historical*
/// query batch, mirroring how the paper derives frequencies from past
/// workload.
pub fn cluster_frequencies(batch: &QueryBatch, num_clusters: usize) -> Vec<f64> {
    let freq = batch.access_frequency(num_clusters);
    let total: usize = freq.iter().sum();
    if total == 0 {
        return vec![1.0 / num_clusters as f64; num_clusters];
    }
    freq.iter().map(|&f| f as f64 / total as f64).collect()
}

/// Identifier of a serving *tenant* — one traffic class among the many a
/// long-running front-end multiplexes (different clients with different
/// arrival rates, parameter mixes, and latency SLOs). The id is an opaque
/// label: it never changes what a query answers, only how the serving layer
/// accounts, admits and batches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant single-tenant streams implicitly belong to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What the serving layer needs to know about one tenant of a generated
/// [`QueryStream`]: its identity, fair-share weight, and latency target.
/// Carried on the stream (see [`QueryStream::tenant_profiles`]) so replay
/// harnesses can configure admission and batching without re-deriving the
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// The tenant this profile describes.
    pub id: TenantId,
    /// Human-readable tenant name for reports ("tight", "batchy", ...).
    pub name: String,
    /// Weighted-fair admission share (relative to the other tenants).
    pub weight: u32,
    /// The tenant's own p99 latency SLO in seconds, if it has one.
    pub slo_p99_s: Option<f64>,
}

/// One tenant's slice of a multi-tenant stream: its own content workload,
/// Poisson rate, repeat fraction and SLO (the wrapped [`StreamSpec`]), plus
/// the serving-layer knobs — fair-share weight and the `(k, nprobe)` option
/// mix its queries cycle through.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The tenant's identity.
    pub id: TenantId,
    /// Report name (defaults to the id's display form).
    pub name: String,
    /// The tenant's own timed workload: rate, repeats, SLO, content skew.
    pub stream: StreamSpec,
    /// Weighted-fair admission share (≥ 1).
    pub weight: u32,
    /// The `(k, nprobe)` pairs the tenant's queries cycle through, in
    /// tenant-local arrival order.
    pub option_mix: Vec<(usize, usize)>,
}

impl TenantSpec {
    /// A tenant with weight 1 and the default `(k=10, nprobe=8)` option mix.
    pub fn new(id: TenantId, stream: StreamSpec) -> Self {
        Self {
            id,
            name: id.to_string(),
            stream,
            weight: 1,
            option_mix: vec![(10, 8)],
        }
    }

    /// Names the tenant in reports.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the weighted-fair admission share.
    ///
    /// # Panics
    /// Panics if the weight is zero (a tenant that may never be admitted).
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "tenant weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Sets the `(k, nprobe)` mix the tenant's queries cycle through.
    ///
    /// # Panics
    /// Panics on an empty mix.
    pub fn with_option_mix(mut self, mix: Vec<(usize, usize)>) -> Self {
        assert!(!mix.is_empty(), "a tenant needs at least one option tier");
        self.option_mix = mix;
        self
    }

    fn profile(&self) -> TenantProfile {
        TenantProfile {
            id: self.id,
            name: self.name.clone(),
            weight: self.weight,
            slo_p99_s: self.stream.slo_p99_s,
        }
    }
}

/// A multi-tenant timed workload: several [`TenantSpec`]s whose independent
/// Poisson streams are merged into one arrival-ordered [`QueryStream`], each
/// query tagged with its tenant ([`QueryStream::tenant_of`]) and carrying the
/// tenant's `(k, nprobe)` plan ([`QueryStream::option_plan`]).
///
/// Each tenant draws its queries with its own seeds, XOR-perturbed by the
/// tenant id so two tenants left at the default seeds still ask different
/// questions; repeats stay tenant-local (a tenant re-asks *its own* popular
/// questions). The merged stream's global
/// [`slo_p99_s`](QueryStream::slo_p99_s) is the **tightest** tenant SLO —
/// the only defensible target for a tenant-blind controller, which is
/// exactly the handicap per-tenant controllers exist to remove.
#[derive(Debug, Clone, Default)]
pub struct MultiTenantSpec {
    /// The tenants, in report order.
    pub tenants: Vec<TenantSpec>,
}

impl MultiTenantSpec {
    /// An empty mix; add tenants with [`with_tenant`](Self::with_tenant).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one tenant.
    ///
    /// # Panics
    /// Panics if the tenant's id is already present.
    pub fn with_tenant(mut self, tenant: TenantSpec) -> Self {
        assert!(
            self.tenants.iter().all(|t| t.id != tenant.id),
            "duplicate tenant id {}",
            tenant.id
        );
        self.tenants.push(tenant);
        self
    }

    /// Generates every tenant's timed stream and merges them by arrival
    /// time (ties broken by tenant order, preserving per-tenant FIFO). The
    /// result is fully deterministic.
    ///
    /// # Panics
    /// Panics on an empty mix or mismatched query dimensions.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryStream {
        assert!(!self.tenants.is_empty(), "a tenant mix needs tenants");
        let per_tenant: Vec<QueryStream> = self
            .tenants
            .iter()
            .map(|t| {
                // Perturb both seeds by the tenant id so tenants sharing the
                // default spec still draw distinct queries and arrival gaps.
                let mut spec = t.stream.clone();
                let salt = 0x7EA0_0001u64.wrapping_mul(u64::from(t.id.0) + 1);
                spec.workload.seed ^= salt;
                spec.workload.popularity_seed ^= salt.rotate_left(17);
                spec.generate(dataset)
            })
            .collect();

        let dim = per_tenant[0].batch.queries.dim();
        let total: usize = per_tenant.iter().map(|s| s.len()).sum();
        let mut queries = Dataset::with_capacity(dim, total);
        let mut target_cluster = Vec::with_capacity(total);
        let mut arrivals = Vec::with_capacity(total);
        let mut tenant_of = Vec::with_capacity(total);
        let mut option_plan = Vec::with_capacity(total);

        // K-way merge by arrival time; `next[i]` is tenant i's cursor.
        let mut next = vec![0usize; per_tenant.len()];
        for _ in 0..total {
            let (i, _) = per_tenant
                .iter()
                .enumerate()
                .filter(|(i, s)| next[*i] < s.len())
                .map(|(i, s)| (i, s.arrivals[next[i]]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("cursors not exhausted");
            let spec = &self.tenants[i];
            let stream = &per_tenant[i];
            let local = next[i];
            arrivals.push(stream.arrivals[local]);
            queries.push(stream.batch.queries.vector(local));
            target_cluster.push(stream.batch.target_cluster[local]);
            tenant_of.push(spec.id);
            option_plan.push(spec.option_mix[local % spec.option_mix.len()]);
            next[i] += 1;
        }

        QueryStream {
            arrivals,
            batch: QueryBatch {
                queries,
                target_cluster,
            },
            slo_p99_s: self
                .tenants
                .iter()
                .filter_map(|t| t.stream.slo_p99_s)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
            tenant_of,
            option_plan,
            tenant_profiles: self.tenants.iter().map(|t| t.profile()).collect(),
        }
    }
}

/// Specification of a *timed* query stream: a [`WorkloadSpec`] plus a Poisson
/// arrival process, as seen by a long-running serving front-end.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The query-content workload (count, skew, seeds).
    pub workload: WorkloadSpec,
    /// Mean offered load in queries/second of simulated time.
    pub mean_qps: f64,
    /// Fraction of queries that are exact repeats of an earlier query in the
    /// stream (RAG/recommendation streams re-ask popular questions, which is
    /// what makes serving-layer result caches effective).
    pub repeat_fraction: f64,
    /// Optional p99 latency SLO (seconds) this stream's traffic expects from
    /// the serving layer. The serving front-end reads it to report SLO
    /// attainment and to target its adaptive batching controller; engines
    /// never see it.
    pub slo_p99_s: Option<f64>,
}

impl StreamSpec {
    /// A stream of `num_queries` paper-like skewed queries arriving at
    /// `mean_qps` on average.
    pub fn new(num_queries: usize, mean_qps: f64) -> Self {
        assert!(mean_qps > 0.0 && mean_qps.is_finite(), "offered load must be positive");
        Self {
            workload: WorkloadSpec::new(num_queries),
            mean_qps,
            repeat_fraction: 0.0,
            slo_p99_s: None,
        }
    }

    /// Overrides the underlying content workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the fraction of queries that exactly repeat an earlier one.
    pub fn with_repeat_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.repeat_fraction = fraction;
        self
    }

    /// Attaches a p99 latency SLO (seconds) to the stream's traffic.
    ///
    /// # Panics
    /// Panics unless the target is a positive, finite time.
    pub fn with_slo_p99(mut self, seconds: f64) -> Self {
        assert!(
            seconds > 0.0 && seconds.is_finite(),
            "the SLO must be a positive time"
        );
        self.slo_p99_s = Some(seconds);
        self
    }

    /// Generates the stream: queries from the content workload, arrival
    /// times from exponential inter-arrival gaps (a Poisson process) drawn
    /// with the workload's seed, so the stream is fully deterministic.
    pub fn generate(&self, dataset: &SyntheticDataset) -> QueryStream {
        let mut batch = self.workload.generate(dataset);
        let mut rng = SmallRng::seed_from_u64(self.workload.seed ^ 0x5712_EA11);
        if self.repeat_fraction > 0.0 {
            for i in 1..batch.len() {
                if rng.gen::<f64>() < self.repeat_fraction {
                    let j = rng.gen_range(0..i);
                    let earlier = batch.queries.vector(j).to_vec();
                    batch.queries.vector_mut(i).copy_from_slice(&earlier);
                    batch.target_cluster[i] = batch.target_cluster[j];
                }
            }
        }
        let mut arrivals = Vec::with_capacity(batch.len());
        let mut t = 0.0f64;
        for _ in 0..batch.len() {
            // Inverse-CDF sample of Exp(mean_qps); 1-u keeps ln's argument
            // positive.
            let u: f64 = rng.gen::<f64>();
            t += -(1.0 - u).ln() / self.mean_qps;
            arrivals.push(t);
        }
        let n = batch.len();
        QueryStream {
            arrivals,
            batch,
            slo_p99_s: self.slo_p99_s,
            tenant_of: vec![TenantId::DEFAULT; n],
            option_plan: Vec::new(),
            tenant_profiles: vec![TenantProfile {
                id: TenantId::DEFAULT,
                name: "default".to_string(),
                weight: 1,
                slo_p99_s: self.slo_p99_s,
            }],
        }
    }
}

/// A query batch annotated with per-query arrival times (seconds since the
/// stream started, non-decreasing) — the replay input of a serving layer.
#[derive(Debug, Clone)]
pub struct QueryStream {
    /// Arrival time of each query, aligned with `batch`.
    pub arrivals: Vec<f64>,
    /// The queries themselves (plus generative ground truth).
    pub batch: QueryBatch,
    /// The p99 latency SLO the stream's traffic expects, if any (from
    /// [`StreamSpec::with_slo_p99`]; the *tightest* tenant SLO for a
    /// [`MultiTenantSpec`] stream).
    pub slo_p99_s: Option<f64>,
    /// The tenant each query belongs to, aligned with `arrivals`
    /// ([`TenantId::DEFAULT`] throughout for single-tenant streams).
    pub tenant_of: Vec<TenantId>,
    /// Per-query `(k, nprobe)` plan from the tenants' option mixes, aligned
    /// with `arrivals`. Empty for single-tenant streams, whose replay
    /// harness chooses options itself.
    pub option_plan: Vec<(usize, usize)>,
    /// One profile per tenant, in spec order (a single `default` profile for
    /// single-tenant streams).
    pub tenant_profiles: Vec<TenantProfile>,
}

impl QueryStream {
    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival (0 for an empty stream).
    pub fn duration(&self) -> f64 {
        self.arrivals.last().copied().unwrap_or(0.0)
    }

    /// Realized offered load in queries/second (0 for degenerate streams).
    pub fn offered_qps(&self) -> f64 {
        if self.duration() <= 0.0 {
            0.0
        } else {
            self.len() as f64 / self.duration()
        }
    }

    /// Iterates `(arrival_seconds, query_index)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        self.arrivals.iter().copied().zip(0..self.len())
    }

    /// The tenant of query `index` ([`TenantId::DEFAULT`] when the stream
    /// carries no tenant tags).
    pub fn tenant(&self, index: usize) -> TenantId {
        self.tenant_of.get(index).copied().unwrap_or(TenantId::DEFAULT)
    }

    /// The profile of `tenant`, if the stream knows it.
    pub fn profile(&self, tenant: TenantId) -> Option<&TenantProfile> {
        self.tenant_profiles.iter().find(|p| p.id == tenant)
    }

    /// Queries belonging to `tenant`.
    pub fn tenant_query_count(&self, tenant: TenantId) -> usize {
        self.tenant_of.iter().filter(|&&t| t == tenant).count()
    }
}

/// One mutation operation against the live index.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    /// Insert-or-replace `id` with `vector`.
    Upsert {
        /// The row id to insert or replace.
        id: u64,
        /// The vector content.
        vector: Vec<f32>,
    },
    /// Remove `id` (a no-op if it is not indexed).
    Delete {
        /// The row id to remove.
        id: u64,
    },
}

/// One timed mutation event of a [`MutationStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct MutationEvent {
    /// Arrival time on the replay clock (seconds).
    pub at: f64,
    /// The tenant whose corpus mutates.
    pub tenant: TenantId,
    /// The operation.
    pub op: MutationOp,
}

/// One tenant's mutation rates within a [`MutationSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMutationSpec {
    /// The mutating tenant.
    pub tenant: TenantId,
    /// Mean upsert rate (operations/second of simulated time).
    pub upsert_qps: f64,
    /// Mean delete rate (operations/second of simulated time).
    pub delete_qps: f64,
}

/// Specification of a deterministic mutation stream: per-tenant Poisson
/// upsert/delete rates over a fixed horizon, interleaved arrival-ordered
/// with the query stream by the serving layer.
///
/// Generation is a pure function of the spec, the dataset and the base
/// corpus size, so the replay and the threaded twin apply the exact same
/// mutations at the exact same simulated times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationSpec {
    /// Per-tenant rates, in report order.
    pub tenants: Vec<TenantMutationSpec>,
    /// Horizon in simulated seconds (events beyond it are not generated).
    pub duration_s: f64,
    /// RNG seed for arrival gaps, id choices and vector perturbation.
    pub seed: u64,
}

impl MutationSpec {
    /// An empty spec over `duration_s` seconds with the default seed.
    pub fn new(duration_s: f64) -> Self {
        assert!(
            duration_s >= 0.0 && duration_s.is_finite(),
            "mutation horizon must be a non-negative time"
        );
        Self {
            tenants: Vec::new(),
            duration_s,
            seed: 0x11FE_57A6,
        }
    }

    /// Adds one tenant's upsert/delete rates.
    ///
    /// # Panics
    /// Panics on negative or non-finite rates, or a duplicate tenant.
    pub fn with_tenant(mut self, tenant: TenantId, upsert_qps: f64, delete_qps: f64) -> Self {
        assert!(
            upsert_qps >= 0.0 && upsert_qps.is_finite() && delete_qps >= 0.0 && delete_qps.is_finite(),
            "mutation rates must be non-negative and finite"
        );
        assert!(
            self.tenants.iter().all(|t| t.tenant != tenant),
            "duplicate mutating tenant {tenant}"
        );
        self.tenants.push(TenantMutationSpec {
            tenant,
            upsert_qps,
            delete_qps,
        });
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the spec can generate no events (the frozen-index fast path).
    pub fn is_empty(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.upsert_qps <= 0.0 && t.delete_qps <= 0.0)
            || self.duration_s <= 0.0
    }

    /// Generates the arrival-ordered event stream against `dataset`, whose
    /// first `base_ntotal` row ids form the initially live corpus. Upserted
    /// vectors are seeded perturbations of existing dataset vectors; fresh
    /// ids are assigned from `base_ntotal` upward; deletes target a random
    /// currently-live id, so the stream is always applicable in order.
    pub fn generate(&self, dataset: &SyntheticDataset, base_ntotal: u64) -> MutationStream {
        // Live ids in deterministic insertion order; deletes swap-remove a
        // seeded random position. Shared across tenants (the corpus is one
        // index), so event generation must advance in *global* arrival
        // order — otherwise one tenant could delete an id another tenant
        // only upserts later on the clock.
        let mut live: Vec<u64> = (0..base_ntotal).collect();
        let mut next_id = base_ntotal;
        let noise = 0.5 * cluster_noise_estimate(dataset);
        let dim = dataset.vectors.dim();

        struct Cursor {
            tenant: TenantId,
            upsert_qps: f64,
            rate: f64,
            rng: SmallRng,
            next_at: f64,
        }
        let mut cursors: Vec<Cursor> = Vec::new();
        for t in &self.tenants {
            let rate = t.upsert_qps + t.delete_qps;
            if rate <= 0.0 {
                continue;
            }
            let salt = 0x9B5E_0007u64.wrapping_mul(u64::from(t.tenant.0) + 1);
            let mut rng = SmallRng::seed_from_u64(self.seed ^ salt);
            let u: f64 = rng.gen::<f64>();
            let next_at = -(1.0 - u).ln() / rate;
            cursors.push(Cursor {
                tenant: t.tenant,
                upsert_qps: t.upsert_qps,
                rate,
                rng,
                next_at,
            });
        }

        let mut events = Vec::new();
        // The tenant with the earliest pending event goes next (ties break
        // toward spec order — deterministic).
        while let Some(ci) = cursors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.next_at <= self.duration_s)
            .min_by(|a, b| {
                a.1.next_at
                    .partial_cmp(&b.1.next_at)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        {
            let c = &mut cursors[ci];
            let at = c.next_at;
            let is_upsert = c.rng.gen::<f64>() * c.rate < c.upsert_qps;
            let op = if is_upsert {
                let base = c.rng.gen_range(0..dataset.vectors.len());
                let mut v = dataset.vectors.vector(base).to_vec();
                for x in v.iter_mut().take(dim) {
                    *x += c.rng.gen_range(-1.0f32..1.0) * noise;
                }
                let id = next_id;
                next_id += 1;
                live.push(id);
                Some(MutationOp::Upsert { id, vector: v })
            } else if live.is_empty() {
                None
            } else {
                let pos = c.rng.gen_range(0..live.len());
                let id = live.swap_remove(pos);
                Some(MutationOp::Delete { id })
            };
            if let Some(op) = op {
                events.push(MutationEvent {
                    at,
                    tenant: c.tenant,
                    op,
                });
            }
            let u: f64 = c.rng.gen::<f64>();
            c.next_at = at + -(1.0 - u).ln() / c.rate;
        }
        MutationStream { events }
    }
}

/// An arrival-ordered stream of mutation events (see [`MutationSpec`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationStream {
    /// The events, sorted by arrival time.
    pub events: Vec<MutationEvent>,
}

impl MutationStream {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event (0 for an empty stream).
    pub fn duration(&self) -> f64 {
        self.events.last().map(|e| e.at).unwrap_or(0.0)
    }

    /// Number of upsert events.
    pub fn upserts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, MutationOp::Upsert { .. }))
            .count()
    }

    /// Number of delete events.
    pub fn deletes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, MutationOp::Delete { .. }))
            .count()
    }
}

/// Rough estimate of within-cluster spread used to scale query perturbation.
fn cluster_noise_estimate(dataset: &SyntheticDataset) -> f32 {
    // Use the average absolute deviation of a small sample of vectors from
    // their cluster center.
    let sample = dataset.vectors.len().min(200);
    if sample == 0 {
        return 1.0;
    }
    let dim = dataset.vectors.dim();
    let mut total = 0.0f64;
    for i in 0..sample {
        let c = dataset.cluster_of[i];
        let v = dataset.vectors.vector(i);
        let center = dataset.centers.vector(c);
        let dev: f32 = v
            .iter()
            .zip(center)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / dim as f32;
        total += dev as f64;
    }
    (total / sample as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticSpec::sift_like(1200)
            .with_clusters(24)
            .with_seed(2)
            .generate_with_meta()
    }

    #[test]
    fn generates_requested_queries() {
        let ds = dataset();
        let batch = WorkloadSpec::new(300).with_seed(1).generate(&ds);
        assert_eq!(batch.len(), 300);
        assert!(!batch.is_empty());
        assert_eq!(batch.queries.dim(), 128);
        assert_eq!(batch.target_cluster.len(), 300);
    }

    #[test]
    fn skewed_workload_is_more_imbalanced_than_uniform() {
        let ds = dataset();
        let skewed = WorkloadSpec::new(2000).with_skew(1.2).with_seed(3).generate(&ds);
        let uniform = WorkloadSpec::new(2000).with_skew(0.0).with_seed(3).generate(&ds);
        assert!(
            skewed.access_skew_ratio(24) > 3.0 * uniform.access_skew_ratio(24).max(1.0),
            "skewed {} vs uniform {}",
            skewed.access_skew_ratio(24),
            uniform.access_skew_ratio(24)
        );
    }

    #[test]
    fn frequencies_sum_to_one() {
        let ds = dataset();
        let batch = WorkloadSpec::new(500).with_seed(7).generate(&ds);
        let freqs = cluster_frequencies(&batch, 24);
        assert_eq!(freqs.len(), 24);
        let sum: f64 = freqs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(freqs.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn empty_history_falls_back_to_uniform_frequencies() {
        let batch = QueryBatch {
            queries: Dataset::new(4),
            target_cluster: vec![],
        };
        let freqs = cluster_frequencies(&batch, 10);
        assert!(freqs.iter().all(|&f| (f - 0.1).abs() < 1e-12));
    }

    #[test]
    fn query_stream_arrivals_are_sorted_and_match_rate() {
        let ds = dataset();
        let stream = StreamSpec::new(800, 2_000.0).generate(&ds);
        assert_eq!(stream.len(), 800);
        assert!(!stream.is_empty());
        assert!(stream
            .arrivals
            .windows(2)
            .all(|w| w[0] <= w[1]), "arrivals must be non-decreasing");
        // Realized rate is within ±25 % of the offered rate at this length.
        let rate = stream.offered_qps();
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.25,
            "offered {rate} vs requested 2000"
        );
        // Deterministic replay.
        let again = StreamSpec::new(800, 2_000.0).generate(&ds);
        assert_eq!(stream.arrivals, again.arrivals);
        assert_eq!(stream.batch.queries, again.batch.queries);
        // Iterator order matches arrival order.
        let pairs: Vec<(f64, usize)> = stream.iter().take(3).collect();
        assert_eq!(pairs[0].1, 0);
        assert_eq!(pairs[2].1, 2);
    }

    #[test]
    fn query_stream_repeat_fraction_duplicates_earlier_queries() {
        let ds = dataset();
        let duplicates = |s: &QueryStream| {
            (1..s.len())
                .filter(|&i| (0..i).any(|j| s.batch.queries.vector(i) == s.batch.queries.vector(j)))
                .count()
        };
        let repeated = StreamSpec::new(300, 1_000.0)
            .with_repeat_fraction(0.5)
            .generate(&ds);
        let fresh = StreamSpec::new(300, 1_000.0).generate(&ds);
        assert!(duplicates(&repeated) > 80, "expected many repeats");
        assert_eq!(duplicates(&fresh), 0, "default stream has no exact repeats");
    }

    #[test]
    fn stream_carries_its_slo_target() {
        let ds = dataset();
        let plain = StreamSpec::new(50, 1_000.0).generate(&ds);
        assert_eq!(plain.slo_p99_s, None);
        let tight = StreamSpec::new(50, 1_000.0).with_slo_p99(0.25).generate(&ds);
        assert_eq!(tight.slo_p99_s, Some(0.25));
        // The SLO annotation never changes the traffic itself.
        assert_eq!(plain.arrivals, tight.arrivals);
        assert_eq!(plain.batch.queries, tight.batch.queries);
    }

    #[test]
    #[should_panic(expected = "positive time")]
    fn non_positive_slo_is_rejected() {
        let _ = StreamSpec::new(10, 100.0).with_slo_p99(-1.0);
    }

    #[test]
    fn multi_tenant_stream_merges_and_tags_by_arrival() {
        let ds = dataset();
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(TenantId(1), StreamSpec::new(120, 500.0).with_slo_p99(0.5))
                    .with_name("tight")
                    .with_weight(3)
                    .with_option_mix(vec![(10, 8)]),
            )
            .with_tenant(
                TenantSpec::new(TenantId(2), StreamSpec::new(300, 2_000.0).with_slo_p99(5.0))
                    .with_name("batchy")
                    .with_option_mix(vec![(10, 4), (20, 8)]),
            );
        let stream = spec.generate(&ds);
        assert_eq!(stream.len(), 420);
        assert_eq!(stream.tenant_of.len(), 420);
        assert_eq!(stream.option_plan.len(), 420);
        assert!(stream.arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Per-tenant counts and FIFO order survive the merge.
        assert_eq!(stream.tenant_query_count(TenantId(1)), 120);
        assert_eq!(stream.tenant_query_count(TenantId(2)), 300);
        let t2_arrivals: Vec<f64> = stream
            .iter()
            .filter(|&(_, i)| stream.tenant(i) == TenantId(2))
            .map(|(a, _)| a)
            .collect();
        assert!(t2_arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Option plans cycle each tenant's own mix in tenant-local order.
        let t2_plans: Vec<(usize, usize)> = (0..stream.len())
            .filter(|&i| stream.tenant(i) == TenantId(2))
            .map(|i| stream.option_plan[i])
            .collect();
        assert_eq!(t2_plans[0], (10, 4));
        assert_eq!(t2_plans[1], (20, 8));
        assert_eq!(t2_plans[2], (10, 4));
        // Profiles carry names, weights and SLOs; the global SLO is the
        // tightest tenant's.
        let p1 = stream.profile(TenantId(1)).expect("profile");
        assert_eq!((p1.name.as_str(), p1.weight, p1.slo_p99_s), ("tight", 3, Some(0.5)));
        assert_eq!(stream.slo_p99_s, Some(0.5));
        // Deterministic replay.
        let again = spec.generate(&ds);
        assert_eq!(stream.arrivals, again.arrivals);
        assert_eq!(stream.tenant_of, again.tenant_of);
        assert_eq!(stream.batch.queries, again.batch.queries);
        // Tenants sharing the default seeds still ask different questions.
        assert_ne!(
            stream.batch.queries.vector(0).to_vec(),
            {
                let i = (0..stream.len())
                    .find(|&i| stream.tenant(i) != stream.tenant(0))
                    .expect("two tenants present");
                stream.batch.queries.vector(i).to_vec()
            }
        );
    }

    #[test]
    fn single_tenant_stream_carries_a_default_profile() {
        let ds = dataset();
        let stream = StreamSpec::new(40, 1_000.0).with_slo_p99(2.0).generate(&ds);
        assert!(stream.tenant_of.iter().all(|&t| t == TenantId::DEFAULT));
        assert!(stream.option_plan.is_empty());
        assert_eq!(stream.tenant_profiles.len(), 1);
        let p = stream.profile(TenantId::DEFAULT).expect("default profile");
        assert_eq!((p.weight, p.slo_p99_s), (1, Some(2.0)));
        assert_eq!(stream.tenant(7), TenantId::DEFAULT);
        assert_eq!(stream.tenant(10_000), TenantId::DEFAULT, "out of range is default");
    }

    #[test]
    #[should_panic(expected = "duplicate tenant id")]
    fn duplicate_tenant_ids_are_rejected() {
        let _ = MultiTenantSpec::new()
            .with_tenant(TenantSpec::new(TenantId(1), StreamSpec::new(10, 100.0)))
            .with_tenant(TenantSpec::new(TenantId(1), StreamSpec::new(10, 100.0)));
    }

    #[test]
    fn mutation_stream_is_deterministic_ordered_and_applicable() {
        let ds = dataset();
        let spec = MutationSpec::new(30.0)
            .with_tenant(TenantId(1), 4.0, 1.0)
            .with_tenant(TenantId(2), 0.5, 0.5)
            .with_seed(77);
        assert!(!spec.is_empty());
        let stream = spec.generate(&ds, 1200);
        assert!(!stream.is_empty());
        assert!(stream.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(stream.duration() <= 30.0);
        assert_eq!(stream.upserts() + stream.deletes(), stream.len());
        // Tenant 1 mutates ~5×/s, tenant 2 ~1×/s: the split shows it.
        let t1 = stream.events.iter().filter(|e| e.tenant == TenantId(1)).count();
        let t2 = stream.events.iter().filter(|e| e.tenant == TenantId(2)).count();
        assert!(t1 > 2 * t2, "t1 {t1} vs t2 {t2}");
        // Fresh ids start at the base corpus size; deletes only target ids
        // that are live at that point in the stream.
        let mut live: std::collections::HashSet<u64> = (0..1200u64).collect();
        for e in &stream.events {
            match &e.op {
                MutationOp::Upsert { id, vector } => {
                    assert!(*id >= 1200);
                    assert_eq!(vector.len(), 128);
                    live.insert(*id);
                }
                MutationOp::Delete { id } => {
                    assert!(live.remove(id), "delete of dead id {id}");
                }
            }
        }
        // Deterministic replay.
        assert_eq!(stream, spec.generate(&ds, 1200));
        // The empty spec generates nothing.
        assert!(MutationSpec::new(30.0).is_empty());
        assert!(MutationSpec::new(30.0).generate(&ds, 1200).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = dataset();
        let a = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        let b = WorkloadSpec::new(100).with_seed(11).generate(&ds);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.target_cluster, b.target_cluster);
    }
}
