//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate provides the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId` and
//! `Throughput` — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Results are printed as
//! `<group>/<id> ... <mean time> (<throughput>)` lines.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Conversion of the id argument accepted by `bench_function` /
/// `bench_with_input` (either a string or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean seconds per iteration measured by the last `iter` call.
    mean_seconds: f64,
    /// Target number of sampled iterations.
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then time `sample_size` iterations in one block.
        std::hint::black_box(routine());
        let iters = self.sample_size.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_seconds = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.mean_seconds);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.mean_seconds);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, mean: f64) {
        let rate = match (self.throughput, mean > 0.0) {
            (Some(Throughput::Elements(n)), true) => {
                format!("  ({:.0} elem/s)", n as f64 / mean)
            }
            (Some(Throughput::Bytes(n)), true) => {
                format!("  ({:.0} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!("{}/{}  {}{}", self.name, id, format_seconds(mean), rate);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: 10,
        };
        f(&mut b);
        println!("{}  {}", name, format_seconds(b.mean_seconds));
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }
}
