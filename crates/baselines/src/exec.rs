//! Shared functional execution of the IVFPQ pipeline with work counting.
//!
//! The CPU and GPU baselines answer queries identically (they run the same
//! algorithm on the same index); what differs is how long the hardware takes.
//! This module runs the four-stage pipeline once, returns the actual results
//! and the [`WorkloadStats`] that the per-architecture timing models consume.

use crate::workload_stats::WorkloadStats;
use annkit::mutation::IndexSnapshot;
use annkit::topk::{Neighbor, TopK};
use annkit::vector::Dataset;

/// The outcome of a functional pipeline execution.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    /// Per-query neighbor lists, closest first.
    pub results: Vec<Vec<Neighbor>>,
    /// Aggregated work counters.
    pub stats: WorkloadStats,
    /// Candidates scanned per query (used by the GPU top-k model, whose cost
    /// is per-query rather than aggregate).
    pub per_query_candidates: Vec<u64>,
}

/// Runs cluster filtering, LUT construction, ADC distance calculation and
/// top-k selection for every query, counting the work of each stage.
///
/// Takes an [`IndexSnapshot`] so the same code path serves both a frozen
/// index (an epoch-0 snapshot, bitwise identical to scanning the index
/// directly) and any live-mutation epoch.
///
/// # Panics
/// Panics if `queries.dim() != index.dim()` or `k == 0`.
pub fn run_ivfpq(
    index: &IndexSnapshot,
    queries: &Dataset,
    nprobe: usize,
    k: usize,
) -> FunctionalRun {
    assert_eq!(queries.dim(), index.dim(), "query dimension mismatch");
    assert!(k > 0, "k must be positive");
    let m = index.m();
    let nprobe = nprobe.min(index.nlist()).max(1);

    let mut stats = WorkloadStats {
        queries: queries.len(),
        k,
        nprobe,
        ..WorkloadStats::default()
    };
    let mut results = Vec::with_capacity(queries.len());
    let mut per_query_candidates = Vec::with_capacity(queries.len());

    for q in queries.iter() {
        // Stage (a): cluster filtering.
        let probed = index.filter_clusters(q, nprobe);
        stats.centroid_comparisons += index.nlist() as u64;

        // Stages (b)+(c)+(d) per probed cluster.
        let mut topk = TopK::new(k);
        let mut candidates_this_query = 0u64;
        for &(cluster, _) in &probed {
            let lut = index.build_lut(q, cluster);
            stats.luts_built += 1;
            stats.lut_entries += (m * 256) as u64;

            let list = index.list(cluster);
            let distances = lut.adc_scan(list.packed_codes());
            candidates_this_query += list.len() as u64;
            stats.candidates_scanned += list.len() as u64;
            stats.lut_lookups += (list.len() * m) as u64;
            stats.code_bytes_read += (list.len() * m) as u64;

            for (i, &d) in distances.iter().enumerate() {
                topk.push(list.ids()[i], d);
            }
        }
        stats.topk_candidates += topk.offered();
        stats.topk_insertions += topk.accepted();
        per_query_candidates.push(candidates_this_query);
        results.push(topk.into_sorted());
    }

    FunctionalRun {
        results,
        stats,
        per_query_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::IvfPqParams;
    use annkit::synthetic::SyntheticSpec;

    use annkit::ivf::IvfPqIndex;

    fn small_index() -> (IndexSnapshot, Dataset) {
        let data = SyntheticSpec::sift_like(1200)
            .with_clusters(8)
            .with_seed(3)
            .generate();
        let index = IvfPqIndex::train(&data, &IvfPqParams::new(8, 16).with_train_size(600), 1);
        (IndexSnapshot::from(index), data)
    }

    #[test]
    fn matches_reference_search() {
        let (index, data) = small_index();
        let queries = data.gather(&[0, 100, 500]);
        let run = run_ivfpq(&index, &queries, 4, 10);
        let reference = index.search_batch(&queries, 4, 10);
        assert_eq!(run.results.len(), reference.len());
        for (a, b) in run.results.iter().zip(&reference) {
            let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
            assert_eq!(ids_a, ids_b);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let (index, data) = small_index();
        let queries = data.gather(&[1, 2, 3, 4]);
        let run = run_ivfpq(&index, &queries, 3, 5);
        let s = &run.stats;
        assert_eq!(s.queries, 4);
        assert_eq!(s.nprobe, 3);
        assert_eq!(s.k, 5);
        assert_eq!(s.luts_built, 12);
        assert_eq!(s.lut_entries, 12 * 16 * 256);
        assert_eq!(s.lut_lookups, s.candidates_scanned * 16);
        assert_eq!(s.code_bytes_read, s.candidates_scanned * 16);
        assert_eq!(s.centroid_comparisons, 4 * 8);
        assert_eq!(
            run.per_query_candidates.iter().sum::<u64>(),
            s.candidates_scanned
        );
        assert!(s.topk_candidates >= s.topk_insertions);
    }

    #[test]
    fn nprobe_is_clamped_to_nlist() {
        let (index, data) = small_index();
        let queries = data.gather(&[7]);
        let run = run_ivfpq(&index, &queries, 100, 3);
        // nprobe clamped to 8: every list scanned, so every indexed vector is
        // a candidate.
        assert_eq!(run.stats.candidates_scanned, index.ntotal());
        assert_eq!(run.stats.nprobe, 8);
    }
}
