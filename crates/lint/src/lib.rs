//! `upanns-lint`: the workspace invariant checker.
//!
//! Every committed claim in this repository — byte-diffed bench records,
//! answer-invariance proptests, the replay-clock model — rests on
//! invariants that ordinary compilation does not enforce: no wall-clock
//! reads, no ambient randomness, no hash-order-dependent serve output,
//! vendored stubs used only through their documented API surface, no
//! panicking shortcuts in the serve hot path, and no `unsafe` outside the
//! one sanctioned SIMD module. This crate machine-checks them.
//!
//! The pipeline per file is: [`lexer::lex`] (comment/string-aware token
//! stream) → [`rules::check_file`] (the six rules) → directive
//! application ([`directives`]) which removes violations carrying a
//! reasoned `allow` and reports unused or malformed directives. Results
//! come back as a [`LintReport`] with deterministic ordering — the linter
//! holds itself to the invariants it enforces (sorted walk, sorted
//! violations, no unordered-map iteration anywhere in its own source).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod rules;

pub use diagnostics::LintReport;
pub use rules::Violation;

use rules::{FileInput, VendorManifests};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, lint fixtures
/// (deliberate violations), and dot-directories.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// The vendored stubs whose `API.txt` manifests the vendor-api-surface
/// rule consults.
const VENDOR_STUBS: &[&str] = &["rand", "criterion", "proptest"];

/// Lints every `.rs` file under `root`, returning a deterministic report.
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let vendor = load_manifests(root)?;
    let files = collect_rs_files(root)?;
    let mut report = LintReport::default();
    for path in &files {
        let rel = rel_path(root, path);
        let source = fs::read_to_string(path)?;
        let lexed = lexer::lex(&source);
        let mut violations = rules::check_file(&FileInput { rel: &rel, lexed: &lexed }, &vendor);
        apply_directives(&rel, &lexed, &mut violations);
        report.violations.append(&mut violations);
        report.files_checked += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Applies directive comments from `lexed` to `violations` in place:
/// silences matched violations, reports malformed/unknown/unused
/// directives under the synthetic `directive` rule.
fn apply_directives(rel: &str, lexed: &lexer::LexedFile, violations: &mut Vec<Violation>) {
    let mut extra = Vec::new();
    for comment in &lexed.comments {
        if comment.doc {
            continue;
        }
        match directives::parse(&comment.text) {
            None => {}
            Some(Err(why)) => extra.push(Violation {
                rule: "directive",
                file: rel.to_string(),
                line: comment.line,
                message: format!("malformed lint directive: {why}"),
            }),
            Some(Ok(d)) => {
                let target = if comment.trailing {
                    Some(comment.line)
                } else {
                    lexed.next_code_line(comment.line)
                };
                let before = violations.len();
                if let Some(t) = target {
                    violations.retain(|v| !(v.rule == d.rule && v.line == t));
                }
                if violations.len() == before {
                    extra.push(Violation {
                        rule: "directive",
                        file: rel.to_string(),
                        line: comment.line,
                        message: format!(
                            "unused lint directive: no `{}` violation on the targeted line",
                            d.rule
                        ),
                    });
                }
            }
        }
    }
    violations.append(&mut extra);
}

/// Recursively collects `.rs` files under `root` in sorted order, skipping
/// [`SKIP_DIRS`] and dot-directories so fixture trees and build output are
/// never linted as workspace code.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !name.starts_with('.') && !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Loads `vendor/<stub>/API.txt` manifests. A missing file becomes `None`
/// and is reported only if a call site actually targets that stub, so
/// fixture mini-workspaces without a `vendor/` tree lint cleanly.
fn load_manifests(root: &Path) -> io::Result<VendorManifests> {
    let mut stubs = Vec::new();
    for name in VENDOR_STUBS {
        let path = root.join("vendor").join(name).join("API.txt");
        let entries = match fs::read_to_string(&path) {
            Ok(text) => Some(
                text.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(str::to_string)
                    .collect::<Vec<_>>(),
            ),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        stubs.push((name.to_string(), entries));
    }
    Ok(VendorManifests { stubs })
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_directives(src: &str, mut violations: Vec<Violation>) -> Vec<Violation> {
        let lexed = lex(src);
        apply_directives("f.rs", &lexed, &mut violations);
        violations
    }

    fn vio(rule: &'static str, line: u32) -> Violation {
        Violation {
            rule,
            file: "f.rs".to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn trailing_directive_silences_its_own_line() {
        let src = "let t = now(); // lint: allow(wall-clock, reason = \"boot banner only\")\n";
        let out = run_directives(src, vec![vio("no-wall-clock", 1)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn standalone_directive_silences_next_code_line() {
        let src = "// lint: allow(unordered-iter, reason = \"sorted downstream\")\nlet x = 1;\n";
        let out = run_directives(src, vec![vio("no-unordered-iteration", 2)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unused_directive_is_itself_a_violation() {
        let src = "// lint: allow(unwrap, reason = \"nothing here\")\nlet x = 1;\n";
        let out = run_directives(src, Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "directive");
        assert!(out[0].message.contains("unused"), "{}", out[0].message);
    }

    #[test]
    fn malformed_directive_is_reported() {
        let src = "// lint: allow(unwrap)\nlet x = 1;\n";
        let out = run_directives(src, Vec::new());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("malformed"), "{}", out[0].message);
    }

    #[test]
    fn directive_only_silences_matching_rule() {
        let src = "// lint: allow(unwrap, reason = \"checked above\")\nlet x = 1;\n";
        let out = run_directives(src, vec![vio("no-wall-clock", 2)]);
        // The wall-clock violation survives and the directive is unused.
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn doc_comments_never_act_as_directives() {
        let src = "/// lint: allow(unwrap, reason = \"doc example\")\nfn f() {}\n";
        let out = run_directives(src, Vec::new());
        assert!(out.is_empty(), "{out:?}");
    }
}
