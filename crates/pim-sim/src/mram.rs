//! Per-DPU MRAM: bulk storage reachable only through DMA.
//!
//! MRAM is modeled as a growable byte buffer with a bump allocator and a hard
//! capacity limit (64 MB per DPU on real hardware). Only the bytes actually
//! written are backed by host memory, so simulating 896 DPUs does not
//! allocate 56 GB.

/// A byte offset within a DPU's MRAM.
pub type MramAddr = usize;

/// Errors raised by MRAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MramError {
    /// An allocation would exceed the DPU's MRAM capacity.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A read or write touches addresses beyond the allocated region.
    OutOfBounds {
        /// First byte of the offending access.
        addr: MramAddr,
        /// Length of the offending access.
        len: usize,
        /// Current allocated size.
        allocated: usize,
    },
}

impl std::fmt::Display for MramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MramError::OutOfMemory { requested, available } => write!(
                f,
                "MRAM out of memory: requested {requested} bytes, {available} available"
            ),
            MramError::OutOfBounds { addr, len, allocated } => write!(
                f,
                "MRAM access out of bounds: [{addr}, {}) with {allocated} bytes allocated",
                addr + len
            ),
        }
    }
}

impl std::error::Error for MramError {}

/// The MRAM of one DPU.
#[derive(Debug, Clone)]
pub struct Mram {
    capacity: usize,
    data: Vec<u8>,
}

impl Mram {
    /// Creates an empty MRAM with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            data: Vec::new(),
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated (high-water mark of the bump allocator).
    #[inline]
    pub fn allocated(&self) -> usize {
        self.data.len()
    }

    /// Remaining allocatable bytes.
    #[inline]
    pub fn available(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Allocates `len` bytes (8-byte aligned, zero-initialized) and returns
    /// the base address.
    pub fn alloc(&mut self, len: usize) -> Result<MramAddr, MramError> {
        let aligned = len.div_ceil(8) * 8;
        if aligned > self.available() {
            return Err(MramError::OutOfMemory {
                requested: aligned,
                available: self.available(),
            });
        }
        let addr = self.data.len();
        self.data.resize(addr + aligned, 0);
        Ok(addr)
    }

    /// Allocates and immediately fills a region with `bytes`.
    pub fn alloc_with(&mut self, bytes: &[u8]) -> Result<MramAddr, MramError> {
        let addr = self.alloc(bytes.len())?;
        self.write(addr, bytes)?;
        Ok(addr)
    }

    /// Writes `bytes` at `addr`.
    pub fn write(&mut self, addr: MramAddr, bytes: &[u8]) -> Result<(), MramError> {
        let end = addr + bytes.len();
        if end > self.data.len() {
            return Err(MramError::OutOfBounds {
                addr,
                len: bytes.len(),
                allocated: self.data.len(),
            });
        }
        self.data[addr..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: MramAddr, len: usize) -> Result<&[u8], MramError> {
        let end = addr + len;
        if end > self.data.len() {
            return Err(MramError::OutOfBounds {
                addr,
                len,
                allocated: self.data.len(),
            });
        }
        Ok(&self.data[addr..end])
    }

    /// Clears all allocations (used between offline re-distributions).
    pub fn reset(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut m = Mram::new(1024);
        let a = m.alloc_with(&[1, 2, 3, 4, 5]).unwrap();
        let b = m.alloc_with(&[9, 9]).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.read(a, 5).unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(m.read(b, 2).unwrap(), &[9, 9]);
        // Allocations are 8-byte aligned.
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = Mram::new(64);
        assert!(m.alloc(32).is_ok());
        let err = m.alloc(64).unwrap_err();
        assert!(matches!(err, MramError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
        assert_eq!(m.available(), 32);
    }

    #[test]
    fn out_of_bounds_reads_and_writes_fail() {
        let mut m = Mram::new(128);
        let a = m.alloc(16).unwrap();
        assert!(m.read(a, 32).is_err());
        assert!(m.write(a + 8, &[0u8; 16]).is_err());
        let err = m.read(100, 8).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn reset_frees_everything() {
        let mut m = Mram::new(128);
        m.alloc(64).unwrap();
        assert_eq!(m.allocated(), 64);
        m.reset();
        assert_eq!(m.allocated(), 0);
        assert_eq!(m.available(), 128);
        assert_eq!(m.capacity(), 128);
    }
}
