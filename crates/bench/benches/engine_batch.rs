//! Criterion benchmark of end-to-end batch search on every engine at a small,
//! fixed scale. This measures the wall-clock cost of the *reproduction*
//! (functional execution + cost accounting); the simulated QPS figures come
//! from the `figures` binary instead.

use annkit::synthetic::DatasetKind;
use baselines::engine::AnnEngine;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use upanns_bench::{EvalContext, EvalParams};

fn bench_engines(c: &mut Criterion) {
    let params = EvalParams {
        n: 8_000,
        nlist: 64,
        nprobes: vec![8],
        dpus: 64,
        batch: 64,
        train_size: 3_000,
        ..EvalParams::default()
    };
    let ctx = EvalContext::build(DatasetKind::SiftLike, &params);
    let nprobe = 8;
    let k = 10;

    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(params.batch as u64));

    group.bench_function("faiss_cpu", |b| {
        let mut engine = ctx.cpu();
        b.iter(|| std::hint::black_box(engine.search_batch(&ctx.queries, nprobe, k).qps()));
    });
    group.bench_function("faiss_gpu", |b| {
        let mut engine = ctx.gpu();
        b.iter(|| std::hint::black_box(engine.search_batch(&ctx.queries, nprobe, k).qps()));
    });
    group.bench_function("pim_naive", |b| {
        let mut engine = ctx.pim_naive();
        b.iter(|| std::hint::black_box(engine.search_batch(&ctx.queries, nprobe, k).qps()));
    });
    group.bench_function("upanns", |b| {
        let mut engine = ctx.upanns();
        b.iter(|| std::hint::black_box(engine.search_batch(&ctx.queries, nprobe, k).qps()));
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
