//! Fixture: randomness derives from an explicit seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn roll(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
