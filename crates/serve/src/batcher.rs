//! The dynamic batch former: turning single-query arrivals into engine-sized
//! batches without unbounded waiting.
//!
//! Engines amortize their per-batch overheads (kernel launches, DPU transfer
//! legs) over the batch, so bigger batches mean higher throughput — but a
//! query must not sit forever waiting for company. The former keeps one open
//! group per [`QueryOptions`] compatibility key and closes a group when
//!
//! * it reaches `max_batch` queries ([`CloseReason::Size`]), or
//! * its oldest member has waited `max_delay_s` ([`CloseReason::Deadline`]).
//!
//! Queries with different latency budgets share a group (budgets steer
//! upstream parameter selection, not execution); queries with different
//! `k`/`nprobe` never do, because the engines execute those as separate
//! uniform sub-batches anyway. Queries of different **tenants** never share
//! a group either — not because the engine cares (it does not), but because
//! each tenant may run its own close conditions
//! ([`set_tenant_config`](BatchFormer::set_tenant_config)): a tight-SLO
//! tenant's narrow window must be able to close *its* batch without dragging
//! a batch-hungry tenant's wide window shut with it. Formed batches are
//! therefore always tenant-pure, which is also what lets the service feed
//! each completion back to exactly one tenant's controller.

use baselines::engine::{QueryOptions, TenantId};

/// One admitted query waiting for (or leaving in) a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingQuery {
    /// When the query arrived, in stream seconds.
    pub arrival_s: f64,
    /// Its index in the replayed stream (also indexes the query vectors).
    pub stream_index: usize,
    /// Its per-query options.
    pub options: QueryOptions,
}

/// Why a batch left the former.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The group reached `max_batch` queries.
    Size,
    /// The group's oldest member hit the `max_delay_s` deadline.
    Deadline,
    /// The stream ended and the group was flushed.
    Flush,
}

/// A closed batch, ready for the engine.
#[derive(Debug, Clone)]
pub struct FormedBatch {
    /// The compatibility options shared by all members (first member's).
    pub options: QueryOptions,
    /// The member queries in arrival order.
    pub members: Vec<PendingQuery>,
    /// When the group was opened (first member's arrival).
    pub opened_at: f64,
    /// When the group closed (size: closing arrival; deadline: the deadline).
    pub closed_at: f64,
    /// Why the group closed.
    pub reason: CloseReason,
}

impl FormedBatch {
    /// Number of member queries.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch is empty (never produced by the former).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Splits the batch into consecutive, arrival-ordered chunks of at most
    /// `max_chunk` members each — the dispatch granularity of the
    /// [`EngineScheduler`](crate::dispatch::EngineScheduler). Every chunk
    /// keeps the batch's options, open/close times and close reason (the
    /// batch still *closed* once; chunking only bounds how long the serial
    /// engine is committed per dispatch). A batch already within the cap
    /// comes back whole.
    ///
    /// # Panics
    /// Panics if `max_chunk` is zero.
    pub fn into_chunks(self, max_chunk: usize) -> Vec<FormedBatch> {
        assert!(max_chunk > 0, "chunks need at least one query");
        if self.members.len() <= max_chunk {
            return vec![self];
        }
        let Self {
            options,
            members,
            opened_at,
            closed_at,
            reason,
        } = self;
        members
            .chunks(max_chunk)
            .map(|chunk| FormedBatch {
                options,
                members: chunk.to_vec(),
                opened_at,
                closed_at,
                reason,
            })
            .collect()
    }
}

/// Close conditions of the batch former.
#[derive(Debug, Clone, Copy)]
pub struct BatchFormerConfig {
    /// Maximum queries per batch (the size trigger).
    pub max_batch: usize,
    /// Maximum seconds the oldest member may wait (the deadline trigger).
    pub max_delay_s: f64,
}

impl Default for BatchFormerConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay_s: 2e-3,
        }
    }
}

#[derive(Debug, Clone)]
struct OpenGroup {
    options: QueryOptions,
    members: Vec<PendingQuery>,
    opened_at: f64,
}

fn validate(config: &BatchFormerConfig) {
    assert!(config.max_batch > 0, "batches need at least one query");
    assert!(
        config.max_delay_s >= 0.0 && config.max_delay_s.is_finite(),
        "max delay must be a finite non-negative time"
    );
}

impl OpenGroup {
    fn close(self, closed_at: f64, reason: CloseReason) -> FormedBatch {
        FormedBatch {
            options: self.options,
            members: self.members,
            opened_at: self.opened_at,
            closed_at,
            reason,
        }
    }
}

/// Accumulates compatible queries into open groups and closes them on size
/// or deadline. Close conditions are resolved **per tenant**: a tenant with
/// its own registered config ([`set_tenant_config`](Self::set_tenant_config))
/// runs its own window, everyone else shares the default.
#[derive(Debug, Clone)]
pub struct BatchFormer {
    config: BatchFormerConfig,
    tenant_configs: Vec<(TenantId, BatchFormerConfig)>,
    open: Vec<OpenGroup>,
}

impl BatchFormer {
    /// A former with the given default close conditions.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero or the delay is negative/non-finite.
    pub fn new(config: BatchFormerConfig) -> Self {
        validate(&config);
        Self {
            config,
            tenant_configs: Vec::new(),
            open: Vec::new(),
        }
    }

    /// The default close conditions (tenants without their own config).
    pub fn config(&self) -> &BatchFormerConfig {
        &self.config
    }

    /// The close conditions governing `tenant`'s groups.
    pub fn config_for(&self, tenant: TenantId) -> BatchFormerConfig {
        self.tenant_configs
            .iter()
            .find(|(id, _)| *id == tenant)
            .map_or(self.config, |(_, c)| *c)
    }

    /// Replaces the *default* close conditions mid-stream (the seam an
    /// adaptive [`BatchPolicy`](crate::controller::BatchPolicy) steers).
    /// Open groups keep accumulating; their deadlines are re-derived from
    /// the new `max_delay_s` at the next [`due`](Self::due) poll, and a
    /// group already at or above a *shrunken* `max_batch` closes on its next
    /// arrival.
    ///
    /// # Panics
    /// Panics on the same invalid configs as [`new`](Self::new).
    pub fn set_config(&mut self, config: BatchFormerConfig) {
        validate(&config);
        self.config = config;
    }

    /// Installs (or replaces) `tenant`'s own close conditions — the seam a
    /// per-tenant controller bank steers. The same mid-stream re-derivation
    /// rules as [`set_config`](Self::set_config) apply, to this tenant's
    /// groups only.
    ///
    /// # Panics
    /// Panics on the same invalid configs as [`new`](Self::new).
    pub fn set_tenant_config(&mut self, tenant: TenantId, config: BatchFormerConfig) {
        validate(&config);
        match self.tenant_configs.iter_mut().find(|(id, _)| *id == tenant) {
            Some((_, c)) => *c = config,
            None => self.tenant_configs.push((tenant, config)),
        }
    }

    /// Adds an admitted query at time `now`. Returns the query's batch when
    /// this arrival fills it to its tenant's `max_batch`.
    pub fn push(&mut self, query: PendingQuery, now: f64) -> Option<FormedBatch> {
        let key = (query.options.compat_key(), query.options.tenant);
        let max_batch = self.config_for(query.options.tenant).max_batch;
        match self
            .open
            .iter_mut()
            .position(|g| (g.options.compat_key(), g.options.tenant) == key)
        {
            Some(i) => {
                self.open[i].members.push(query);
                if self.open[i].members.len() >= max_batch {
                    return Some(self.open.swap_remove(i).close(now, CloseReason::Size));
                }
            }
            None => {
                if max_batch == 1 {
                    // A singleton fills its batch on arrival; close it
                    // directly instead of bouncing through the open list.
                    let group = OpenGroup {
                        options: query.options,
                        members: vec![query],
                        opened_at: now,
                    };
                    return Some(group.close(now, CloseReason::Size));
                }
                self.open.push(OpenGroup {
                    options: query.options,
                    members: vec![query],
                    opened_at: now,
                });
            }
        }
        None
    }

    fn deadline_of(&self, group: &OpenGroup) -> f64 {
        group.opened_at + self.config_for(group.options.tenant).max_delay_s
    }

    /// The earliest deadline among open groups, if any (each group's
    /// deadline is derived from its own tenant's window).
    pub fn next_deadline(&self) -> Option<f64> {
        self.open
            .iter()
            .map(|g| self.deadline_of(g))
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Closes every group whose deadline has passed by `now`, oldest first.
    /// Each batch's `closed_at` is its own deadline, not `now` — except when
    /// [`set_config`](Self::set_config) shrank the window under an open
    /// group, where the close is clamped to the group's newest arrival so a
    /// batch never closes before a member existed.
    pub fn due(&mut self, now: f64) -> Vec<FormedBatch> {
        // Remove in descending *index* order so earlier indices stay valid
        // (`open` is not sorted by age — size-triggered closes swap-remove),
        // then sort the closed batches by age for the caller.
        let expired: Vec<usize> = (0..self.open.len())
            .rev()
            .filter(|&i| self.deadline_of(&self.open[i]) <= now)
            .collect();
        let mut closed = Vec::with_capacity(expired.len());
        for i in expired {
            let deadline = self.deadline_of(&self.open[i]);
            let group = self.open.remove(i);
            let closed_at = group
                .members
                .iter()
                .map(|m| m.arrival_s)
                .fold(deadline, f64::max);
            closed.push(group.close(closed_at, CloseReason::Deadline));
        }
        closed.sort_by(|a, b| {
            a.opened_at
                .partial_cmp(&b.opened_at)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        closed
    }

    /// Closes everything still open (stream end), oldest group first.
    pub fn flush(&mut self, now: f64) -> Vec<FormedBatch> {
        let mut groups = std::mem::take(&mut self.open);
        groups.sort_by(|a, b| {
            a.opened_at
                .partial_cmp(&b.opened_at)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        groups
            .into_iter()
            .map(|g| g.close(now, CloseReason::Flush))
            .collect()
    }

    /// Queries currently waiting in open groups.
    pub fn open_queries(&self) -> usize {
        self.open.iter().map(|g| g.members.len()).sum()
    }

    /// Number of open groups (distinct compatibility keys in flight).
    pub fn open_groups(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(i: usize, t: f64, k: usize, nprobe: usize) -> PendingQuery {
        PendingQuery {
            arrival_s: t,
            stream_index: i,
            options: QueryOptions::new(k, nprobe),
        }
    }

    #[test]
    fn size_trigger_closes_exactly_at_max_batch() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 3,
            max_delay_s: 1.0,
        });
        assert!(former.push(pending(0, 0.0, 10, 8), 0.0).is_none());
        assert!(former.push(pending(1, 0.1, 10, 8), 0.1).is_none());
        let batch = former.push(pending(2, 0.2, 10, 8), 0.2).expect("full");
        assert_eq!(batch.reason, CloseReason::Size);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.closed_at, 0.2);
        assert_eq!(batch.opened_at, 0.0);
        assert_eq!(former.open_queries(), 0);
    }

    #[test]
    fn deadline_trigger_closes_at_the_deadline_not_at_poll_time() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 100,
            max_delay_s: 0.5,
        });
        former.push(pending(0, 0.0, 10, 8), 0.0);
        former.push(pending(1, 0.2, 10, 8), 0.2);
        assert_eq!(former.next_deadline(), Some(0.5));
        assert!(former.due(0.49).is_empty(), "not due yet");
        let closed = former.due(3.0);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Deadline);
        assert_eq!(closed[0].closed_at, 0.5, "closes at its deadline");
        assert_eq!(closed[0].len(), 2);
        assert_eq!(former.next_deadline(), None);
    }

    #[test]
    fn incompatible_options_form_separate_groups() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 2,
            max_delay_s: 1.0,
        });
        assert!(former.push(pending(0, 0.0, 10, 8), 0.0).is_none());
        assert!(former.push(pending(1, 0.0, 20, 8), 0.0).is_none());
        assert!(former.push(pending(2, 0.0, 10, 4), 0.0).is_none());
        assert_eq!(former.open_groups(), 3);
        // Filling the (k=10, nprobe=8) group closes only that group.
        let batch = former.push(pending(3, 0.1, 10, 8), 0.1).expect("full");
        assert_eq!(
            batch.members.iter().map(|m| m.stream_index).collect::<Vec<_>>(),
            vec![0, 3]
        );
        assert_eq!(former.open_groups(), 2);
    }

    #[test]
    fn latency_budgets_do_not_split_groups() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 2,
            max_delay_s: 1.0,
        });
        let mut budgeted = pending(0, 0.0, 10, 8);
        budgeted.options = budgeted.options.with_latency_budget(1e-3);
        assert!(former.push(budgeted, 0.0).is_none());
        assert!(former.push(pending(1, 0.0, 10, 8), 0.0).is_some());
    }

    #[test]
    fn flush_closes_all_groups_oldest_first() {
        let mut former = BatchFormer::new(BatchFormerConfig::default());
        former.push(pending(0, 0.3, 5, 4), 0.3);
        former.push(pending(1, 0.1, 10, 8), 0.1);
        let flushed = former.flush(1.0);
        assert_eq!(flushed.len(), 2);
        assert!(flushed.iter().all(|b| b.reason == CloseReason::Flush));
        assert_eq!(flushed[0].opened_at, 0.1);
        assert_eq!(flushed[1].opened_at, 0.3);
        assert_eq!(former.open_queries(), 0);
    }

    #[test]
    fn due_survives_swap_remove_reordering() {
        // A size-triggered close swap-removes its group, so `open` is no
        // longer sorted by age; due() must still close the right groups
        // (this exact sequence used to panic with an out-of-bounds remove).
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 2,
            max_delay_s: 10.0,
        });
        former.push(pending(0, 0.0, 10, 8), 0.0); // group A
        former.push(pending(1, 1.0, 20, 8), 1.0); // group B
        former.push(pending(2, 2.0, 30, 8), 2.0); // group C
        // Fill A: swap_remove leaves open = [C, B].
        assert!(former.push(pending(3, 3.0, 10, 8), 3.0).is_some());
        let closed = former.due(100.0);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].opened_at, 1.0, "oldest first");
        assert_eq!(closed[1].opened_at, 2.0);
        assert_eq!(closed[0].members[0].stream_index, 1);
        assert_eq!(closed[1].members[0].stream_index, 2);
        assert_eq!(former.open_groups(), 0);
    }

    #[test]
    fn shrinking_the_window_never_backdates_a_close_before_a_member() {
        // A controller shrink can move a group's deadline into the past of
        // its own members; the close must clamp to the newest arrival or the
        // replay would record negative latencies.
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 100,
            max_delay_s: 10.0,
        });
        former.push(pending(0, 0.0, 10, 8), 0.0);
        former.push(pending(1, 5.0, 10, 8), 5.0);
        former.set_config(BatchFormerConfig {
            max_batch: 100,
            max_delay_s: 1.0, // deadline is now t=1.0, before member 1 arrived
        });
        let closed = former.due(6.0);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Deadline);
        assert_eq!(closed[0].closed_at, 5.0, "clamped to the newest arrival");
        for m in &closed[0].members {
            assert!(m.arrival_s <= closed[0].closed_at);
        }
    }

    #[test]
    fn tenants_never_share_a_group() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 2,
            max_delay_s: 1.0,
        });
        let mut a = pending(0, 0.0, 10, 8);
        a.options = a.options.with_tenant(TenantId(1));
        let mut b = pending(1, 0.0, 10, 8);
        b.options = b.options.with_tenant(TenantId(2));
        assert!(former.push(a, 0.0).is_none());
        assert!(
            former.push(b, 0.0).is_none(),
            "same compat key, different tenant: separate groups"
        );
        assert_eq!(former.open_groups(), 2);
        // Filling tenant 1's group closes only tenant 1's group.
        let mut a2 = pending(2, 0.1, 10, 8);
        a2.options = a2.options.with_tenant(TenantId(1));
        let batch = former.push(a2, 0.1).expect("full");
        assert_eq!(batch.options.tenant, TenantId(1));
        assert!(batch.members.iter().all(|m| m.options.tenant == TenantId(1)));
        assert_eq!(former.open_groups(), 1);
    }

    #[test]
    fn per_tenant_windows_close_independently() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 100,
            max_delay_s: 10.0,
        });
        former.set_tenant_config(
            TenantId(1),
            BatchFormerConfig {
                max_batch: 100,
                max_delay_s: 0.5, // a tight tenant window
            },
        );
        former.set_tenant_config(
            TenantId(2),
            BatchFormerConfig {
                max_batch: 100,
                max_delay_s: 4.0, // a batch-hungry tenant window
            },
        );
        let mut a = pending(0, 0.0, 10, 8);
        a.options = a.options.with_tenant(TenantId(1));
        let mut b = pending(1, 0.0, 10, 8);
        b.options = b.options.with_tenant(TenantId(2));
        former.push(a, 0.0);
        former.push(b, 0.0);
        // The earliest deadline is the tight tenant's.
        assert_eq!(former.next_deadline(), Some(0.5));
        let first = former.due(1.0);
        assert_eq!(first.len(), 1, "only the tight tenant's group is due");
        assert_eq!(first[0].options.tenant, TenantId(1));
        assert_eq!(first[0].closed_at, 0.5);
        // The wide tenant's group waits for its own window.
        assert_eq!(former.next_deadline(), Some(4.0));
        let second = former.due(4.0);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].options.tenant, TenantId(2));
        assert_eq!(second[0].closed_at, 4.0);
        // Per-tenant size caps too.
        former.set_tenant_config(
            TenantId(1),
            BatchFormerConfig {
                max_batch: 1,
                max_delay_s: 0.5,
            },
        );
        let mut c = pending(2, 5.0, 10, 8);
        c.options = c.options.with_tenant(TenantId(1));
        assert!(
            former.push(c, 5.0).is_some(),
            "tenant 1's own max_batch=1 closes immediately"
        );
        assert_eq!(former.config_for(TenantId(2)).max_batch, 100);
        assert_eq!(former.config_for(TenantId(9)).max_batch, 100, "default");
    }

    #[test]
    fn into_chunks_partitions_in_arrival_order() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 7,
            max_delay_s: 1.0,
        });
        for i in 0..6 {
            former.push(pending(i, i as f64 * 0.1, 10, 8), i as f64 * 0.1);
        }
        let batch = former.push(pending(6, 0.6, 10, 8), 0.6).expect("full");
        let chunks = batch.clone().into_chunks(3);
        assert_eq!(chunks.len(), 3, "7 members at cap 3: 3 + 3 + 1");
        assert_eq!(
            chunks.iter().map(FormedBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let indices: Vec<usize> = chunks
            .iter()
            .flat_map(|c| c.members.iter().map(|m| m.stream_index))
            .collect();
        assert_eq!(indices, (0..7).collect::<Vec<_>>(), "order preserved");
        for chunk in &chunks {
            assert_eq!(chunk.opened_at, batch.opened_at);
            assert_eq!(chunk.closed_at, batch.closed_at);
            assert_eq!(chunk.reason, batch.reason);
            assert_eq!(chunk.options, batch.options);
        }
        // A batch within the cap comes back whole.
        let whole = batch.clone().into_chunks(7);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_chunk_cap_is_rejected() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 1,
            max_delay_s: 1.0,
        });
        let batch = former.push(pending(0, 0.0, 10, 8), 0.0).expect("full");
        let _ = batch.into_chunks(0);
    }

    #[test]
    fn max_batch_one_closes_immediately() {
        let mut former = BatchFormer::new(BatchFormerConfig {
            max_batch: 1,
            max_delay_s: 1.0,
        });
        let batch = former.push(pending(0, 0.0, 10, 8), 0.0).expect("immediate");
        assert_eq!(batch.reason, CloseReason::Size);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
    }
}
