//! Integration tests for the §4.1.2 adaptive-placement flow and for the
//! failure modes of the simulated hardware (WRAM overflow, MRAM exhaustion,
//! malformed builder inputs) plus engine edge cases.

use annkit::flat::FlatIndex;
use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::recall::recall_at_k;
use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
use annkit::vector::Dataset;
use annkit::workload::WorkloadSpec;
use baselines::engine::AnnEngine;
use pim_sim::config::PimConfig;
use std::sync::OnceLock;
use upanns::builder::{frequencies_from_queries, BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;
use upanns::prelude::*;
use upanns::wram_layout::{WramPlan, WramPlanInput};

struct Fixture {
    dataset: SyntheticDataset,
    index: IvfPqIndex,
    history: Dataset,
    queries: Dataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = SyntheticSpec::deep_like(3_000)
            .with_clusters(24)
            .with_seed(77)
            .generate_with_meta();
        let index = IvfPqIndex::train(
            &dataset.vectors,
            &IvfPqParams::new(48, 12).with_train_size(1_200),
            5,
        );
        let history = WorkloadSpec::new(400).with_seed(70).generate(&dataset).queries;
        let queries = WorkloadSpec::new(48).with_seed(71).generate(&dataset).queries;
        Fixture {
            dataset,
            index,
            history,
            queries,
        }
    })
}

fn build(
    fix: &'static Fixture,
    config: UpAnnsConfig,
    dpus: usize,
    placement: Option<Placement>,
) -> UpAnnsEngine {
    let mut b = UpAnnsBuilder::new(&fix.index)
        .with_config(config)
        .with_pim_config(PimConfig::with_dpus(dpus))
        .with_history(&fix.history, 6)
        .with_batch_capacity(BatchCapacity {
            batch_size: 64,
            nprobe: 8,
            max_k: 64,
        });
    if let Some(p) = placement {
        b = b.with_placement(p);
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Adaptive placement (§4.1.2)
// ---------------------------------------------------------------------------

#[test]
fn adaptive_flow_preserves_results_and_balance() {
    let fix = fixture();
    let dpus = 12;
    let mut engine = build(fix, UpAnnsConfig::upanns(), dpus, None);
    let before = engine.search_batch(&fix.queries, 6, 10);

    // A drifted workload: different popularity ranking, same dataset.
    let drifted = WorkloadSpec::new(400)
        .with_seed(90)
        .with_popularity_seed(4242)
        .generate(&fix.dataset)
        .queries;
    let old_freqs = frequencies_from_queries(&fix.index, &fix.history, 6);
    let new_freqs = frequencies_from_queries(&fix.index, &drifted, 6);
    let sizes = fix.index.list_sizes();

    let policy = AdaptationPolicy::default();
    let (adapted, decision) = adapt_placement(
        engine.placement(),
        &sizes,
        &old_freqs,
        &new_freqs,
        0,
        &policy,
    );
    // Whatever the tier, the adapted placement must still be structurally
    // valid and must not be less balanced (under the new pattern) than the
    // stale placement re-evaluated under that pattern.
    let input = upanns::placement::PlacementInput::new(
        sizes.clone(),
        new_freqs.clone(),
        dpus,
        usize::MAX / 2,
    );
    adapted.validate(&input).unwrap();

    let mut rebuilt = build(fix, UpAnnsConfig::upanns(), dpus, Some(adapted));
    let after = rebuilt.search_batch(&fix.queries, 6, 10);

    // Placement only moves data: the answers are identical.
    assert_eq!(before.results.len(), after.results.len());
    for (a, b) in before.results.iter().zip(&after.results) {
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
    // And accuracy stays at the index's quantization ceiling.
    let exact = FlatIndex::new(&fix.dataset.vectors).search_batch(&fix.queries, 10);
    let r_before = recall_at_k(&before.results, &exact, 10);
    let r_after = recall_at_k(&after.results, &exact, 10);
    assert!((r_before - r_after).abs() < 1e-9);
    // The decision must expose a finite drift report.
    assert!(decision.drift().total_variation.is_finite());
}

#[test]
fn adapted_engine_balances_drifted_traffic_at_least_as_well() {
    let fix = fixture();
    let dpus = 12;
    // Drifted history and a batch drawn from the *drifted* distribution.
    let drifted_history = WorkloadSpec::new(400)
        .with_seed(91)
        .with_popularity_seed(31337)
        .generate(&fix.dataset)
        .queries;
    let drifted_batch = WorkloadSpec::new(64)
        .with_seed(92)
        .with_popularity_seed(31337)
        .generate(&fix.dataset)
        .queries;
    let old_freqs = frequencies_from_queries(&fix.index, &fix.history, 6);
    let new_freqs = frequencies_from_queries(&fix.index, &drifted_history, 6);
    let sizes = fix.index.list_sizes();

    let mut stale = build(
        fix,
        UpAnnsConfig::upanns().with_work_scale(1e4),
        dpus,
        None,
    );
    let (adapted_placement, _) = adapt_placement(
        stale.placement(),
        &sizes,
        &old_freqs,
        &new_freqs,
        0,
        &AdaptationPolicy::default(),
    );
    let mut adapted = build(
        fix,
        UpAnnsConfig::upanns().with_work_scale(1e4),
        dpus,
        Some(adapted_placement),
    );

    stale.search_batch(&drifted_batch, 6, 10);
    adapted.search_batch(&drifted_batch, 6, 10);
    assert!(
        adapted.last_schedule_ratio() <= stale.last_schedule_ratio() + 0.25,
        "adapted schedule ratio {} much worse than stale {}",
        adapted.last_schedule_ratio(),
        stale.last_schedule_ratio()
    );
}

#[test]
#[should_panic(expected = "different DPU count")]
fn placement_override_with_wrong_dpu_count_is_rejected() {
    let fix = fixture();
    let engine = build(fix, UpAnnsConfig::upanns(), 12, None);
    let placement = engine.placement().clone();
    // Rebuilding for 6 DPUs with a 12-DPU placement must fail loudly.
    let _ = build(fix, UpAnnsConfig::upanns(), 6, Some(placement));
}

// ---------------------------------------------------------------------------
// Engine edge cases
// ---------------------------------------------------------------------------

#[test]
fn k_of_one_and_oversized_k_are_handled() {
    let fix = fixture();
    let mut engine = build(fix, UpAnnsConfig::upanns(), 8, None);
    let single = fix.dataset.vectors.gather(&[7]);

    let k1 = engine.search_batch(&single, 4, 1);
    assert_eq!(k1.results.len(), 1);
    assert_eq!(k1.results[0].len(), 1);

    // k much larger than the probed candidate pool: the engine returns what
    // exists, sorted, without panicking.
    let huge = engine.search_batch(&single, 2, 64);
    assert_eq!(huge.results.len(), 1);
    assert!(!huge.results[0].is_empty());
    assert!(huge.results[0].len() <= 64);
    let d: Vec<f32> = huge.results[0].iter().map(|n| n.distance).collect();
    assert!(d.windows(2).all(|w| w[0] <= w[1]), "results must be sorted");
}

#[test]
fn nprobe_larger_than_nlist_is_clamped() {
    let fix = fixture();
    let mut engine = build(fix, UpAnnsConfig::upanns(), 8, None);
    let q = fix.dataset.vectors.gather(&[3, 9]);
    let clamped = engine.search_batch(&q, 10_000, 5);
    let full = engine.search_batch(&q, fix.index.nlist(), 5);
    for (a, b) in clamped.results.iter().zip(&full.results) {
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
}

#[test]
fn duplicate_queries_in_one_batch_get_identical_answers() {
    let fix = fixture();
    let mut engine = build(fix, UpAnnsConfig::upanns(), 8, None);
    let batch = fix.dataset.vectors.gather(&[11, 11, 11, 42, 42]);
    let out = engine.search_batch(&batch, 6, 10);
    assert_eq!(out.results.len(), 5);
    for i in 1..3 {
        assert_eq!(
            out.results[0].iter().map(|n| n.id).collect::<Vec<_>>(),
            out.results[i].iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
    assert_eq!(
        out.results[3].iter().map(|n| n.id).collect::<Vec<_>>(),
        out.results[4].iter().map(|n| n.id).collect::<Vec<_>>()
    );
}

#[test]
fn pim_naive_and_upanns_agree_under_every_single_optimization_toggle() {
    // Each optimization toggled on its own must leave the neighbor sets
    // essentially unchanged (accuracy is never traded for speed).
    let fix = fixture();
    let q = fix.dataset.vectors.gather(&(0..16).map(|i| i * 131 % 3000).collect::<Vec<_>>());
    let mut reference = build(fix, UpAnnsConfig::pim_naive(), 8, None);
    let base = reference.search_batch(&q, 6, 10);
    for config in [
        UpAnnsConfig::pim_naive().with_placement(true),
        UpAnnsConfig::pim_naive().with_cooccurrence(true),
        UpAnnsConfig::pim_naive().with_topk_pruning(true),
    ] {
        let mut engine = build(fix, config, 8, None);
        let out = engine.search_batch(&q, 6, 10);
        for (a, b) in out.results.iter().zip(&base.results) {
            let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
            let overlap = ids_a.iter().filter(|id| ids_b.contains(id)).count();
            assert!(
                overlap + 1 >= ids_b.len(),
                "optimization changed results: {ids_a:?} vs {ids_b:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Failure injection: the simulated hardware's capacity limits
// ---------------------------------------------------------------------------

#[test]
fn wram_planner_rejects_layouts_that_cannot_fit() {
    // 24 tasklets × 2 KB read buffers + large heaps + a 32 KB codebook do not
    // fit in 64 KB; the planner must say so instead of overcommitting.
    let input = WramPlanInput::new(128, 16, 100, 256, 24, 2048);
    let err = WramPlan::plan(&input).unwrap_err();
    assert!(err.required > err.capacity);
    assert!(!err.phase.is_empty());
    assert!(err.to_string().contains("WRAM plan overflow"));

    // The paper's default configuration (11 tasklets, 16-vector reads, k ≤ 100)
    // must fit.
    let ok = WramPlan::plan(&WramPlanInput::new(128, 16, 100, 256, 11, 256)).unwrap();
    assert!(ok.phase1_peak <= 64 * 1024);
    assert!(ok.phase3_peak <= 64 * 1024);
}

#[test]
#[should_panic(expected = "WRAM layout does not fit")]
fn kernel_panics_like_hardware_when_wram_is_overcommitted() {
    let fix = fixture();
    // 24 tasklets with maximum-size MRAM read buffers and a large k: the
    // per-tasklet buffers alone exceed the 64 KB scratchpad.
    let config = UpAnnsConfig::upanns()
        .with_tasklets(24)
        .with_mram_read_vectors(1024);
    let mut engine = build(fix, config, 8, None);
    let q = fix.dataset.vectors.gather(&[0]);
    let _ = engine.search_batch(&q, 4, 64);
}

#[test]
#[should_panic(expected = "structural invariants")]
fn builder_panics_when_the_dataset_does_not_fit_in_mram() {
    let fix = fixture();
    // One DPU with a 64 KB MRAM cannot hold the dataset: the MRAM-derived
    // per-DPU vector cap makes Algorithm 1 unable to place every cluster,
    // which the builder surfaces as a placement-validation panic instead of
    // silently overcommitting the device.
    let mut tiny = PimConfig::with_dpus(1);
    tiny.mram_bytes = 64 * 1024;
    let _ = UpAnnsBuilder::new(&fix.index)
        .with_pim_config(tiny)
        .with_batch_capacity(BatchCapacity {
            batch_size: 8,
            nprobe: 4,
            max_k: 10,
        })
        .build();
}

#[test]
fn mailbox_capacity_grows_on_demand_instead_of_overflowing() {
    let fix = fixture();
    // Build with deliberately tiny capacity hints, then issue a much larger
    // batch with a large k: the engine must grow its staging buffers rather
    // than overflow the mailbox.
    let mut engine = UpAnnsBuilder::new(&fix.index)
        .with_pim_config(PimConfig::with_dpus(8))
        .with_history(&fix.history, 6)
        .with_batch_capacity(BatchCapacity {
            batch_size: 2,
            nprobe: 2,
            max_k: 5,
        })
        .build();
    let out = engine.search_batch(&fix.queries, 8, 50);
    assert_eq!(out.results.len(), fix.queries.len());
    assert!(out.results.iter().all(|r| !r.is_empty()));
}
