//! # upanns — PIM-accelerated billion-scale IVFPQ search (UpANNS, SC '25)
//!
//! This crate is the paper's primary contribution: an IVFPQ search engine
//! that runs its memory-bound stages on a (simulated) UPMEM
//! Processing-in-Memory system, with the four optimizations the paper
//! introduces:
//!
//! | Optimization | Paper | Module |
//! |---|---|---|
//! | Opt1 — PIM-aware workload distribution (data placement + query scheduling) | §4.1, Alg. 1–2 | [`placement`], [`scheduling`] |
//! | Opt2 — PIM resource management (tasklet scheduling + WRAM reuse + MRAM read sizing) | §4.2, Fig. 6–7 | [`wram_layout`], [`kernel`], [`config`] |
//! | Opt3 — Co-occurrence aware encoding | §4.3, Fig. 8 | [`cooccurrence`], [`encoding`] |
//! | Opt4 — Top-K pruning | §4.4, Fig. 9 | [`topk_prune`] |
//!
//! Runtime extensions built on the engine:
//!
//! | Extension | Paper | Module |
//! |---|---|---|
//! | Query-pattern drift adaptation (replica adjustment / full relocation) | §4.1.2 | [`adaptive`] |
//! | Latency-budget-aware per-query nprobe selection | §4.1.2 (request-time tier) | [`adaptive::NprobePolicy`] |
//! | Live index mutation (epoch-snapshot serving + skew-triggered background compaction) | production extension | [`compaction`], `annkit::mutation` |
//! | Multi-host scale-out (sharding + coordinator merge) | §5.5 | [`multihost`] |
//! | Fault-tolerant replication (replica map, fault injection, hedging, elasticity) | §5.5 extension | [`replica`] |
//! | Serving front-end (admission, dynamic batching, result cache) | §5 (online phase) | `upanns-serve` crate |
//! | SLO-driven adaptive batching (closed-loop max_delay/max_batch control) | §5 batching argument | `upanns-serve::controller` |
//! | Multi-tenant serving (weighted-fair DRR admission, per-tenant SLO windows) | §5 multi-client setting | `upanns-serve::admission`, `upanns-serve::controller::ControllerBank` |
//!
//! The [`builder::UpAnnsBuilder`] runs the offline phase (mining, encoding,
//! placement, MRAM staging) and produces an [`engine::UpAnnsEngine`], which
//! implements the same [`AnnEngine`](baselines::engine::AnnEngine) trait as
//! the Faiss-CPU/GPU baselines so all engines can be swept uniformly —
//! [`execute`](baselines::engine::AnnEngine::execute) answers a
//! [`SearchRequest`](baselines::engine::SearchRequest) with per-query
//! `k`/`nprobe`/latency-budget options, and the positional
//! [`search_batch`](baselines::engine::AnnEngine::search_batch) shim covers
//! the uniform-batch case. The PIM-naive baseline of the paper's evaluation
//! is the same engine built with [`config::UpAnnsConfig::pim_naive`].
//!
//! ```no_run
//! use annkit::prelude::*;
//! use baselines::engine::AnnEngine;
//! use pim_sim::config::PimConfig;
//! use upanns::prelude::*;
//!
//! // Offline: train IVFPQ, then build the PIM engine.
//! let data = SyntheticSpec::sift_like(20_000).with_clusters(64).generate();
//! let index = IvfPqIndex::train(&data, &IvfPqParams::new(64, 16).with_train_size(5_000), 1);
//! let mut engine = UpAnnsBuilder::new(&index)
//!     .with_pim_config(PimConfig::with_dpus(64))
//!     .build();
//!
//! // Online: answer a batch of queries.
//! let queries = data.gather(&(0..100).collect::<Vec<_>>());
//! let outcome = engine.search_batch(&queries, 8, 10);
//! println!("QPS = {:.0}", outcome.qps());
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod builder;
pub mod compaction;
pub mod config;
pub mod cooccurrence;
pub mod encoding;
pub mod engine;
pub mod kernel;
pub mod multihost;
pub mod placement;
pub mod replica;
pub mod scheduling;
pub mod topk_prune;
pub mod wram_layout;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adaptive::{
        adapt_placement, measure_drift, plan_adaptation, AdaptationDecision, AdaptationPolicy,
        DriftReport, NprobePolicy, ReplicaAdjustment,
    };
    pub use crate::builder::{BatchCapacity, UpAnnsBuilder};
    pub use crate::compaction::{
        list_size_skew, plan_live_index, CompactionPolicy, LiveIndexPlan, PlannedCompaction,
    };
    pub use crate::config::UpAnnsConfig;
    pub use crate::cooccurrence::{Combo, ComboTable, Element, MiningParams};
    pub use crate::encoding::CaeList;
    pub use crate::engine::UpAnnsEngine;
    pub use crate::multihost::{shard_ranges, InterconnectModel, MultiHostUpAnns};
    pub use crate::placement::{place_pim_aware, place_round_robin, Placement, PlacementInput};
    pub use crate::replica::{
        FaultEvent, FaultSchedule, MigrationPlan, ReplicaMap, ReplicaMapError,
        ReplicatedMultiHost, ShardMove,
    };
    pub use crate::scheduling::{schedule_queries, Assignment, Schedule};
    pub use crate::topk_prune::{merge_thread_local, MergeStats};
    pub use crate::wram_layout::{WramPlan, WramPlanInput};
}

pub use builder::UpAnnsBuilder;
pub use config::UpAnnsConfig;
pub use engine::UpAnnsEngine;
