//! Fixture: binaries under the runtime prefix are covered too.

use std::time::Instant;

fn main() {
    let started = Instant::now();
    println!("{}", started.elapsed().as_nanos());
}
