//! Regenerates every table and figure of the UpANNS paper's evaluation
//! section on the reduced-scale, simulated reproduction.
//!
//! ```text
//! cargo run -p upanns-bench --release --bin figures -- all
//! cargo run -p upanns-bench --release --bin figures -- fig10 fig12
//! cargo run -p upanns-bench --release --bin figures -- fig10 --full   # full IVF sweep
//! ```
//!
//! Each experiment prints a markdown table and writes a CSV under
//! `results/`. EXPERIMENTS.md records the mapping to the paper's artifacts
//! and the measured-vs-paper comparison.

#![forbid(unsafe_code)]

use annkit::flat::FlatIndex;
use annkit::recall::recall_at_k;
use annkit::synthetic::DatasetKind;
use annkit::workload::WorkloadSpec;
use baselines::engine::AnnEngine;
use baselines::gpu::{GpuFaissEngine, GpuMemoryCheck};
use baselines::hardware::hardware_table_markdown;
use pim_sim::config::PimConfig;
use pim_sim::cost::CostModel;
use pim_sim::energy::EnergyModel;
use std::collections::HashMap;
use upanns::config::UpAnnsConfig;
use upanns_bench::{fmt, EvalContext, EvalParams, ResultTable};

/// Lazily built evaluation contexts, keyed by (dataset kind, nlist).
struct ContextCache {
    params: EvalParams,
    map: HashMap<(DatasetKind, usize), EvalContext>,
}

impl ContextCache {
    fn new(params: EvalParams) -> Self {
        Self {
            params,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, kind: DatasetKind, nlist: usize) -> &EvalContext {
        let params = self.params.clone();
        self.map.entry((kind, nlist)).or_insert_with(|| {
            eprintln!("[figures] building context: {} with |C| = {nlist} ...", kind.name());
            EvalContext::build_with_nlist(kind, &params, nlist)
        })
    }

    fn default_nlist(&self) -> usize {
        self.params.nlist
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let full = raw.iter().any(|a| a == "--full");
    let mut ids: Vec<String> = raw.into_iter().filter(|a| a != "--full").collect();
    let all_ids = [
        "tab1", "fig1", "fig4", "fig7", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18", "fig19", "fig20", "headline",
    ];
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_ids.iter().map(|s| s.to_string()).collect();
    }

    let mut cache = ContextCache::new(EvalParams::default());
    println!("# UpANNS reproduction — regenerated tables and figures\n");
    println!(
        "(reduced scale: N = {}, |C| = {}, {} DPUs, batch = {}, work-scale = {:.0}x; see EXPERIMENTS.md)",
        cache.params.n,
        cache.params.nlist,
        cache.params.dpus,
        cache.params.batch,
        cache.params.work_scale()
    );

    for id in &ids {
        let tables = match id.as_str() {
            "tab1" => tab1(),
            "fig1" => fig1(&mut cache),
            "fig4" => fig4(&mut cache),
            "fig7" => fig7(),
            "fig10" => fig10(&mut cache, full),
            "fig11" => fig11(&mut cache),
            "fig12" => fig12(&mut cache),
            "fig13" => fig13(&mut cache),
            "fig14" => fig14(&mut cache),
            "fig15" => fig15(&mut cache),
            "fig16" => fig16(&mut cache),
            "fig17" => fig17(&mut cache),
            "fig18" => fig18(&mut cache),
            "fig19" => fig19(&mut cache),
            "fig20" => fig20(&mut cache),
            "headline" => headline(&mut cache),
            other => {
                eprintln!("unknown experiment id '{other}' (known: {all_ids:?})");
                Vec::new()
            }
        };
        for table in tables {
            print!("{}", table.to_markdown());
            match table.write_csv("results") {
                Ok(path) => println!("\n(csv: {})", path.display()),
                Err(e) => eprintln!("failed to write CSV for {}: {e}", table.name),
            }
        }
    }
}

/// Table 1: hardware specifications.
fn tab1() -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "tab1_hardware",
        &["hardware", "price_usd", "memory_gib", "peak_watts", "bandwidth_gb_s"],
    );
    for spec in baselines::hardware::hardware_table() {
        t.push_row(vec![
            spec.name.to_string(),
            fmt(spec.price_usd, 0),
            fmt(spec.memory_gib(), 0),
            fmt(spec.peak_watts, 0),
            fmt(spec.bandwidth_gb_s(), 1),
        ]);
    }
    println!("{}", hardware_table_markdown());
    vec![t]
}

/// Figure 1: CPU/GPU stage breakdown as the dataset scales 1M → 100M → 1B.
fn fig1(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let n = cache.params.n as f64;
    let nprobe = *cache.params.nprobes.last().unwrap_or(&16);
    let k = cache.params.k;
    let ctx = cache.get(DatasetKind::SiftLike, nlist);
    let mut t = ResultTable::new(
        "fig1_breakdown_vs_scale",
        &["device", "modeled_scale", "cluster_filtering", "lut_construction", "distance_calc", "topk"],
    );
    for &(label, modeled) in &[("1M", 1e6), ("100M", 1e8), ("1B", 1e9)] {
        let scale = (modeled / n).max(1.0);
        let mut cpu = baselines::cpu::CpuFaissEngine::new(&ctx.index)
            .with_billion_scale_regime(false)
            .with_work_scale(scale);
        let out = cpu.search_batch(&ctx.queries, nprobe, k);
        t.push_row(vec![
            "CPU".into(),
            label.into(),
            fmt(out.breakdown.fraction("cluster_filtering"), 3),
            fmt(out.breakdown.fraction("lut_construction"), 3),
            fmt(out.breakdown.fraction("distance_calc"), 3),
            fmt(out.breakdown.fraction("topk"), 3),
        ]);
        let mut gpu = GpuFaissEngine::new(&ctx.index).with_work_scale(scale);
        let out = gpu.search_batch(&ctx.queries, nprobe, k);
        t.push_row(vec![
            "GPU".into(),
            label.into(),
            fmt(out.breakdown.fraction("cluster_filtering"), 3),
            fmt(out.breakdown.fraction("lut_construction"), 3),
            fmt(out.breakdown.fraction("distance_calc"), 3),
            fmt(out.breakdown.fraction("topk"), 3),
        ]);
    }
    vec![t]
}

/// Figure 4: skew of access frequency, cluster size and workload (SPACEV-like).
fn fig4(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let batch = cache.params.batch;
    let seed = cache.params.seed;
    let ctx = cache.get(DatasetKind::SpacevLike, nlist);
    let history = WorkloadSpec::new(batch * 8)
        .with_seed(seed + 9)
        .generate(&ctx.dataset);
    let freq = upanns::builder::frequencies_from_queries(&ctx.index, &history.queries, 16);
    let sizes = ctx.index.list_sizes();
    let workloads: Vec<f64> = sizes
        .iter()
        .zip(&freq)
        .map(|(&s, &f)| s as f64 * f)
        .collect();

    let mut t = ResultTable::new(
        "fig4_skew",
        &["distribution", "min", "p50", "p99", "max", "max_over_min"],
    );
    let mut add = |name: &str, values: Vec<f64>| {
        let mut v: Vec<f64> = values.into_iter().filter(|&x| x > 0.0).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if v.is_empty() {
            return;
        }
        let pick = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
        t.push_row(vec![
            name.into(),
            fmt(v[0], 3),
            fmt(pick(0.5), 3),
            fmt(pick(0.99), 3),
            fmt(v[v.len() - 1], 3),
            fmt(v[v.len() - 1] / v[0], 1),
        ]);
    };
    add("access_frequency", freq.clone());
    add("cluster_size", sizes.iter().map(|&s| s as f64).collect());
    add("workload", workloads);
    vec![t]
}

/// Figure 7: MRAM read latency vs transfer size.
fn fig7() -> Vec<ResultTable> {
    let cm = CostModel::default();
    let clock = PimConfig::default().clock_hz;
    let mut t = ResultTable::new(
        "fig7_mram_latency",
        &["bytes", "latency_cycles", "latency_ns", "bandwidth_mb_s"],
    );
    let mut bytes = 8usize;
    while bytes <= 2048 {
        let cycles = cm.mram_transfer_cycles(bytes);
        let ns = cycles as f64 / clock * 1e9;
        let bw = bytes as f64 / (cycles as f64 / clock) / 1e6;
        t.push_row(vec![
            bytes.to_string(),
            cycles.to_string(),
            fmt(ns, 1),
            fmt(bw, 1),
        ]);
        bytes *= 2;
    }
    vec![t]
}

/// Figures 10: QPS of UpANNS / PIM-naive / Faiss-CPU (normalized to CPU).
fn fig10(cache: &mut ContextCache, full: bool) -> Vec<ResultTable> {
    let base_nlist = cache.default_nlist();
    let nlists: Vec<usize> = if full {
        vec![base_nlist, base_nlist * 2, base_nlist * 4]
    } else {
        vec![base_nlist]
    };
    let nprobes = cache.params.nprobes.clone();
    let k = cache.params.k;
    let mut t = ResultTable::new(
        "fig10_qps_vs_cpu",
        &["dataset", "nlist", "nprobe", "cpu_qps", "pim_naive_qps", "upanns_qps", "naive_over_cpu", "upanns_over_cpu"],
    );
    for kind in DatasetKind::all() {
        for &nlist in &nlists {
            let ctx = cache.get(kind, nlist);
            let mut cpu = ctx.cpu();
            let mut naive = ctx.pim_naive();
            let mut upanns = ctx.upanns();
            for &nprobe in &nprobes {
                let c = cpu.search_batch(&ctx.queries, nprobe, k);
                let nv = naive.search_batch(&ctx.queries, nprobe, k);
                let u = upanns.search_batch(&ctx.queries, nprobe, k);
                t.push_row(vec![
                    kind.name().into(),
                    nlist.to_string(),
                    nprobe.to_string(),
                    fmt(c.qps(), 1),
                    fmt(nv.qps(), 1),
                    fmt(u.qps(), 1),
                    fmt(nv.qps() / c.qps(), 2),
                    fmt(u.qps() / c.qps(), 2),
                ]);
            }
        }
    }
    vec![t]
}

/// Figure 11: max/avg DPU workload ratio, PIM-aware placement vs naive.
fn fig11(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobes = cache.params.nprobes.clone();
    let k = cache.params.k;
    let mut t = ResultTable::new(
        "fig11_balance_ratio",
        &["dataset", "nprobe", "pim_naive_max_over_avg", "upanns_max_over_avg"],
    );
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        let mut naive = ctx.pim_naive();
        let mut upanns = ctx.upanns();
        for &nprobe in &nprobes {
            naive.search_batch(&ctx.queries, nprobe, k);
            upanns.search_batch(&ctx.queries, nprobe, k);
            t.push_row(vec![
                kind.name().into(),
                nprobe.to_string(),
                fmt(naive.last_balance_ratio(), 2),
                fmt(upanns.last_balance_ratio(), 2),
            ]);
        }
    }
    vec![t]
}

/// Figure 12: QPS and QPS/W of UpANNS vs Faiss-GPU (with the DEEP OOM case).
fn fig12(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobes = cache.params.nprobes.clone();
    let k = cache.params.k;
    let dpus = cache.params.dpus;
    let mut t = ResultTable::new(
        "fig12_vs_gpu",
        &["dataset", "nprobe", "gpu_qps", "upanns_qps", "upanns_over_gpu", "gpu_qps_per_w", "upanns_qps_per_w", "qps_per_w_ratio", "gpu_1b_memory"],
    );
    let pim_energy = EnergyModel::pim(&PimConfig::with_dpus(dpus));
    let gpu_energy = EnergyModel::paper_gpu();
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        let mut gpu = ctx.gpu();
        let mut upanns = ctx.upanns();
        // The paper's DEEP1B GPU configuration keeps raw vectors resident and
        // goes out of memory at 10⁹ vectors (blue X in Figure 12).
        let store_raw = matches!(kind, DatasetKind::DeepLike);
        let memory = match GpuFaissEngine::new(&ctx.index).check_memory(1_000_000_000, store_raw) {
            GpuMemoryCheck::Fits { required } => format!("{:.0} GB", required as f64 / 1e9),
            GpuMemoryCheck::OutOfMemory { required, .. } => {
                format!("OOM ({:.0} GB > 80 GB)", required as f64 / 1e9)
            }
        };
        for &nprobe in &nprobes {
            let g = gpu.search_batch(&ctx.queries, nprobe, k);
            let u = upanns.search_batch(&ctx.queries, nprobe, k);
            t.push_row(vec![
                kind.name().into(),
                nprobe.to_string(),
                fmt(g.qps(), 1),
                fmt(u.qps(), 1),
                fmt(u.qps() / g.qps(), 2),
                fmt(g.qps_per_watt(&gpu_energy), 3),
                fmt(u.qps_per_watt(&pim_energy), 3),
                fmt(u.qps_per_watt(&pim_energy) / g.qps_per_watt(&gpu_energy), 2),
                memory.clone(),
            ]);
        }
    }
    vec![t]
}

/// Figure 13: QPS vs tasklets per DPU (saturation at 11).
fn fig13(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let k = cache.params.k;
    let work_scale = cache.params.work_scale();
    let ctx = cache.get(DatasetKind::SiftLike, nlist);
    let mut t = ResultTable::new(
        "fig13_tasklets",
        &["tasklets", "qps", "speedup_vs_1_tasklet"],
    );
    let mut base_qps = 0.0;
    for &tasklets in &[1usize, 2, 4, 6, 8, 11, 16, 24] {
        let config = UpAnnsConfig::upanns()
            .with_work_scale(work_scale)
            .with_tasklets(tasklets);
        let mut engine = ctx.upanns_with(config);
        let out = engine.search_batch(&ctx.queries, nprobe, k);
        if tasklets == 1 {
            base_qps = out.qps();
        }
        t.push_row(vec![
            tasklets.to_string(),
            fmt(out.qps(), 1),
            fmt(out.qps() / base_qps.max(1e-9), 2),
        ]);
    }
    vec![t]
}

/// Figure 14: co-occurrence aware encoding gains vs length reduction rate.
fn fig14(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobes = cache.params.nprobes.clone();
    let k = cache.params.k;
    let work_scale = cache.params.work_scale();
    let mut t = ResultTable::new(
        "fig14_cae",
        &["dataset", "nprobe", "length_reduction_rate", "qps_without_cae", "qps_with_cae", "improvement"],
    );
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        let mut with_cae = ctx.upanns();
        let mut without_cae = ctx.upanns_with(
            UpAnnsConfig::upanns()
                .with_work_scale(work_scale)
                .with_cooccurrence(false),
        );
        let rate = with_cae.mean_reduction_rate();
        for &nprobe in &nprobes {
            let on = with_cae.search_batch(&ctx.queries, nprobe, k);
            let off = without_cae.search_batch(&ctx.queries, nprobe, k);
            t.push_row(vec![
                kind.name().into(),
                nprobe.to_string(),
                fmt(rate, 3),
                fmt(off.qps(), 1),
                fmt(on.qps(), 1),
                fmt(on.qps() / off.qps(), 3),
            ]);
        }
    }
    vec![t]
}

/// Figure 15: top-k stage time with and without pruning, k = 10..100.
fn fig15(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let work_scale = cache.params.work_scale();
    let ctx = cache.get(DatasetKind::SiftLike, nlist);
    let mut pruned = ctx.upanns();
    let mut unpruned = ctx.upanns_with(
        UpAnnsConfig::upanns()
            .with_work_scale(work_scale)
            .with_topk_pruning(false),
    );
    let mut t = ResultTable::new(
        "fig15_topk_pruning",
        &["k", "topk_seconds_no_pruning", "topk_seconds_pruned", "reduction", "pruned_comparisons_fraction"],
    );
    for &k in &[10usize, 20, 50, 100] {
        let off = unpruned.search_batch(&ctx.queries, nprobe, k);
        let on = pruned.search_batch(&ctx.queries, nprobe, k);
        let frac_pruned = 1.0
            - on.stats.topk_insertions as f64 / on.stats.topk_candidates.max(1) as f64;
        t.push_row(vec![
            k.to_string(),
            fmt(off.breakdown.seconds("topk"), 6),
            fmt(on.breakdown.seconds("topk"), 6),
            fmt(off.breakdown.seconds("topk") / on.breakdown.seconds("topk").max(1e-12), 2),
            fmt(frac_pruned, 3),
        ]);
    }
    vec![t]
}

/// Figure 16: per-query latency vs batch size for UpANNS / PIM-naive / CPU.
fn fig16(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[0];
    let k = cache.params.k;
    let seed = cache.params.seed;
    let ctx = cache.get(DatasetKind::SiftLike, nlist);
    let mut upanns = ctx.upanns();
    let mut naive = ctx.pim_naive();
    let mut cpu = ctx.cpu();
    let mut t = ResultTable::new(
        "fig16_batch_size",
        &["batch_size", "engine", "batch_latency_ms", "ms_per_query", "qps"],
    );
    for &bs in &[10usize, 100, 1000] {
        let batch = WorkloadSpec::new(bs)
            .with_seed(seed + 100 + bs as u64)
            .generate(&ctx.dataset);
        for (name, out) in [
            ("UpANNS", upanns.search_batch(&batch.queries, nprobe, k)),
            ("PIM-naive", naive.search_batch(&batch.queries, nprobe, k)),
            ("Faiss-CPU", cpu.search_batch(&batch.queries, nprobe, k)),
        ] {
            t.push_row(vec![
                bs.to_string(),
                name.into(),
                fmt(out.seconds * 1e3, 3),
                fmt(out.mean_latency() * 1e3, 3),
                fmt(out.qps(), 1),
            ]);
        }
    }
    vec![t]
}

/// Figure 17: QPS vs MRAM read size (vectors per read).
fn fig17(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let k = cache.params.k;
    let work_scale = cache.params.work_scale();
    let mut t = ResultTable::new(
        "fig17_mram_read_size",
        &["dataset", "vectors_per_read", "read_bytes", "qps"],
    );
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        for &vectors in &[2usize, 4, 8, 16, 32, 64] {
            let config = UpAnnsConfig::upanns()
                .with_work_scale(work_scale)
                .with_mram_read_vectors(vectors);
            let read_bytes = config.mram_read_bytes(ctx.index.m());
            let mut engine = ctx.upanns_with(config);
            let out = engine.search_batch(&ctx.queries, nprobe, k);
            t.push_row(vec![
                kind.name().into(),
                vectors.to_string(),
                read_bytes.to_string(),
                fmt(out.qps(), 1),
            ]);
        }
    }
    vec![t]
}

/// Figure 18: QPS vs top-k size for UpANNS / Faiss-CPU / Faiss-GPU.
fn fig18(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[0];
    let mut t = ResultTable::new(
        "fig18_topk_size",
        &["dataset", "k", "cpu_qps", "gpu_qps", "upanns_qps", "upanns_over_cpu", "upanns_over_gpu"],
    );
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        let mut cpu = ctx.cpu();
        let mut gpu = ctx.gpu();
        let mut upanns = ctx.upanns();
        for &k in &[1usize, 10, 50, 100] {
            let c = cpu.search_batch(&ctx.queries, nprobe, k);
            let g = gpu.search_batch(&ctx.queries, nprobe, k);
            let u = upanns.search_batch(&ctx.queries, nprobe, k);
            t.push_row(vec![
                kind.name().into(),
                k.to_string(),
                fmt(c.qps(), 1),
                fmt(g.qps(), 1),
                fmt(u.qps(), 1),
                fmt(u.qps() / c.qps(), 2),
                fmt(u.qps() / g.qps(), 2),
            ]);
        }
    }
    vec![t]
}

/// Figure 19: stage time breakdown of CPU / GPU / UpANNS.
fn fig19(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let mut t = ResultTable::new(
        "fig19_breakdown",
        &["dataset", "engine", "k", "cluster_filtering", "lut_construction", "distance_calc", "topk", "other"],
    );
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        for &k in &[10usize, 100] {
            let mut cpu = ctx.cpu();
            let mut gpu = ctx.gpu();
            let mut upanns = ctx.upanns();
            for (name, out) in [
                ("Faiss-CPU", cpu.search_batch(&ctx.queries, nprobe, k)),
                ("Faiss-GPU", gpu.search_batch(&ctx.queries, nprobe, k)),
                ("UpANNS", upanns.search_batch(&ctx.queries, nprobe, k)),
            ] {
                let main: f64 = ["cluster_filtering", "lut_construction", "distance_calc", "topk"]
                    .iter()
                    .map(|s| out.breakdown.fraction(s))
                    .sum();
                t.push_row(vec![
                    kind.name().into(),
                    name.into(),
                    k.to_string(),
                    fmt(out.breakdown.fraction("cluster_filtering"), 3),
                    fmt(out.breakdown.fraction("lut_construction"), 3),
                    fmt(out.breakdown.fraction("distance_calc"), 3),
                    fmt(out.breakdown.fraction("topk"), 3),
                    fmt((1.0 - main).max(0.0), 3),
                ]);
            }
        }
    }
    vec![t]
}

/// Figure 20: scalability with the number of DPUs + linear extrapolation.
fn fig20(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let k = cache.params.k;
    // The paper's scalability study uses a 500M-scale dataset.
    let work_scale = (5e8 / cache.params.n as f64).max(1.0);
    let base_params = cache.params.clone();
    let ctx = cache.get(DatasetKind::SiftLike, nlist);
    let mut gpu = GpuFaissEngine::new(&ctx.index).with_work_scale(work_scale);
    let gpu_out = gpu.search_batch(&ctx.queries, nprobe, k);

    let mut t = ResultTable::new(
        "fig20_scalability",
        &["dpus", "measured_or_predicted", "qps", "watts", "qps_over_gpu"],
    );
    let mut samples = Vec::new();
    for &dpus in &[512usize, 640, 768, 896] {
        let config = UpAnnsConfig::upanns().with_work_scale(work_scale);
        let mut params = base_params.clone();
        params.dpus = dpus;
        let engine_ctx = EvalContextProxy { ctx, params };
        let mut engine = engine_ctx.build_engine(config);
        let out = engine.search_batch(&ctx.queries, nprobe, k);
        samples.push((dpus as f64, out.qps()));
        t.push_row(vec![
            dpus.to_string(),
            "measured".into(),
            fmt(out.qps(), 1),
            fmt(PimConfig::with_dpus(dpus).peak_watts(), 1),
            fmt(out.qps() / gpu_out.qps(), 2),
        ]);
    }
    // Linear regression, as the paper does, to project to the 20-DIMM limit.
    let (a, b) = linear_fit(&samples);
    for &dpus in &[1280usize, 1654, 2048, 2560] {
        let qps = a * dpus as f64 + b;
        t.push_row(vec![
            dpus.to_string(),
            if dpus == 1654 {
                "predicted (iso-power with A100)".into()
            } else {
                "predicted".into()
            },
            fmt(qps, 1),
            fmt(PimConfig::with_dpus(dpus).peak_watts(), 1),
            fmt(qps / gpu_out.qps(), 2),
        ]);
    }
    let mut g = ResultTable::new("fig20_gpu_reference", &["gpu_qps", "gpu_watts"]);
    g.push_row(vec![fmt(gpu_out.qps(), 1), fmt(300.0, 0)]);
    vec![t, g]
}

/// The headline claims of §1 / §5.2.
fn headline(cache: &mut ContextCache) -> Vec<ResultTable> {
    let nlist = cache.default_nlist();
    let nprobe = cache.params.nprobes[cache.params.nprobes.len() / 2];
    let k = cache.params.k;
    let dpus = cache.params.dpus;
    let mut t = ResultTable::new(
        "headline_claims",
        &["dataset", "metric", "paper", "measured"],
    );
    let pim_energy = EnergyModel::pim(&PimConfig::with_dpus(dpus));
    let gpu_energy = EnergyModel::paper_gpu();
    let cpu_energy = EnergyModel::paper_cpu();
    for kind in DatasetKind::all() {
        let ctx = cache.get(kind, nlist);
        let mut cpu = ctx.cpu();
        let mut gpu = ctx.gpu();
        let mut naive = ctx.pim_naive();
        let mut upanns = ctx.upanns();
        let c = cpu.search_batch(&ctx.queries, nprobe, k);
        let g = gpu.search_batch(&ctx.queries, nprobe, k);
        let nv = naive.search_batch(&ctx.queries, nprobe, k);
        let u = upanns.search_batch(&ctx.queries, nprobe, k);
        let exact = FlatIndex::new(&ctx.dataset.vectors).search_batch(&ctx.queries, k);
        t.push_row(vec![
            kind.name().into(),
            "UpANNS QPS / Faiss-CPU QPS".into(),
            "1.6x - 4.3x".into(),
            fmt(u.qps() / c.qps(), 2),
        ]);
        t.push_row(vec![
            kind.name().into(),
            "UpANNS QPS / Faiss-GPU QPS".into(),
            "~1x (comparable)".into(),
            fmt(u.qps() / g.qps(), 2),
        ]);
        t.push_row(vec![
            kind.name().into(),
            "UpANNS QPS / PIM-naive QPS".into(),
            "up to 3.1x".into(),
            fmt(u.qps() / nv.qps(), 2),
        ]);
        t.push_row(vec![
            kind.name().into(),
            "UpANNS QPS/W / GPU QPS/W".into(),
            "~2.3x".into(),
            fmt(u.qps_per_watt(&pim_energy) / g.qps_per_watt(&gpu_energy), 2),
        ]);
        t.push_row(vec![
            kind.name().into(),
            "UpANNS QPS/$ / GPU QPS/$".into(),
            "up to 9.3x".into(),
            fmt(u.qps_per_dollar(&pim_energy) / g.qps_per_dollar(&gpu_energy), 2),
        ]);
        t.push_row(vec![
            kind.name().into(),
            "recall@10 UpANNS vs Faiss-CPU (identical)".into(),
            "identical".into(),
            format!(
                "{} vs {}",
                fmt(recall_at_k(&u.results, &exact, k), 3),
                fmt(recall_at_k(&c.results, &exact, k), 3)
            ),
        ]);
        let _ = cpu_energy.peak_watts; // CPU efficiency is implied by the QPS ratio.
    }
    vec![t]
}

/// Helper for Figure 20: builds an engine against an existing context but a
/// different DPU count.
struct EvalContextProxy<'a> {
    ctx: &'a EvalContext,
    params: EvalParams,
}

impl<'a> EvalContextProxy<'a> {
    fn build_engine(&self, config: UpAnnsConfig) -> upanns::engine::UpAnnsEngine {
        let nprobe_max = self.params.nprobes.iter().copied().max().unwrap_or(16);
        upanns::builder::UpAnnsBuilder::new(&self.ctx.index)
            .with_config(config)
            .with_pim_config(PimConfig::with_dpus(self.params.dpus))
            .with_history(&self.ctx.history, nprobe_max)
            .with_batch_capacity(upanns::builder::BatchCapacity {
                batch_size: self.params.batch,
                nprobe: nprobe_max,
                max_k: 100,
            })
            .build()
    }
}

/// Ordinary least squares for y = a·x + b.
fn linear_fit(samples: &[(f64, f64)]) -> (f64, f64) {
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(x, _)| x).sum();
    let sy: f64 = samples.iter().map(|(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}
