//! Shared harness code for regenerating the UpANNS paper's tables and
//! figures.
//!
//! The `figures` binary (`cargo run -p upanns-bench --release --bin figures --
//! <id>|all [--full]`) uses the [`EvalContext`] built here: one synthetic
//! dataset + trained IVFPQ index + historical workload per dataset kind, with
//! all engines constructed on demand. Results are printed as markdown tables
//! and written as CSV under `results/`.

#![forbid(unsafe_code)]

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::{DatasetKind, SyntheticDataset, SyntheticSpec};
use annkit::vector::Dataset;
use annkit::workload::WorkloadSpec;
use baselines::cpu::CpuFaissEngine;
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use upanns::builder::{frequencies_from_queries, BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::engine::UpAnnsEngine;
use std::io::Write;
use std::path::PathBuf;

/// Default reduction-scale parameters of the reproduction. The paper's
/// evaluation uses 10⁹ vectors, |C| ∈ {4096, 8192, 16384}, nprobe ∈
/// {64, 128, 256}, 896 DPUs and 1,000-query batches; the defaults below keep
/// the same nprobe/|C| ratios and project per-vector work to 10⁹ with the
/// work-scale factor (see DESIGN.md's substitution table).
#[derive(Debug, Clone)]
pub struct EvalParams {
    /// Number of base vectors generated per dataset.
    pub n: usize,
    /// Coarse cluster count (the "IVF" knob).
    pub nlist: usize,
    /// Scaled nprobe sweep (paper: 64/128/256 at |C| = 4096).
    pub nprobes: Vec<usize>,
    /// Number of simulated DPUs (paper: 896 = 7 DIMMs).
    pub dpus: usize,
    /// Queries per batch (paper: 1,000).
    pub batch: usize,
    /// Modeled dataset size used for the work-scale projection.
    pub modeled_n: f64,
    /// Default top-k.
    pub k: usize,
    /// Training-sample cap for index training.
    pub train_size: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for EvalParams {
    fn default() -> Self {
        Self {
            n: 40_000,
            nlist: 4096,
            nprobes: vec![64, 128, 256],
            dpus: 896,
            batch: 1_000,
            modeled_n: 1e9,
            k: 10,
            train_size: 20_000,
            seed: 0xABCD,
        }
    }
}

impl EvalParams {
    /// The work-scale factor projecting the reduced dataset to the modeled
    /// size.
    pub fn work_scale(&self) -> f64 {
        (self.modeled_n / self.n as f64).max(1.0)
    }
}

/// One dataset's evaluation context: data, index, historical workload and a
/// query batch, shared across experiments.
pub struct EvalContext {
    /// Which dataset this context mimics.
    pub kind: DatasetKind,
    /// Parameters the context was built with.
    pub params: EvalParams,
    /// The generated dataset and its ground-truth structure.
    pub dataset: SyntheticDataset,
    /// The trained IVFPQ index over it.
    pub index: IvfPqIndex,
    /// Historical queries (drives data placement).
    pub history: Dataset,
    /// The evaluation query batch.
    pub queries: Dataset,
}

impl EvalContext {
    /// Generates the dataset, trains the index and samples the workloads.
    /// This is the expensive, one-off part of every experiment.
    pub fn build(kind: DatasetKind, params: &EvalParams) -> Self {
        Self::build_with_nlist(kind, params, params.nlist)
    }

    /// Like [`build`](Self::build) but overriding the cluster count (used by
    /// the IVF sweep of Figures 10–12).
    pub fn build_with_nlist(kind: DatasetKind, params: &EvalParams, nlist: usize) -> Self {
        let dataset = SyntheticSpec::new(kind, params.n)
            .with_clusters((nlist / 4).clamp(16, 512))
            .with_seed(params.seed)
            .generate_with_meta();
        let index_params = IvfPqParams::new(nlist, kind.pq_m())
            .with_train_size(params.train_size)
            .with_coarse_iterations(8);
        let index = IvfPqIndex::train(&dataset.vectors, &index_params, params.seed + 1);
        let history = WorkloadSpec::new(params.batch * 4)
            .with_seed(params.seed + 2)
            .generate(&dataset)
            .queries;
        let queries = WorkloadSpec::new(params.batch)
            .with_seed(params.seed + 3)
            .generate(&dataset)
            .queries;
        Self {
            kind,
            params: params.clone(),
            dataset,
            index,
            history,
            queries,
        }
    }

    /// Builds a full UpANNS engine (all optimizations, work-scale projected).
    pub fn upanns(&self) -> UpAnnsEngine {
        self.upanns_with(UpAnnsConfig::upanns().with_work_scale(self.params.work_scale()))
    }

    /// Builds the PIM-naive baseline engine.
    pub fn pim_naive(&self) -> UpAnnsEngine {
        self.upanns_with(UpAnnsConfig::pim_naive().with_work_scale(self.params.work_scale()))
    }

    /// Builds a PIM engine with an explicit configuration (work scale is NOT
    /// added automatically here).
    pub fn upanns_with(&self, config: UpAnnsConfig) -> UpAnnsEngine {
        let nprobe_max = self.params.nprobes.iter().copied().max().unwrap_or(16);
        // One engine serves every nprobe of the sweep, so the placement
        // frequencies are estimated at *every* swept nprobe and summed. This
        // rank-decayed estimate keeps the clusters that dominate small-nprobe
        // runs heavily weighted (they are counted at every resolution) while
        // still giving tail clusters — which only matter at large nprobe — a
        // non-zero share, so neither end of the sweep sees the placement
        // under-replicate its hot set (the failure mode behind a high
        // Figure 11 max/avg ratio).
        let nlist = self.index.nlist();
        let mut freqs = vec![0.0f64; nlist];
        for &np in &self.params.nprobes {
            for (c, f) in frequencies_from_queries(&self.index, &self.history, np)
                .into_iter()
                .enumerate()
            {
                freqs[c] += f;
            }
        }
        UpAnnsBuilder::new(&self.index)
            .with_config(config)
            .with_pim_config(PimConfig::with_dpus(self.params.dpus))
            .with_frequencies(freqs)
            .with_batch_capacity(BatchCapacity {
                batch_size: self.params.batch,
                nprobe: nprobe_max,
                max_k: 16,
            })
            .build()
    }

    /// Builds the Faiss-CPU baseline (work-scale projected).
    pub fn cpu(&self) -> CpuFaissEngine {
        CpuFaissEngine::new(&self.index).with_work_scale(self.params.work_scale())
    }

    /// Builds the Faiss-GPU baseline (work-scale projected).
    pub fn gpu(&self) -> GpuFaissEngine {
        GpuFaissEngine::new(&self.index).with_work_scale(self.params.work_scale())
    }
}

/// A simple markdown/CSV table accumulator used by every experiment.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Table name (used as the CSV file stem).
    pub name: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.name));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Writes the table as CSV under `results/<name>.csv` (creating the
    /// directory) and returns the path.
    pub fn write_csv(&self, results_dir: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(results_dir)?;
        let path = PathBuf::from(results_dir).join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float with a fixed number of decimals (helper for table rows).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_compute_work_scale() {
        let p = EvalParams::default();
        assert!((p.work_scale() - 1e9 / 40_000.0).abs() < 1.0);
        let tiny = EvalParams {
            n: 2_000_000_000,
            ..EvalParams::default()
        };
        assert_eq!(tiny.work_scale(), 1.0);
    }

    #[test]
    fn result_table_roundtrip() {
        let mut t = ResultTable::new("unit_test_table", &["a", "b"]);
        t.push_row(vec!["1".into(), fmt(2.5, 2)]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2.50 |"));
        let dir = std::env::temp_dir().join("upanns_bench_test");
        let path = t.write_csv(dir.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2.50"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = ResultTable::new("x", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn small_context_builds_and_searches() {
        // A deliberately tiny context so this test stays fast: it exercises
        // the full build path (dataset, index, engines) end to end.
        let params = EvalParams {
            n: 3_000,
            nlist: 32,
            nprobes: vec![4],
            dpus: 16,
            batch: 16,
            train_size: 1_500,
            ..EvalParams::default()
        };
        let ctx = EvalContext::build(DatasetKind::SiftLike, &params);
        assert_eq!(ctx.index.nlist(), 32);
        assert_eq!(ctx.queries.len(), 16);
        let mut engine = ctx.upanns();
        let out = baselines::engine::AnnEngine::search_batch(&mut engine, &ctx.queries, 4, 5);
        assert_eq!(out.results.len(), 16);
        assert!(out.qps() > 0.0);
        let mut cpu = ctx.cpu();
        let cpu_out = baselines::engine::AnnEngine::search_batch(&mut cpu, &ctx.queries, 4, 5);
        assert_eq!(cpu_out.results.len(), 16);
    }
}
