//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate provides the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId` and
//! `Throughput` — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Results are printed as
//! `<group>/<id> ... <mean time> (<throughput>)` lines.
//!
//! Baseline recording (the `--save-baseline`-style escape hatch): when the
//! bench binary is invoked with `--save-baseline <path>` (or the
//! `CRITERION_BASELINE_JSONL` environment variable is set), every measured
//! result is appended to `<path>` as one JSON line tagged with the bench
//! binary's name. Appending lets `cargo bench` runs of several bench
//! binaries accumulate into one file, which
//! `scripts/merge_criterion_baseline.py` folds into the committed
//! `BENCH_criterion.json` record. `CRITERION_SAMPLE_SIZE` caps the per-bench
//! iteration count (CI uses a small cap: the record's *names* are checked,
//! wall-clock means vary by machine).

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One measured result, collected for baseline recording.
#[derive(Debug, Clone)]
struct BaselineRecord {
    group: String,
    id: String,
    mean_seconds: f64,
    throughput_per_s: Option<f64>,
}

/// Results measured so far in this process (all groups of all
/// `criterion_group!`s share it).
static RECORDS: Mutex<Vec<BaselineRecord>> = Mutex::new(Vec::new());

/// The baseline path requested via `--save-baseline <path>` or
/// `CRITERION_BASELINE_JSONL`, if any.
fn baseline_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--save-baseline" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--save-baseline=") {
            return Some(path.to_string());
        }
    }
    std::env::var("CRITERION_BASELINE_JSONL").ok().filter(|p| !p.is_empty())
}

/// Sample-size cap from `CRITERION_SAMPLE_SIZE`, if set.
fn sample_size_cap() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Appends this process's measured results to the requested baseline file
/// (no-op when none was requested). Called by `criterion_main!` after every
/// group has run.
pub fn save_baseline_if_requested() {
    let Some(path) = baseline_path() else {
        return;
    };
    let bench = std::env::args()
        .next()
        .map(|argv0| {
            let stem = std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or(argv0.clone());
            // Cargo suffixes bench executables with a metadata hash
            // (`adc_scan-3f2a…`); strip it so the record is stable.
            match stem.rsplit_once('-') {
                Some((name, hash))
                    if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    name.to_string()
                }
                _ => stem,
            }
        })
        .unwrap_or_else(|| "unknown".to_string());
    let records = RECORDS.lock().expect("baseline records poisoned");
    let mut out = String::new();
    for r in records.iter() {
        let throughput = match r.throughput_per_s {
            Some(t) if t.is_finite() => format!("{t:.3}"),
            _ => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "{{\"bench\": \"{}\", \"group\": \"{}\", \"id\": \"{}\", \"mean_seconds\": {:.9}, \"throughput_per_s\": {}}}",
            json_escape(&bench),
            json_escape(&r.group),
            json_escape(&r.id),
            r.mean_seconds,
            throughput,
        );
    }
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("open baseline file {path}: {e}"));
    file.write_all(out.as_bytes())
        .unwrap_or_else(|e| panic!("append baseline records to {path}: {e}"));
    eprintln!("saved {} baseline records from '{bench}' to {path}", records.len());
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Conversion of the id argument accepted by `bench_function` /
/// `bench_with_input` (either a string or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean seconds per iteration measured by the last `iter` call.
    mean_seconds: f64,
    /// Target number of sampled iterations.
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then time `sample_size` iterations in one block.
        std::hint::black_box(routine());
        let iters = self.sample_size.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_seconds = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = sample_size_cap().map_or(n, |cap| cap.min(n));
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.mean_seconds);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.mean_seconds);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, mean: f64) {
        let per_s = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > 0.0 => {
                Some(n as f64 / mean)
            }
            _ => None,
        };
        let rate = match (self.throughput, per_s) {
            (Some(Throughput::Elements(_)), Some(r)) => format!("  ({r:.0} elem/s)"),
            (Some(Throughput::Bytes(_)), Some(r)) => format!("  ({r:.0} B/s)"),
            _ => String::new(),
        };
        println!("{}/{}  {}{}", self.name, id, format_seconds(mean), rate);
        RECORDS.lock().expect("baseline records poisoned").push(BaselineRecord {
            group: self.name.clone(),
            id: id.to_string(),
            mean_seconds: mean,
            throughput_per_s: per_s,
        });
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: sample_size_cap().map_or(10, |cap| cap.min(10)),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_seconds: 0.0,
            sample_size: sample_size_cap().map_or(10, |cap| cap.min(10)),
        };
        f(&mut b);
        println!("{}  {}", name, format_seconds(b.mean_seconds));
        RECORDS.lock().expect("baseline records poisoned").push(BaselineRecord {
            group: String::new(),
            id: name.to_string(),
            mean_seconds: b.mean_seconds,
            throughput_per_s: None,
        });
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }
}
