//! Fixture: a lookalike `runtime.rs` *outside* the `crates/runtime/` prefix
//! gets no wall-clock exemption — scoping is by path prefix, not file name.

use std::time::Instant;

pub fn sneaky_now() -> Instant {
    Instant::now()
}
