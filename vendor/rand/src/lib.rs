//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this vendored
//! crate implements exactly the API subset the workspace uses:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — splitmix64 state expansion,
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen`] for `f32`/`f64`/integers/`bool`, and [`Rng::gen_bool`].
//!
//! Streams are deterministic for a given seed (the reproducibility property
//! the test-suite relies on) but are *not* bit-compatible with upstream
//! `rand`; nothing in the workspace depends on upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's full output.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as FloatUnit>::unit(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t as FloatUnit>::unit(rng) * (end - start)
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                <$t as FloatUnit>::unit(rng)
            }
        }
    )*};
}

trait FloatUnit {
    /// A uniform sample in `[0, 1)`.
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FloatUnit for f32 {
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FloatUnit for f64 {
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl_float_range!(f32, f64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the same algorithm family the
    /// real `SmallRng` uses on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
