//! Retrieval-augmented generation (RAG) serving scenario.
//!
//! A RAG-LLM service retrieves supporting passages for every generation
//! request. The embedding corpus (DEEP-like, 96-d CNN/transformer embeddings)
//! is large, the query stream is heavily skewed toward trending topics, and
//! the service cares about tail latency and energy per query. This example
//! compares UpANNS against the Faiss-CPU and Faiss-GPU baselines on exactly
//! that workload and reports throughput, latency and efficiency.
//!
//! Run with:
//! ```text
//! cargo run --release --example rag_retrieval
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use upanns::prelude::*;

fn main() {
    // Corpus of passage embeddings: DEEP-like (96-d), with strong topic skew.
    let n = 40_000;
    println!("Building a DEEP-like passage-embedding corpus ({n} passages) ...");
    let corpus = SyntheticSpec::deep_like(n)
        .with_clusters(96)
        .with_size_skew(1.0)
        .with_seed(2024)
        .generate_with_meta();

    // IVFPQ index: 96 clusters, M = 12 (the paper's DEEP1B configuration).
    let index = IvfPqIndex::train(
        &corpus.vectors,
        &IvfPqParams::new(96, 12).with_train_size(10_000),
        3,
    );

    // Yesterday's query log drives the placement: trending topics get
    // replicated across DPUs.
    let yesterday = WorkloadSpec::new(4_000)
        .with_skew(1.1)
        .with_seed(41)
        .generate(&corpus);

    // Project timing to the billion-passage corpus this corpus stands for.
    let scale = 1e9 / n as f64;
    let mut upanns = UpAnnsBuilder::new(&index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(PimConfig::paper_seven_dimms())
        .with_history(&yesterday.queries, 12)
        .build();
    let mut cpu = CpuFaissEngine::new(&index).with_work_scale(scale);
    let mut gpu = GpuFaissEngine::new(&index).with_work_scale(scale);

    // Today's traffic: 500 retrieval requests, top-20 passages each.
    let today = WorkloadSpec::new(500).with_skew(1.1).with_seed(42).generate(&corpus);
    let nprobe = 12;
    let k = 20;

    let exact = FlatIndex::new(&corpus.vectors).search_batch(&today.queries, k);

    println!("\n{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "engine", "QPS", "ms/query", "QPS/Watt", "QPS/$", "recall@20");
    let report = |name: &str, outcome: &baselines::engine::SearchOutcome, energy: &pim_sim::energy::EnergyModel| {
        let recall = recall_at_k(&outcome.results, &exact, k);
        println!(
            "{name:<12} {:>10.0} {:>12.3} {:>12.2} {:>10.3} {:>10.3}",
            outcome.qps(),
            outcome.mean_latency() * 1e3,
            outcome.qps_per_watt(energy),
            outcome.qps_per_dollar(energy),
            recall
        );
    };

    let up_out = upanns.search_batch(&today.queries, nprobe, k);
    report(upanns.name(), &up_out, &upanns.energy_model());

    let cpu_out = cpu.search_batch(&today.queries, nprobe, k);
    report(cpu.name(), &cpu_out, &cpu.energy_model());

    let gpu_out = gpu.search_batch(&today.queries, nprobe, k);
    report(gpu.name(), &gpu_out, &gpu.energy_model());

    println!("\nPer-request context budget check:");
    println!(
        "  UpANNS retrieves {k} passages in {:.2} ms — {}",
        up_out.mean_latency() * 1e3,
        if up_out.mean_latency() < 0.5 {
            "well within an interactive LLM serving budget"
        } else {
            "check nprobe / batch size for your latency target"
        }
    );

    println!("\nWhere the time goes (UpANNS stage breakdown):");
    print!("{}", up_out.breakdown);

    println!("\nDPU load balance for today's skewed traffic: max/avg = {:.2}", upanns.last_balance_ratio());
    println!(
        "Co-occurrence encoding shortened codes by {:.1} % on average.",
        upanns.mean_reduction_rate() * 100.0
    );
}
