//! Quickstart: train an IVFPQ index, build the UpANNS PIM engine, and answer
//! a batch of queries.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use upanns::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Data. The real SIFT1B has 10⁹ vectors; here we generate a reduced
    //    SIFT-like dataset with the same statistical properties (cluster
    //    structure, size skew, code co-occurrence).
    // ------------------------------------------------------------------
    let n = 30_000;
    println!("Generating a SIFT-like dataset with {n} vectors ...");
    let dataset = SyntheticSpec::sift_like(n)
        .with_clusters(256)
        .with_seed(42)
        .generate_with_meta();
    // Work-scale projection: timing models treat every stored vector as
    // `scale` vectors of the modeled billion-entry dataset (results and
    // recall are computed on the actual data). See DESIGN.md.
    let scale = 1e9 / n as f64;

    // ------------------------------------------------------------------
    // 2. Offline phase: train IVFPQ (64 coarse clusters, M = 16 bytes/vector)
    //    and build the UpANNS engine on a simulated 64-DPU UPMEM system.
    // ------------------------------------------------------------------
    println!("Training the IVFPQ index ...");
    let params = IvfPqParams::new(256, 16).with_train_size(8_000);
    let index = IvfPqIndex::train(&dataset.vectors, &params, 1);
    println!(
        "  indexed {} vectors, compressed to {:.1} MB (raw: {:.1} MB)",
        index.ntotal(),
        index.compressed_bytes() as f64 / 1e6,
        dataset.vectors.raw_bytes() as f64 / 1e6
    );

    // Historical workload used by the PIM-aware data placement (Opt1).
    let history = WorkloadSpec::new(4_000).with_seed(7).generate(&dataset);

    println!("Building the UpANNS engine (placement + co-occurrence encoding) ...");
    let mut engine = UpAnnsBuilder::new(&index)
        .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
        .with_pim_config(PimConfig::paper_seven_dimms())
        .with_history(&history.queries, 16)
        .build();

    // ------------------------------------------------------------------
    // 3. Online phase: answer a batch of 1,000 queries (the paper's batch size),
    //    k = 10, nprobe = 16.
    // ------------------------------------------------------------------
    let batch = WorkloadSpec::new(1_000).with_seed(11).generate(&dataset);
    let outcome = engine.search_batch(&batch.queries, 16, 10);

    println!("\n=== UpANNS results (projected to 10^9-vector scale) ===");
    println!("batch size          : {}", outcome.batch_size());
    println!("simulated batch time: {:.3} ms", outcome.seconds * 1e3);
    println!("QPS                 : {:.0}", outcome.qps());
    println!(
        "QPS per watt        : {:.1}",
        outcome.qps_per_watt(&engine.energy_model())
    );
    println!(
        "DPU load balance    : max/avg = {:.2}",
        engine.last_balance_ratio()
    );
    println!("stage breakdown:\n{}", outcome.breakdown);

    // ------------------------------------------------------------------
    // 4. Accuracy: recall@10 against exact search, and a CPU baseline
    //    comparison on the same index.
    // ------------------------------------------------------------------
    let exact = FlatIndex::new(&dataset.vectors).search_batch(&batch.queries, 10);
    let recall = recall_at_k(&outcome.results, &exact, 10);
    println!("recall@10           : {recall:.3}");

    let mut cpu = CpuFaissEngine::new(&index).with_work_scale(scale);
    let cpu_out = cpu.search_batch(&batch.queries, 16, 10);
    println!("\n=== Faiss-CPU baseline (same index) ===");
    println!("QPS                 : {:.0}", cpu_out.qps());
    println!(
        "UpANNS speedup      : {:.2}x",
        outcome.qps() / cpu_out.qps()
    );
    let cpu_recall = recall_at_k(&cpu_out.results, &exact, 10);
    println!("recall@10           : {cpu_recall:.3} (identical algorithm, identical accuracy)");
}
