//! Opt2 (memory half): planning the 64 KB WRAM with explicit buffer reuse.
//!
//! The DPU has no MMU, so UpANNS plans WRAM as three phases that reuse the
//! same physical space (Figure 6):
//!
//! 1. **LUT construction** — codebook staging buffers + the LUT being built.
//! 2. **Combination sums** — the LUT plus the cached partial sums; the
//!    codebook area is no longer needed and is released.
//! 3. **Distance calculation** — the LUT + combination sums + one MRAM read
//!    buffer and one top-k heap per tasklet (the codebook space is reused for
//!    the read buffers).
//!
//! The plan computes each phase's footprint, verifies it fits, and derives
//! the maximum tasklet count a configuration admits.

use pim_sim::config::WRAM_BYTES_PER_DPU;

/// Byte sizes used by the planner. The codebook is staged at 1 B per
/// component (the uint8 representation the paper quotes: 32 KB for SIFT's
/// 128 × 256 table) and LUT / combination-sum entries at 2 B (`u16`
/// fixed-point, 8 KB at m = 16).
#[derive(Debug, Clone)]
pub struct WramPlanInput {
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of PQ sub-quantizers.
    pub m: usize,
    /// Top-k size (per-tasklet heap capacity).
    pub k: usize,
    /// Number of cached combinations.
    pub num_combos: usize,
    /// Number of tasklets.
    pub tasklets: usize,
    /// Bytes per MRAM read buffer (one per tasklet).
    pub read_buffer_bytes: usize,
    /// WRAM capacity (64 KB on UPMEM hardware).
    pub wram_capacity: usize,
}

impl WramPlanInput {
    /// Creates an input with the hardware WRAM capacity.
    pub fn new(
        dim: usize,
        m: usize,
        k: usize,
        num_combos: usize,
        tasklets: usize,
        read_buffer_bytes: usize,
    ) -> Self {
        Self {
            dim,
            m,
            k,
            num_combos,
            tasklets,
            read_buffer_bytes,
            wram_capacity: WRAM_BYTES_PER_DPU,
        }
    }
}

/// The planned footprint of each phase, all of which must fit in WRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WramPlan {
    /// Codebook staging bytes (phase 1 only).
    pub codebook_bytes: usize,
    /// LUT bytes (all phases).
    pub lut_bytes: usize,
    /// Combination partial-sum bytes (phases 2–3).
    pub combo_bytes: usize,
    /// Per-tasklet MRAM read buffer bytes (phase 3).
    pub read_buffer_bytes: usize,
    /// Per-tasklet top-k heap bytes (phase 3).
    pub heap_bytes: usize,
    /// Number of tasklets planned for.
    pub tasklets: usize,
    /// Peak bytes of phase 1 (codebook + LUT).
    pub phase1_peak: usize,
    /// Peak bytes of phase 2 (LUT + combos).
    pub phase2_peak: usize,
    /// Peak bytes of phase 3 (LUT + combos + per-tasklet buffers).
    pub phase3_peak: usize,
}

/// Why a layout cannot be realized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WramPlanError {
    /// Which phase overflowed.
    pub phase: &'static str,
    /// Bytes that phase needs.
    pub required: usize,
    /// WRAM capacity.
    pub capacity: usize,
}

impl std::fmt::Display for WramPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WRAM plan overflow in {}: needs {} B of {} B",
            self.phase, self.required, self.capacity
        )
    }
}

impl std::error::Error for WramPlanError {}

impl WramPlan {
    /// Plans the layout, verifying every phase fits.
    pub fn plan(input: &WramPlanInput) -> Result<Self, WramPlanError> {
        let codebook_bytes = input.dim * 256; // 1 B per component (uint8 staging)
        let lut_bytes = input.m * 256 * 2; // u16 entries
        let combo_bytes = input.num_combos * 2;
        let heap_bytes = input.k * 12; // (u64 id, f32 distance) per slot
        let per_tasklet = input.read_buffer_bytes + heap_bytes;

        let phase1_peak = codebook_bytes + lut_bytes;
        let phase2_peak = lut_bytes + combo_bytes;
        let phase3_peak = lut_bytes + combo_bytes + input.tasklets * per_tasklet;

        let check = |phase: &'static str, required: usize| {
            if required > input.wram_capacity {
                Err(WramPlanError {
                    phase,
                    required,
                    capacity: input.wram_capacity,
                })
            } else {
                Ok(())
            }
        };
        check("lut_construction", phase1_peak)?;
        check("combo_sum", phase2_peak)?;
        check("distance_calc", phase3_peak)?;

        Ok(Self {
            codebook_bytes,
            lut_bytes,
            combo_bytes,
            read_buffer_bytes: input.read_buffer_bytes,
            heap_bytes,
            tasklets: input.tasklets,
            phase1_peak,
            phase2_peak,
            phase3_peak,
        })
    }

    /// The largest tasklet count (≤ `requested`) whose phase-3 footprint
    /// still fits. This is the WRAM constraint of §4.2.1 that forces
    /// intra-cluster (rather than inter-query) parallelism.
    pub fn max_tasklets(input: &WramPlanInput, requested: usize) -> usize {
        let mut best = 0;
        for t in 1..=requested {
            let candidate = WramPlanInput {
                tasklets: t,
                ..input.clone()
            };
            if Self::plan(&candidate).is_ok() {
                best = t;
            }
        }
        best
    }

    /// Peak footprint across all phases.
    pub fn peak(&self) -> usize {
        self.phase1_peak.max(self.phase2_peak).max(self.phase3_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SIFT-like configuration from Figure 6: 128-d, m = 16, k = 10,
    /// 256 combos, 11 tasklets, 256 B read buffers.
    fn sift_input() -> WramPlanInput {
        WramPlanInput::new(128, 16, 10, 256, 11, 256)
    }

    #[test]
    fn sift_configuration_fits_like_figure6() {
        let plan = WramPlan::plan(&sift_input()).unwrap();
        assert_eq!(plan.codebook_bytes, 32 * 1024); // 32 KB codebook
        assert_eq!(plan.lut_bytes, 8 * 1024); // 8 KB LUT
        assert!(plan.phase1_peak <= WRAM_BYTES_PER_DPU);
        assert!(plan.phase3_peak <= WRAM_BYTES_PER_DPU);
        assert!(plan.peak() <= WRAM_BYTES_PER_DPU);
    }

    #[test]
    fn too_many_tasklets_overflow_phase3() {
        let mut input = sift_input();
        input.read_buffer_bytes = 2048;
        input.tasklets = 24;
        input.k = 100;
        let err = WramPlan::plan(&input).unwrap_err();
        assert_eq!(err.phase, "distance_calc");
        assert!(err.to_string().contains("distance_calc"));
        // A reduced tasklet count fits again.
        let max = WramPlan::max_tasklets(&input, 24);
        assert!((8..24).contains(&max), "max {max}");
        input.tasklets = max;
        assert!(WramPlan::plan(&input).is_ok());
    }

    #[test]
    fn large_dimension_overflows_phase1() {
        // A 300-dimensional codebook at 1 B/component is 75 KB > 64 KB.
        let input = WramPlanInput::new(300, 20, 10, 0, 4, 64);
        let err = WramPlan::plan(&input).unwrap_err();
        assert_eq!(err.phase, "lut_construction");
    }

    #[test]
    fn spacev_configuration_fits() {
        // SPACEV-like: 100-d, m = 20.
        let input = WramPlanInput::new(100, 20, 10, 256, 11, 320);
        let plan = WramPlan::plan(&input).unwrap();
        assert_eq!(plan.lut_bytes, 20 * 256 * 2);
        assert!(plan.peak() <= WRAM_BYTES_PER_DPU);
    }

    #[test]
    fn max_tasklets_is_monotone_in_buffer_size() {
        let small = WramPlanInput::new(128, 16, 10, 256, 24, 128);
        let large = WramPlanInput::new(128, 16, 10, 256, 24, 2048);
        assert!(
            WramPlan::max_tasklets(&small, 24) >= WramPlan::max_tasklets(&large, 24),
            "smaller read buffers should admit at least as many tasklets"
        );
    }
}
