//! Inline suppression directives.
//!
//! A violation can be silenced at its source line with a *reasoned*
//! directive in a plain (non-doc) comment:
//!
//! ```text
//! // lint: allow(unordered-iter, reason = "min_by_key over unique keys is order-independent")
//! ```
//!
//! Placement follows comment position: a trailing comment silences its own
//! line; a standalone comment silences the next code line. Every directive
//! must name a known rule (canonical or short alias) and carry a non-empty
//! reason; anything that begins with `lint:` but does not parse — and any
//! directive that matches no violation — is itself reported under the
//! synthetic rule name `directive`, so suppressions can never rot silently.
//! Doc comments are never parsed, which lets documentation *show* directive
//! syntax (as above) without asserting it.

/// A successfully parsed `lint: allow(...)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Canonical rule name (aliases are resolved during parsing).
    pub rule: &'static str,
    /// The mandatory human-readable justification.
    pub reason: String,
}

/// Canonical rule names and their accepted short aliases.
const RULE_ALIASES: &[(&str, &[&str])] = &[
    ("no-wall-clock", &["wall-clock"]),
    ("no-ambient-rng", &["ambient-rng"]),
    ("no-unordered-iteration", &["unordered-iter"]),
    ("vendor-api-surface", &["vendor-api"]),
    ("no-unwrap-in-hot-path", &["unwrap"]),
    ("no-unsafe-outside-simd", &["unsafe"]),
];

/// Resolves a rule name (canonical or alias) to its canonical form.
pub fn canonical_rule(name: &str) -> Option<&'static str> {
    RULE_ALIASES
        .iter()
        .find(|(canon, aliases)| *canon == name || aliases.contains(&name))
        .map(|(canon, _)| *canon)
}

/// All canonical rule names, for diagnostics.
pub fn rule_names() -> Vec<&'static str> {
    RULE_ALIASES.iter().map(|(c, _)| *c).collect()
}

/// Tries to parse a comment body as a directive.
///
/// Returns `None` when the comment is not directive-shaped at all (does not
/// begin with `lint:`), `Some(Err(why))` when it begins with `lint:` but is
/// malformed or names an unknown rule, and `Some(Ok(d))` on success.
pub fn parse(comment_text: &str) -> Option<Result<Directive, String>> {
    let body = comment_text.trim();
    let rest = body.strip_prefix("lint:")?;
    Some(parse_allow(rest.trim()))
}

fn parse_allow(rest: &str) -> Result<Directive, String> {
    let inner = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?;
    let inner = inner
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;

    let (rule_name, after_rule) = inner
        .split_once(',')
        .ok_or_else(|| "missing `, reason = \"...\"` after the rule name".to_string())?;
    let rule_name = rule_name.trim();
    let rule = canonical_rule(rule_name).ok_or_else(|| {
        format!(
            "unknown rule `{rule_name}` (known rules: {})",
            rule_names().join(", ")
        )
    })?;

    let reason_expr = after_rule.trim();
    let reason = reason_expr
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok(Directive {
        rule,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_and_alias_names() {
        let d = parse(" lint: allow(no-wall-clock, reason = \"replay clock impl\")")
            .expect("directive-shaped")
            .expect("well-formed");
        assert_eq!(d.rule, "no-wall-clock");
        assert_eq!(d.reason, "replay clock impl");

        let d = parse("lint: allow(unwrap, reason = \"invariant: queue non-empty\")")
            .expect("directive-shaped")
            .expect("well-formed");
        assert_eq!(d.rule, "no-unwrap-in-hot-path");
    }

    #[test]
    fn non_directive_comments_are_ignored() {
        assert!(parse("just a comment").is_none());
        assert!(parse("the `// lint: allow(...)` form is described elsewhere").is_none());
    }

    #[test]
    fn malformed_directives_report_why() {
        let err = parse("lint: allow(no-wall-clock)").expect("shaped").expect_err("malformed");
        assert!(err.contains("reason"), "{err}");

        let err = parse("lint: allow(no-such-rule, reason = \"x\")")
            .expect("shaped")
            .expect_err("unknown rule");
        assert!(err.contains("no-such-rule"), "{err}");

        let err = parse("lint: allow(unwrap, reason = \"\")")
            .expect("shaped")
            .expect_err("empty reason");
        assert!(err.contains("empty"), "{err}");

        let err = parse("lint: deny(unwrap)").expect("shaped").expect_err("not allow");
        assert!(err.contains("allow"), "{err}");
    }
}
